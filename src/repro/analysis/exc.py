"""EXC rules: failure containment must stay structured.

PR 6 built the fail-soft campaign engine around one invariant: every
contained failure becomes a structured, picklable, JSON-safe
:class:`repro.errors.ErrorRecord`, and only the transient-error
taxonomy is ever retried. These rules keep both halves true as the
tree grows.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .contracts import TRANSIENT_MANIFEST
from .findings import Finding
from .rules import LintRule, Module, register_rule

#: exception names that catch (almost) everything
_BROAD_NAMES = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:  # bare except:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(isinstance(element, ast.Name)
                   and element.id in _BROAD_NAMES
                   for element in node.elts)
    return False


def _body_contains_discipline(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or routes through describe_error."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            dotted = Module.dotted_name(node.func)
            if dotted.rpartition(".")[2] == "describe_error":
                return True
    return False


@register_rule
class BroadExceptRule(LintRule):
    """EXC-BROAD: ``except Exception`` must re-raise or produce a
    structured ErrorRecord."""

    rule_id = "EXC-BROAD"
    rationale = ("a broad handler that neither re-raises nor routes "
                 "through repro.errors.describe_error swallows "
                 "unexpected failures without a structured "
                 "ErrorRecord — campaigns then report success on runs "
                 "that never happened")

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _body_contains_discipline(node):
                continue
            caught = ("bare except" if node.type is None
                      else "except %s" % Module.dotted_name(node.type)
                      if not isinstance(node.type, ast.Tuple)
                      else "except (...Exception...)")
            yield self.finding(
                module, node,
                "%s neither re-raises nor routes through "
                "repro.errors.describe_error; narrow the types, add "
                "the routing, or suppress with a reason" % caught)


@register_rule
class TransientTaxonomyRule(LintRule):
    """EXC-RETRY: the retryable-error taxonomy is a pinned contract."""

    rule_id = "EXC-RETRY"
    rationale = ("the engine may only retry repro.errors."
                 "TRANSIENT_ERRORS (harness failures); widening the "
                 "tuple would retry deterministic simulation failures "
                 "and could break successful-run bit-identity — the "
                 "pinned manifest forces that to be a reviewed "
                 "decision")

    def check_module(self, module: Module) -> Iterator[Finding]:
        if module.path.name != "errors.py" \
                or "repro" not in module.parts:
            return
        assignment = None
        for node in module.tree.body:
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "TRANSIENT_ERRORS"):
                assignment = node
        if assignment is None:
            yield self.finding_at(
                module, 1,
                "repro/errors.py no longer defines TRANSIENT_ERRORS; "
                "the retry policy lost its taxonomy")
            return
        if not isinstance(assignment.value, (ast.Tuple, ast.List)):
            yield self.finding(
                module, assignment,
                "TRANSIENT_ERRORS must be a literal tuple of exception "
                "types so the retry taxonomy stays statically "
                "auditable")
            return
        names = tuple(Module.dotted_name(element).rpartition(".")[2]
                      for element in assignment.value.elts)
        if names != TRANSIENT_MANIFEST:
            yield self.finding(
                module, assignment,
                "TRANSIENT_ERRORS %s does not match the pinned retry "
                "taxonomy %s; if the widening/narrowing is deliberate, "
                "update repro/analysis/contracts.py in the same change"
                % (list(names), list(TRANSIENT_MANIFEST)))
