"""repro.analysis — determinism & contract static analysis (match-lint).

The benchmark suite's headline guarantees — bit-identical simulation
results, content-addressed stores, structured failure containment, a
closed event protocol — are *contracts* that no unit test can keep
true for code that hasn't been written yet. match-lint turns each
contract into an AST-level rule (stdlib :mod:`ast`, nothing imported,
nothing executed) and CI runs the rules over every pull request.

Entry points::

    python -m repro.analysis src/repro     # module form
    match-bench lint src/repro             # CLI subcommand

Extension points:

* new rules register via ``@repro.analysis.rules.register_rule`` (the
  ``lint-rule`` :class:`repro.registry.Registry`),
* inline suppressions: ``# repro: ignore[RULE-ID] -- reason``,
* legacy debt lives in a committed ``.match-lint-baseline.json``.

See docs/ANALYSIS.md for the rule catalog and workflows.
"""

from .baseline import BASELINE_NAME, Baseline
from .cli import main
from .engine import lint_paths, select_rules
from .findings import Finding, LintReport
from .render import render_report
from .rules import LINT_RULES, LintRule, Module, Project, register_rule
from .suppress import Suppression, scan_suppressions

# the built-in rule modules self-register on import, so that
# ``repro.registry.registry("lint-rule")`` (which imports this
# package) hands back a populated registry
from . import det, evt, exc, reg, schema  # noqa: E402,F401

__all__ = [
    "BASELINE_NAME",
    "Baseline",
    "Finding",
    "LINT_RULES",
    "LintReport",
    "LintRule",
    "Module",
    "Project",
    "Suppression",
    "lint_paths",
    "main",
    "register_rule",
    "render_report",
    "scan_suppressions",
    "select_rules",
]
