"""``python -m repro.analysis`` — run match-lint."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main(prog="python -m repro.analysis"))
