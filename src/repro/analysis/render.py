"""Lint report renderers, registered in the ``renderer`` registry.

Two formats ship: ``lint-text`` for humans/CI logs and ``lint-json``
for machines (the CI artifact). Both live in the same
:data:`repro.core.report.RENDERERS` registry as the campaign
renderers, so ``--format`` resolution, listing and error messages stay
uniform across the toolchain.
"""

from __future__ import annotations

import json

from ..core.report import RENDERERS
from .findings import LintReport

#: format-name prefix distinguishing lint renderers from campaign ones
LINT_FORMAT_PREFIX = "lint-"


@RENDERERS.register("lint-text")
def render_lint_text(report: LintReport, title: str = "match-lint") -> str:
    """One ``path:line:col: RULE-ID message`` line per finding."""
    lines = []
    for finding in report.findings:
        lines.append("%s: %s %s" % (finding.location(), finding.rule,
                                    finding.message))
        if finding.snippet:
            lines.append("    %s" % finding.snippet)
    lines.append(report.summary())
    return "\n".join(lines)


@RENDERERS.register("lint-json")
def render_lint_json(report: LintReport, title: str = "match-lint") -> str:
    """The machine-readable report (the CI ``lint-report`` artifact).

    ``tool`` identifies the payload so downstream consumers — e.g.
    ``benchmarks/perf/check_regression.py`` scanning artifact
    directories — can recognise and skip lint output.
    """
    payload = {
        "tool": "match-lint",
        "format": 1,
        "title": title,
        "files": report.files,
        "rules": list(report.rules),
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "clean": report.clean,
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_report(report: LintReport, fmt: str = "text") -> str:
    """Render with a registered lint renderer; accepts the short form
    (``text``/``json``) or the full registry name (``lint-text``)."""
    name = fmt if fmt.startswith(LINT_FORMAT_PREFIX) \
        else LINT_FORMAT_PREFIX + fmt
    return RENDERERS.resolve(name)(report)
