"""The checked contract manifests: what the rules compare the tree to.

These are the *deliberate-decision records* behind the SCHEMA, EXC and
REG rules. Changing a contracted surface (the run-key payload, the
retryable-error taxonomy, a registry protocol) fails the lint until the
matching manifest here is updated in the same change — which is
exactly the review conversation the rules exist to force.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- SCHEMA-RUN-KEY ----------------------------------------------------------
#: Per RUN_KEY_SCHEMA version: the exact run-key payload shape minted by
#: ``repro.core.configs.run_key``. ``top`` is the payload's literal key
#: set; ``config`` the ExperimentConfig fields that survive into
#: ``config_to_dict`` (dataclass fields minus the deliberately-dropped
#: ones). Adding a config field without bumping the schema *and* adding
#: a manifest entry — or bumping without changing the payload — is a
#: lint failure.
RUN_KEY_MANIFEST: dict[int, dict[str, tuple[str, ...]]] = {
    1: {
        "top": ("schema", "rep", "config"),
        "config": ("app", "design", "nprocs", "input_size",
                   "inject_fault", "seed", "fti", "nnodes"),
    },
    # schema 2 (PR 3): configs carry a canonical ``faults`` scenario.
    # PR 5's ``interval`` field deliberately did NOT bump it — the
    # field is dropped from the payload (the stride already lives in
    # fti.ckpt_stride), which the ``config`` tuple below records by
    # not listing it.
    2: {
        "top": ("schema", "rep", "config"),
        "config": ("app", "design", "nprocs", "input_size",
                   "inject_fault", "seed", "fti", "nnodes", "faults"),
    },
}

# -- EXC-RETRY ---------------------------------------------------------------
#: The engine's retryable-error taxonomy (``repro.errors.TRANSIENT_ERRORS``)
#: — harness failures only, never simulation outcomes: retrying a
#: deterministic failure burns time to fail identically, and retrying a
#: *successful* run's transient infrastructure hiccups is what keeps
#: results bit-identical. Widening this tuple is a reliability-semantics
#: change and must touch this manifest too.
TRANSIENT_MANIFEST: tuple[str, ...] = ("WorkerLostError", "UnitTimeoutError",
                             "CorruptResultError", "OSError")

# -- DET-ENV -----------------------------------------------------------------
#: Environment variables library code may consult. Everything else read
#: from ``os.environ`` is hidden config: it changes behaviour without
#: entering the run key, so two "identical" runs can diverge.
#: The first two are usually referenced via their constants
#: (``repro.errors.WATCHDOG_ENV`` / ``repro.core.chaos.CHAOS_ENV``),
#: which DET-ENV equally accepts by name.
ENV_ALLOWLIST: frozenset[str] = frozenset({
    "MATCH_SIM_WATCHDOG",   # simulator step budget (WATCHDOG_ENV)
    "MATCH_CHAOS",          # chaos-injection spec (CHAOS_ENV)
    "REPRO_NO_NATIVE",      # force the numpy kernel fallback
    # telemetry defaults (repro.obs.env): sanctioned because they only
    # steer *observation* of a run — snapshot/trace output paths and the
    # metrics kill switch — never the run itself, so they cannot enter
    # the run key or perturb results.
    "MATCH_OBS",            # metrics snapshot path / "off" (OBS_ENV)
    "MATCH_TRACE",          # default trace output path (TRACE_ENV)
})

#: Names of module-level constants that hold allowlisted variables;
#: ``os.environ.get(WATCHDOG_ENV)`` is as sanctioned as the literal.
ENV_CONSTANT_NAMES: frozenset[str] = frozenset({
    "WATCHDOG_ENV", "CHAOS_ENV", "OBS_ENV", "TRACE_ENV"})

# -- DET-WALLCLOCK -----------------------------------------------------------
#: Subtrees where wall-clock reads are banned outright: the simulator,
#: checkpoint layer and fault drawing must be pure functions of
#: (config, seed) — any real-time dependence breaks replay and the
#: serial/parallel/resumed bit-identity contract. (The campaign engine
#: and service layers legitimately use monotonic clocks for timeouts
#: and latency stats; they are out of scope by construction.)
WALLCLOCK_DIRS: tuple[str, ...] = ("simmpi", "fti", "faults")
#: The deliberate *exception* subtrees, recorded so the boundary is a
#: decision and not an accident: all telemetry wall-clock reads live in
#: ``repro.obs`` (trace timestamps, latency histograms, progress ETA).
#: Nothing under WALLCLOCK_DIRS may import a clock — it reports *virtual*
#: sim time and lets repro.obs anchor it to the wall. Moving a clock
#: read out of ``obs`` into a banned subtree fails DET-WALLCLOCK; this
#: constant documents where it is supposed to go instead.
WALLCLOCK_SANCTIONED_DIRS: tuple[str, ...] = ("obs",)
#: Files on the run-key path held to the same standard wherever they live.
WALLCLOCK_FILES: tuple[str, ...] = ("configs.py",)
#: The banned calls (dotted-name suffix match, both import spellings).
WALLCLOCK_CALLS: frozenset[str] = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.ctime",
    "datetime.now", "datetime.datetime.now",
    "datetime.utcnow", "datetime.datetime.utcnow",
    "datetime.today", "datetime.datetime.today",
    "date.today", "datetime.date.today",
})

# -- DET-RANDOM --------------------------------------------------------------
#: ``random.X`` attributes that construct independent seeded generators
#: (allowed) rather than driving the hidden module-level RNG (banned).
RANDOM_ALLOWED: frozenset[str] = frozenset({"Random", "SystemRandom"})
#: ``np.random.X`` constructors of the modern seeded Generator API;
#: ``default_rng`` additionally requires an explicit seed argument.
NP_RANDOM_ALLOWED: frozenset[str] = frozenset({
    "default_rng", "Generator", "PCG64", "MT19937", "Philox",
    "SFC64", "SeedSequence", "BitGenerator",
})


# -- REG-PROTOCOL ------------------------------------------------------------
@dataclass(frozen=True)
class MethodSpec:
    """One required protocol method: the registrant must define it
    (directly or via a base class in the same module) accepting
    ``call_args`` positional arguments after self/cls."""

    name: str
    call_args: int


@dataclass(frozen=True)
class RegistryContract:
    """The statically-checkable protocol of one registry kind.

    ``required`` lists method groups: each group is a tuple of
    alternative :class:`MethodSpec` — defining *any* member satisfies
    the group (scenario kinds may ship ``draw`` or override
    ``make_plan`` wholesale). ``callable_args`` (non-None) means the
    registrant is a plain callable taking that many positional args
    (the renderer protocol).
    """

    kind: str
    required: tuple[tuple[MethodSpec, ...], ...] = ()
    callable_args: int | None = None


#: registry *variable name* (as it appears at the registration site)
#: -> contract. Keyed by name because the rule is static: it sees
#: ``@DESIGNS.register("x")``, not the registry object.
REGISTRY_CONTRACTS: dict[str, RegistryContract] = {
    "APP_REGISTRY": RegistryContract(
        kind="app",
        required=((MethodSpec("from_input", 2),),)),
    "DESIGNS": RegistryContract(
        kind="design",
        required=((MethodSpec("run_job", 3),),)),
    "SCENARIOS": RegistryContract(
        kind="scenario",
        required=((MethodSpec("draw", 5), MethodSpec("make_plan", 5)),)),
    "STORES": RegistryContract(
        kind="store",
        required=((MethodSpec("append", 4),),
                  (MethodSpec("load_completed", 0),))),
    "MODELS": RegistryContract(
        kind="model",
        required=((MethodSpec("iteration_seconds", 4),),
                  (MethodSpec("ckpt_write_seconds", 4),),
                  (MethodSpec("ckpt_read_seconds", 4),),
                  (MethodSpec("recovery_seconds", 3),))),
    "RENDERERS": RegistryContract(kind="renderer", callable_args=1),
    "LINT_RULES": RegistryContract(kind="lint-rule", required=()),
    "STRATEGIES": RegistryContract(
        kind="strategy",
        required=((MethodSpec("run", 1),),)),
}

#: ``@register("kind", ...)`` top-level form: kind literal -> contract
REGISTRY_CONTRACTS_BY_KIND: dict[str, RegistryContract] = {
    contract.kind: contract for contract in REGISTRY_CONTRACTS.values()
}

# -- EVT-EXPORT --------------------------------------------------------------
#: the facade module and document every public event class must reach
EVT_FACADE_SUFFIX = "api.py"
EVT_DOC_RELPATH = "docs/API.md"
