"""The ``lint-rule`` registry and the rule/module abstractions.

match-lint reuses the repo's uniform extension pattern
(:mod:`repro.registry`): every rule is a :class:`LintRule` subclass in
the ``lint-rule`` :class:`~repro.registry.Registry`, so a
project-specific contract becomes one self-registering class::

    from repro.analysis.rules import LINT_RULES, LintRule

    @LINT_RULES.register()
    class NoPrintRule(LintRule):
        rule_id = "STYLE-PRINT"
        rationale = "library code must not print to stdout"

        def check_module(self, module):
            for node in module.walk():
                if (isinstance(node, ast.Call)
                        and module.dotted_name(node.func) == "print"):
                    yield self.finding(module, node, "print() call")

Rules get two hooks: :meth:`LintRule.check_module` runs once per
parsed file; :meth:`LintRule.check_project` runs once per invocation
with the whole :class:`Project` (for cross-file contracts like
EVT-EXPORT). Either may be a no-op.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Iterator

from ..errors import ConfigurationError
from ..registry import Registry
from .findings import Finding


class Module:
    """One parsed source file plus the lookups rules need."""

    def __init__(self, path: str | pathlib.Path, source: str,
                 display_path: str | None = None):
        self.path = pathlib.Path(path)
        self.display_path = display_path or str(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        #: path components, posix-style, for scope checks
        #: ("simmpi" in module.parts)
        self.parts = tuple(self.path.as_posix().split("/"))

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_scope(self, directories: Iterable[str] = (),
                 filenames: Iterable[str] = ()) -> bool:
        """Whether this file lives under one of ``directories`` (any
        path component matches) or is named one of ``filenames``."""
        if any(part in self.parts for part in directories):
            return True
        return self.path.name in tuple(filenames)

    @staticmethod
    def dotted_name(node: ast.AST) -> str:
        """``a.b.c`` for a Name/Attribute chain, else ``""``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return ""

    def class_defs(self) -> dict[str, ast.ClassDef]:
        """Top-level (module-body) class definitions by name."""
        return {node.name: node for node in self.tree.body
                if isinstance(node, ast.ClassDef)}

    def dunder_all(self) -> tuple[str, ...] | None:
        """The module's literal ``__all__`` names, or None."""
        for node in self.tree.body:
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "__all__"
                    and isinstance(node.value, (ast.List, ast.Tuple))):
                names = []
                for element in node.value.elts:
                    if (isinstance(element, ast.Constant)
                            and isinstance(element.value, str)):
                        names.append(element.value)
                return tuple(names)
        return None


class Project:
    """Every module of one lint invocation, for cross-file rules."""

    def __init__(self, modules: Iterable[Module]):
        self.modules = list(modules)

    def find(self, *suffixes: str) -> Module | None:
        """The first module whose posix path ends with any suffix."""
        for module in self.modules:
            posix = module.path.as_posix()
            if any(posix.endswith(suffix) for suffix in suffixes):
                return module
        return None


class LintRule:
    """Base class for one registered contract check."""

    #: stable id findings and suppressions use, e.g. ``"DET-RANDOM"``
    rule_id = ""
    #: one-line contract statement (docs/ANALYSIS.md catalog + --list-rules)
    rationale = ""

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(self, module: Module, node: ast.AST,
                message: str) -> Finding:
        lineno = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        return Finding(rule=self.rule_id, path=module.display_path,
                       line=lineno, col=col, message=message,
                       snippet=module.line_text(lineno))

    def finding_at(self, module: Module, lineno: int,
                   message: str) -> Finding:
        return Finding(rule=self.rule_id, path=module.display_path,
                       line=lineno, col=0, message=message,
                       snippet=module.line_text(lineno))


def _check_rule(name: str, rule: object) -> None:
    if not isinstance(rule, LintRule) or not rule.rule_id:
        raise ConfigurationError(
            "lint rule %r must be a LintRule subclass with a non-empty "
            "rule_id" % (name,))
    if not rule.rationale:
        raise ConfigurationError(
            "lint rule %r must state its rationale (it becomes the "
            "docs/ANALYSIS.md catalog entry)" % (name,))


#: the ``lint-rule`` registry: rule id -> LintRule instance
LINT_RULES = Registry("lint-rule", instantiate=True, validate=_check_rule,
                      noun="lint rule")


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """``@register_rule`` — register a LintRule class under its id."""
    LINT_RULES.add(cls.rule_id, cls())
    return cls


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, importing the built-in rule modules."""
    from . import det, evt, exc, reg, schema  # noqa: F401  (self-registering)

    return tuple(LINT_RULES.values())
