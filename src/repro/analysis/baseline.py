"""The committed lint baseline: known findings that do not fail CI.

The baseline exists so the suite can be adopted mid-project: run
``match-bench lint --write-baseline`` once, commit the file, and every
*pre-existing* finding is grandfathered while any *new* finding still
fails. The shipped baseline is **empty** — the tree is lint-clean —
and the self-clean test pins it that way; growing it back is a
deliberate, reviewed act.

Entries match by content fingerprint (rule + file basename + stripped
source line), not line number, so pure line moves do not resurrect
baselined findings — but editing the offending line does, which is the
point: touched code must meet the current rules.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from ..errors import ConfigurationError
from .findings import Finding

#: the baseline's on-disk name, discovered upward from the linted paths
BASELINE_NAME = ".match-lint-baseline.json"

_FORMAT_VERSION = 1


class Baseline:
    """An in-memory set of grandfathered finding fingerprints."""

    def __init__(self, entries: Iterable[str] = (),
                 path: str | None = None):
        self.path = path
        self._entries = {str(entry) for entry in entries}

    def __len__(self) -> int:
        return len(self._entries)

    def covers(self, finding: Finding) -> bool:
        return finding.fingerprint() in self._entries

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Baseline":
        """Read a baseline file (raises on unreadable/invalid input —
        a typo'd path silently meaning "empty baseline" would turn the
        gate green)."""
        file_path = pathlib.Path(path)
        try:
            data = json.loads(file_path.read_text())
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                "cannot read lint baseline %s: %s" % (file_path, exc)
            ) from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise ConfigurationError(
                "lint baseline %s is not a baseline file (expected a "
                "JSON object with an 'entries' list)" % file_path)
        fingerprints = []
        for entry in data["entries"]:
            if isinstance(entry, dict):
                fingerprints.append(str(entry.get("fingerprint", "")))
            else:
                fingerprints.append(str(entry))
        return cls(tuple(f for f in fingerprints if f),
                   path=str(file_path))

    @classmethod
    def discover(cls, start: str | pathlib.Path) -> "Baseline":
        """The nearest committed baseline at or above ``start``, or an
        empty one when no ancestor directory carries the file."""
        probe = pathlib.Path(start).resolve()
        if probe.is_file():
            probe = probe.parent
        for directory in (probe, *probe.parents):
            candidate = directory / BASELINE_NAME
            if candidate.is_file():
                return cls.load(candidate)
        return cls()

    @staticmethod
    def write(path: str | pathlib.Path,
              findings: Iterable[Finding]) -> None:
        """Persist ``findings`` as the new baseline (sorted, stable)."""
        entries = sorted(
            ({"rule": f.rule, "path": f.path,
              "fingerprint": f.fingerprint(), "snippet": f.snippet}
             for f in findings),
            key=lambda entry: (entry["rule"], entry["path"],
                               entry["fingerprint"]))
        payload = {"format": _FORMAT_VERSION, "tool": "match-lint",
                   "entries": entries}
        pathlib.Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
