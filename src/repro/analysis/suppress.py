"""Inline suppressions: ``# repro: ignore[RULE-ID] -- reason``.

The grammar is deliberately strict:

* one or more rule ids in the brackets, comma-separated
  (``ignore[DET-RANDOM, EXC-BROAD]``);
* a ``--``-separated, non-empty reason is **required** — a silenced
  rule with no recorded justification is itself a violation
  (``LINT-SUPPRESS``);
* the comment silences matching findings on its own physical line, or
  — when the line holds nothing but the comment — on the next
  non-blank, non-comment line (the "banner" form above a statement).

Unused suppressions are reported (``LINT-UNUSED``): a suppression that
no longer silences anything is stale documentation and would silently
swallow a future regression at that line.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding

#: matches the marker anywhere in a comment token
_MARKER = re.compile(
    r"#\s*repro:\s*ignore"          # the marker
    r"(?:\[(?P<rules>[^\]]*)\])?"   # [RULE, RULE] (missing = malformed)
    r"(?:\s*--\s*(?P<reason>.*))?"  # -- reason   (missing = malformed)
    r"\s*$")

_RULE_ID = re.compile(r"^[A-Z][A-Z0-9]*(-[A-Z0-9]+)*$")


@dataclass
class Suppression:
    """One parsed ``# repro: ignore[...]`` comment."""

    #: line the comment sits on (1-based)
    line: int
    #: line whose findings it silences (== ``line`` for trailing form)
    target_line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)

    def covers(self, rule: str, line: int) -> bool:
        return line == self.target_line and rule in self.rules


def _is_blank_or_comment(text: str) -> bool:
    stripped = text.strip()
    return not stripped or stripped.startswith("#")


def _comment_tokens(lines: list[str]) -> list[tuple[int, int, str]]:
    """``(lineno, col, text)`` for every real COMMENT token.

    Tokenizing (rather than regex-scanning raw lines) is what keeps a
    docstring or string literal that merely *mentions* the grammar from
    acting as a suppression.
    """
    source = "\n".join(lines) + "\n"
    comments = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1],
                                 token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # unreachable for files that already ast-parsed; harmless
        # (no suppressions) for anything else
        return []
    return comments


def scan_suppressions(
        lines: list[str],
) -> tuple[list[Suppression], list[tuple[int, str]]]:
    """Parse every suppression comment in ``lines``.

    Returns ``(suppressions, malformed)`` where ``malformed`` is a list
    of ``(line, message)`` pairs for comments that match the marker but
    violate the grammar — those become ``LINT-SUPPRESS`` findings
    because a suppression that silently fails to parse would leave its
    author believing the finding is silenced.
    """
    suppressions: list[Suppression] = []
    malformed: list[tuple[int, str]] = []
    for lineno, col, comment in _comment_tokens(lines):
        if "repro:" not in comment or "ignore" not in comment:
            continue
        match = _MARKER.search(comment)
        if match is None:
            continue
        rules_blob, reason = match.group("rules"), match.group("reason")
        if rules_blob is None:
            malformed.append((lineno,
                              "suppression needs bracketed rule ids: "
                              "# repro: ignore[RULE-ID] -- reason"))
            continue
        rules = tuple(part.strip() for part in rules_blob.split(",")
                      if part.strip())
        bad = [rule for rule in rules if not _RULE_ID.match(rule)]
        if not rules or bad:
            malformed.append((lineno,
                              "suppression has no valid rule ids in %r"
                              % (rules_blob.strip(),)))
            continue
        if reason is None or not reason.strip():
            malformed.append((lineno,
                              "suppression for %s is missing its required "
                              "'-- reason'" % ", ".join(rules)))
            continue
        target = lineno
        if not lines[lineno - 1][:col].strip():
            # banner form: the comment owns the line; it covers the
            # next line that holds actual code
            target = lineno + 1
            while (target <= len(lines)
                   and _is_blank_or_comment(lines[target - 1])):
                target += 1
        suppressions.append(Suppression(line=lineno, target_line=target,
                                        rules=rules,
                                        reason=reason.strip()))
    return suppressions, malformed


def apply_suppressions(
        findings: list[Finding],
        suppressions: list[Suppression],
) -> tuple[list[Finding], int]:
    """Split ``findings`` into (surviving, silenced_count), marking the
    suppressions that did work as used."""
    surviving: list[Finding] = []
    silenced = 0
    for finding in findings:
        hit = None
        for suppression in suppressions:
            if suppression.covers(finding.rule, finding.line):
                hit = suppression
                break
        if hit is None:
            surviving.append(finding)
        else:
            hit.used = True
            silenced += 1
    return surviving, silenced
