"""Command-line entry for match-lint.

The same :func:`main` backs both invocations::

    python -m repro.analysis src/repro
    match-bench lint src/repro

Exit codes: 0 clean, 1 findings, 2 usage/configuration error — the
same convention the campaign CLI uses, so CI treats both uniformly.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Sequence

from ..errors import ConfigurationError
from .baseline import BASELINE_NAME, Baseline
from .engine import lint_paths, select_rules
from .render import render_report


def build_parser(prog: str = "match-lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Determinism & contract static analysis for the "
                    "MATCH reproduction tree.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", default="text",
                        choices=("text", "json"),
                        help="report format (default: text)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file (default: discover %s "
                             "above the first path)" % BASELINE_NAME)
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the surviving findings to the "
                             "baseline file and exit 0")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def list_rules() -> str:
    lines = ["registered lint rules:"]
    for rule in select_rules():
        lines.append("  %-16s %s" % (rule.rule_id, rule.rationale))
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None,
         prog: str = "match-lint") -> int:
    parser = build_parser(prog)
    options = parser.parse_args(list(argv) if argv is not None
                                else None)
    try:
        if options.list_rules:
            print(list_rules())
            return 0

        if options.no_baseline or options.write_baseline:
            # write mode must see the full finding set, so the old
            # baseline (which may not exist yet) is never loaded
            baseline: Baseline | None = Baseline()
        elif options.baseline is not None:
            baseline = Baseline.load(options.baseline)
        else:
            baseline = None  # discover next to the linted tree

        select = (options.select.split(",")
                  if options.select is not None else None)
        report = lint_paths(options.paths, baseline=baseline,
                            select=select,
                            report_unused=not options.write_baseline)

        if options.write_baseline:
            target = pathlib.Path(options.baseline or BASELINE_NAME)
            Baseline.write(target, report.findings)
            print("match-lint: wrote %d entr%s to %s"
                  % (len(report.findings),
                     "y" if len(report.findings) == 1 else "ies",
                     target))
            return 0

        print(render_report(report, options.format))
        return report.exit_code()
    except ConfigurationError as exc:
        print("match-lint: error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
