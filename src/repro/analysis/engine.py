"""The match-lint engine: walk files, run rules, apply suppressions
and the baseline, produce a :class:`LintReport`.

The engine is a pure function of the file contents — no imports of the
linted code ever happen (everything is :mod:`ast`), so linting cannot
execute side effects, and a file with a syntax error is itself a
finding rather than a crash.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from .baseline import Baseline
from .findings import Finding, LintReport
from .rules import LintRule, Module, Project, all_rules
from .suppress import apply_suppressions, scan_suppressions

#: rule id attached to unparseable files
SYNTAX_RULE = "LINT-SYNTAX"
#: rule id attached to malformed suppression comments
SUPPRESS_RULE = "LINT-SUPPRESS"
#: rule id attached to suppressions that silenced nothing
UNUSED_RULE = "LINT-UNUSED"

#: directories never descended into
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache",
                        ".pytest_cache", "build", "dist"})


def iter_python_files(
        paths: Sequence[str | pathlib.Path],
) -> list[pathlib.Path]:
    """Every ``.py`` file under ``paths`` (files taken verbatim,
    directories walked recursively), sorted for stable output."""
    collected: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    collected.append(candidate)
        elif path.is_file():
            collected.append(path)
        else:
            raise ConfigurationError("no such file or directory: %s"
                                     % path)
    return collected


def _display_path(path: pathlib.Path, roots: Sequence[pathlib.Path]) -> str:
    """Path relative to the nearest given root (for stable output)."""
    resolved = path.resolve()
    for root in roots:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def select_rules(
        select: Iterable[str] | None = None,
) -> tuple[LintRule, ...]:
    """The rules to run: all registered, optionally filtered."""
    rules = all_rules()
    if select is None:
        return rules
    wanted = {rule_id.strip() for rule_id in select if rule_id.strip()}
    known = {rule.rule_id for rule in rules}
    unknown = wanted - known - {SYNTAX_RULE, SUPPRESS_RULE, UNUSED_RULE}
    if unknown:
        raise ConfigurationError(
            "unknown lint rule id(s) %s (have %s)"
            % (sorted(unknown), sorted(known)))
    return tuple(rule for rule in rules if rule.rule_id in wanted)


def lint_paths(paths: Sequence[str | pathlib.Path],
               baseline: Baseline | None = None,
               select: Iterable[str] | None = None,
               report_unused: bool = True) -> LintReport:
    """Lint ``paths`` and return the :class:`LintReport`.

    ``baseline=None`` auto-discovers the nearest committed
    ``.match-lint-baseline.json`` above the first path (pass
    ``Baseline()`` for an explicitly empty one).
    """
    files = iter_python_files(paths)
    if baseline is None:
        baseline = (Baseline.discover(pathlib.Path(paths[0]))
                    if paths else Baseline())
    rules = select_rules(select)
    roots = [pathlib.Path(p).resolve() for p in paths]
    roots = [root if root.is_dir() else root.parent for root in roots]

    modules: list[Module] = []
    findings: list[Finding] = []
    suppressed_total = 0
    for path in files:
        display = _display_path(path, roots)
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            raise ConfigurationError("cannot read %s: %s" % (path, exc)
                                     ) from exc
        try:
            module = Module(path, source, display_path=display)
        except SyntaxError as exc:
            findings.append(Finding(
                rule=SYNTAX_RULE, path=display,
                line=int(exc.lineno or 1), col=int(exc.offset or 0),
                message="file does not parse: %s" % exc.msg))
            continue
        modules.append(module)

    project = Project(modules)
    per_file: dict[int, list[Finding]] = {id(module): []
                                          for module in modules}
    for module in modules:
        for rule in rules:
            per_file[id(module)].extend(rule.check_module(module))
    # project-level rules anchor their findings on real modules, so
    # route them into the owning file's suppression pass
    by_display = {module.display_path: module for module in modules}
    for rule in rules:
        for finding in rule.check_project(project):
            owner = by_display.get(finding.path)
            if owner is not None:
                per_file[id(owner)].append(finding)
            else:
                findings.append(finding)

    for module in modules:
        suppressions, malformed = scan_suppressions(module.lines)
        for lineno, message in malformed:
            per_file[id(module)].append(Finding(
                rule=SUPPRESS_RULE, path=module.display_path,
                line=lineno, col=0, message=message,
                snippet=module.line_text(lineno)))
        surviving, silenced = apply_suppressions(
            per_file[id(module)], suppressions)
        suppressed_total += silenced
        if report_unused:
            for suppression in suppressions:
                if not suppression.used:
                    surviving.append(Finding(
                        rule=UNUSED_RULE, path=module.display_path,
                        line=suppression.line, col=0,
                        message="suppression for %s silences nothing; "
                                "delete it (a stale suppression would "
                                "swallow the next real finding here)"
                                % ", ".join(suppression.rules),
                        snippet=module.line_text(suppression.line)))
        findings.extend(surviving)

    surviving_findings: list[Finding] = []
    baselined = 0
    for finding in findings:
        if baseline.covers(finding):
            baselined += 1
        else:
            surviving_findings.append(finding)
    surviving_findings.sort(key=lambda f: (f.path, f.line, f.col,
                                           f.rule))

    return LintReport(
        findings=surviving_findings,
        suppressed=suppressed_total,
        baselined=baselined,
        files=len(files),
        rules=tuple(rule.rule_id for rule in rules))
