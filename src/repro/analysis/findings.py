"""Finding and report datatypes for match-lint.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintReport` is the outcome of linting a set of files: the
surviving findings plus the bookkeeping (how many were silenced by
inline suppressions, how many by the committed baseline) that the
renderers and the exit code consume.

Findings are frozen and JSON-round-trippable so the ``lint-json``
renderer and the baseline file share one canonical representation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: the violated rule, e.g. ``"DET-RANDOM"``
    rule: str
    #: path as given to the engine (repo-relative when linting a tree)
    path: str
    #: 1-based source line
    line: int
    #: 0-based column
    col: int
    message: str
    #: the stripped source line text (stable across pure line moves,
    #: which is what makes baseline fingerprints survive refactors)
    snippet: str = ""

    def fingerprint(self) -> str:
        """Content fingerprint used for baseline matching.

        Deliberately excludes the line *number*: moving an unchanged
        violation up or down a file must not un-baseline it.
        """
        blob = "\x1f".join((self.rule, _basename(self.path), self.snippet))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return "%s:%d:%d" % (self.path, self.line, self.col + 1)

    def to_dict(self) -> dict[str, Any]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message,
                "snippet": self.snippet,
                "fingerprint": self.fingerprint()}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        return cls(rule=str(data.get("rule", "")),
                   path=str(data.get("path", "")),
                   line=int(data.get("line", 0)),
                   col=int(data.get("col", 0)),
                   message=str(data.get("message", "")),
                   snippet=str(data.get("snippet", "")))


def _basename(path: str) -> str:
    """The path's tail (``pkg/mod.py`` -> ``mod.py``), so fingerprints
    survive linting the same tree from different roots."""
    return path.replace("\\", "/").rsplit("/", 1)[-1]


@dataclass
class LintReport:
    """Everything one lint invocation produced."""

    #: surviving findings (not suppressed, not baselined), sorted
    findings: list[Finding] = field(default_factory=list)
    #: findings silenced by a valid inline suppression
    suppressed: int = 0
    #: findings silenced by the committed baseline
    baselined: int = 0
    files: int = 0
    #: rule ids that actually executed
    rules: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> str:
        if self.clean:
            extra = []
            if self.suppressed:
                extra.append("%d suppressed" % self.suppressed)
            if self.baselined:
                extra.append("%d baselined" % self.baselined)
            tail = (" (%s)" % ", ".join(extra)) if extra else ""
            return ("match-lint: clean — %d file(s), %d rule(s)%s"
                    % (self.files, len(self.rules), tail))
        per_rule = ", ".join("%s: %d" % item
                             for item in self.counts_by_rule().items())
        return ("match-lint: %d finding(s) in %d file(s) [%s]"
                % (len(self.findings), self.files, per_rule))
