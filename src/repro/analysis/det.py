"""DET rules: determinism contracts (bit-identity's static half).

Every result this repo publishes is pinned bit-identical across
serial/parallel/sharded/resumed execution and across scalar/vectorized
advisors. The dynamic half of that contract lives in the determinism
regression tests; these rules are the static half — the four ways
nondeterminism historically sneaks into Python code:

* hidden global RNG state (``DET-RANDOM``),
* wall-clock reads in pure simulation paths (``DET-WALLCLOCK``),
* hash-order-dependent iteration (``DET-SET-ORDER``),
* environment variables as unkeyed config (``DET-ENV``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .contracts import (
    ENV_ALLOWLIST,
    ENV_CONSTANT_NAMES,
    NP_RANDOM_ALLOWED,
    RANDOM_ALLOWED,
    WALLCLOCK_CALLS,
    WALLCLOCK_DIRS,
    WALLCLOCK_FILES,
)
from .findings import Finding
from .rules import LintRule, Module, register_rule

#: spellings of the numpy module in attribute chains
_NUMPY_NAMES = ("np", "numpy")


def _random_imports(module: Module) -> tuple[str, ...]:
    """Names bound by ``from random import ...`` (minus allowed ones)."""
    banned = []
    for node in module.walk():
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name not in RANDOM_ALLOWED:
                    banned.append(alias.asname or alias.name)
    return tuple(banned)


@register_rule
class RandomRule(LintRule):
    """DET-RANDOM: no module-level RNG — every draw must come from an
    explicitly seeded generator object."""

    rule_id = "DET-RANDOM"
    rationale = ("calls through the hidden module-level RNG "
                 "(random.*, np.random.*) share mutable global state; "
                 "draws then depend on call order across the whole "
                 "process — use random.Random(seed) / "
                 "np.random.default_rng(seed) instances")

    def check_module(self, module: Module) -> Iterator[Finding]:
        from_imports = _random_imports(module)
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = module.dotted_name(node.func)
            if not dotted:
                continue
            finding = self._classify(module, node, dotted, from_imports)
            if finding is not None:
                yield finding

    def _classify(self, module: Module, node: ast.Call, dotted: str,
                  from_imports: tuple[str, ...]) -> Finding | None:
        head, _, attr = dotted.rpartition(".")
        if head == "random":
            if attr in RANDOM_ALLOWED:
                return None
            return self.finding(
                module, node,
                "random.%s() drives the module-level RNG; use a seeded "
                "random.Random(seed) instance" % attr)
        if head in ("%s.random" % name for name in _NUMPY_NAMES):
            if attr in NP_RANDOM_ALLOWED:
                if attr == "default_rng" and not (node.args
                                                  or node.keywords):
                    return self.finding(
                        module, node,
                        "np.random.default_rng() without a seed draws "
                        "OS entropy; pass the run's seed explicitly")
                return None
            return self.finding(
                module, node,
                "np.random.%s() uses numpy's global RNG; use "
                "np.random.default_rng(seed)" % attr)
        if dotted in from_imports:
            return self.finding(
                module, node,
                "%s() (imported from random) drives the module-level "
                "RNG; use a seeded random.Random(seed) instance"
                % dotted)
        return None


@register_rule
class WallClockRule(LintRule):
    """DET-WALLCLOCK: simulation/checkpoint/fault/run-key code must not
    read the wall clock."""

    rule_id = "DET-WALLCLOCK"
    rationale = ("simmpi/fti/faults and the run-key path are pure "
                 "functions of (config, seed); time.time()/"
                 "datetime.now() there makes replayed runs diverge "
                 "from recorded ones")

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.in_scope(WALLCLOCK_DIRS, WALLCLOCK_FILES):
            return ()
        findings = []
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = module.dotted_name(node.func)
            if dotted in WALLCLOCK_CALLS:
                findings.append(self.finding(
                    module, node,
                    "%s() reads the wall clock inside a deterministic "
                    "path; derive times from the simulated clock or "
                    "the config" % dotted))
        return findings


def _is_set_expression(node: ast.AST) -> bool:
    """A freshly built set: ``set(...)``/``frozenset(...)`` calls, set
    literals and set comprehensions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


#: sequence builders whose output order is the iteration order
_ORDER_SENSITIVE_BUILDERS = ("list", "tuple", "enumerate")


@register_rule
class SetOrderRule(LintRule):
    """DET-SET-ORDER: never iterate a freshly built set into ordered
    output."""

    rule_id = "DET-SET-ORDER"
    rationale = ("iteration order of a set depends on hashes and "
                 "insertion history; feeding it into loops, lists or "
                 "joined strings makes labels, payloads and run keys "
                 "flap — wrap in sorted(...) or keep a list")

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in module.walk():
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and _is_set_expression(node.iter):
                yield self.finding(
                    module, node.iter,
                    "for-loop over a freshly built set iterates in "
                    "hash order; use sorted(...)")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter) \
                            and not isinstance(node, ast.SetComp):
                        yield self.finding(
                            module, generator.iter,
                            "comprehension over a freshly built set "
                            "produces hash-ordered output; use "
                            "sorted(...)")
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in _ORDER_SENSITIVE_BUILDERS
                  and node.args and _is_set_expression(node.args[0])):
                yield self.finding(
                    module, node,
                    "%s(set(...)) freezes an arbitrary hash order into "
                    "a sequence; use sorted(...)" % node.func.id)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "join"
                  and node.args and _is_set_expression(node.args[0])):
                yield self.finding(
                    module, node,
                    "str.join over a freshly built set concatenates in "
                    "hash order; use sorted(...)")


#: os.environ methods that take the variable name as first argument
_ENV_METHODS = ("get", "pop", "setdefault", "__contains__")


def _env_key_node(node: ast.AST) -> ast.AST | None:
    """The key expression of an ``os.environ``/``os.getenv`` access,
    or None when ``node`` is no such access."""
    if isinstance(node, ast.Subscript):
        if Module.dotted_name(node.value) in ("os.environ", "environ"):
            return node.slice
        return None
    if isinstance(node, ast.Call):
        dotted = Module.dotted_name(node.func)
        if dotted in ("os.getenv", "getenv"):
            return node.args[0] if node.args else None
        head, _, attr = dotted.rpartition(".")
        if head in ("os.environ", "environ") and attr in _ENV_METHODS:
            return node.args[0] if node.args else None
    return None


@register_rule
class EnvRule(LintRule):
    """DET-ENV: environment reads outside the sanctioned allowlist are
    hidden configuration."""

    rule_id = "DET-ENV"
    rationale = ("os.environ is config that never enters the run key: "
                 "two 'identical' runs can diverge on it silently; "
                 "only the sanctioned harness variables (%s) may be "
                 "consulted" % ", ".join(sorted(ENV_ALLOWLIST)))

    def check_module(self, module: Module) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()
        for node in module.walk():
            key = _env_key_node(node)
            if key is None:
                continue
            marker = (getattr(node, "lineno", 0),
                      getattr(node, "col_offset", 0))
            if marker in seen:  # Subscript inside a Call already handled
                continue
            seen.add(marker)
            if self._sanctioned(key):
                continue
            label = self._describe(key)
            yield self.finding(
                module, node,
                "environment variable %s is read outside the "
                "sanctioned allowlist (%s); thread it through the "
                "config instead" % (label,
                                    ", ".join(sorted(ENV_ALLOWLIST))))

    @staticmethod
    def _sanctioned(key: ast.AST) -> bool:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            return key.value in ENV_ALLOWLIST
        if isinstance(key, ast.Name):
            return key.id in ENV_CONSTANT_NAMES
        dotted = Module.dotted_name(key)
        return dotted.rpartition(".")[2] in ENV_CONSTANT_NAMES

    @staticmethod
    def _describe(key: ast.AST) -> str:
        if isinstance(key, ast.Constant):
            return repr(key.value)
        dotted = Module.dotted_name(key)
        return dotted if dotted else "<dynamic key>"
