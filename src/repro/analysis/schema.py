"""SCHEMA-RUN-KEY: the run-key payload matches its versioned manifest.

Run keys are the content addresses of every stored result; a payload
field added without a ``RUN_KEY_SCHEMA`` bump silently aliases new
configs onto old stored results (resume skips runs it never did), and
a bump without a payload change orphans every existing store for
nothing. PR 3 bumped the schema for ``faults``; PR 5 deliberately did
*not* bump it for ``interval`` (dropped from the payload). Both
decisions are recorded in
:data:`repro.analysis.contracts.RUN_KEY_MANIFEST`, and this rule keeps
``repro/core/configs.py`` and the manifest agreeing — in both
directions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .contracts import RUN_KEY_MANIFEST
from .findings import Finding
from .rules import LintRule, Module, Project, register_rule


def _schema_assignment(module: Module) -> ast.Assign | None:
    for node in module.tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "RUN_KEY_SCHEMA"):
            return node
    return None


def _dataclass_fields(class_def: ast.ClassDef) -> tuple[str, ...]:
    """Annotated field names of a dataclass body, in order."""
    names = []
    for node in class_def.body:
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            names.append(node.target.id)
    return tuple(names)


def _dropped_fields(function: ast.FunctionDef) -> tuple[str, ...]:
    """Fields ``config_to_dict`` removes before hashing: literal
    ``del data["x"]`` statements and ``data.pop("x")`` calls."""
    dropped = []
    for node in ast.walk(function):
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)):
                    dropped.append(target.slice.value)
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr == "pop" and node.args
              and isinstance(node.args[0], ast.Constant)
              and isinstance(node.args[0].value, str)):
            dropped.append(node.args[0].value)
    return tuple(dropped)


def _payload_keys(function: ast.FunctionDef) -> tuple[str, ...]:
    """String keys of the first dict literal assigned to ``payload``."""
    for node in ast.walk(function):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "payload"
                and isinstance(node.value, ast.Dict)):
            keys = []
            for key in node.value.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys.append(key.value)
            return tuple(keys)
    return ()


@register_rule
class RunKeySchemaRule(LintRule):
    """SCHEMA-RUN-KEY: configs.py vs. the versioned payload manifest."""

    rule_id = "SCHEMA-RUN-KEY"
    rationale = ("every run-key payload shape is recorded per "
                 "RUN_KEY_SCHEMA version in repro/analysis/contracts.py"
                 "; adding a config field without bumping the schema "
                 "(stale stores would alias new configs onto old "
                 "results), or bumping without a payload change "
                 "(orphaning every store for nothing), fails the lint")

    def check_project(self, project: Project) -> Iterator[Finding]:
        module = project.find("core/configs.py")
        if module is None:
            return
        yield from self.check_configs(module)

    def check_configs(self, module: Module) -> Iterator[Finding]:
        assignment = _schema_assignment(module)
        if assignment is None \
                or not isinstance(assignment.value, ast.Constant) \
                or not isinstance(assignment.value.value, int):
            yield self.finding_at(
                module, 1,
                "RUN_KEY_SCHEMA must be a literal int assignment in "
                "core/configs.py")
            return
        schema = assignment.value.value
        latest = max(RUN_KEY_MANIFEST)
        if schema != latest:
            yield self.finding(
                module, assignment,
                "RUN_KEY_SCHEMA is %d but the payload manifest's "
                "latest version is %d; a schema bump and its manifest "
                "entry must land in the same change" % (schema, latest))
            return

        functions = {node.name: node for node in module.tree.body
                     if isinstance(node, ast.FunctionDef)}
        classes = module.class_defs()
        expected = RUN_KEY_MANIFEST[schema]

        config_class = classes.get("ExperimentConfig")
        to_dict = functions.get("config_to_dict")
        run_key = functions.get("run_key")
        if config_class is None or to_dict is None or run_key is None:
            yield self.finding_at(
                module, 1,
                "core/configs.py must define ExperimentConfig, "
                "config_to_dict and run_key for the schema check")
            return

        declared = _dataclass_fields(config_class)
        dropped = _dropped_fields(to_dict)
        effective = tuple(name for name in declared
                          if name not in dropped)
        if set(effective) != set(expected["config"]):
            added = sorted(set(effective) - set(expected["config"]))
            removed = sorted(set(expected["config"]) - set(effective))
            detail = []
            if added:
                detail.append("new payload field(s) %s" % added)
            if removed:
                detail.append("missing payload field(s) %s" % removed)
            yield self.finding(
                module, config_class,
                "run-key payload fields changed without a schema bump: "
                "%s (schema still %d). Bump RUN_KEY_SCHEMA and add a "
                "manifest entry, or drop the field from config_to_dict "
                "like 'interval'" % ("; ".join(detail), schema))

        top = _payload_keys(run_key)
        if set(top) != set(expected["top"]):
            yield self.finding(
                module, run_key,
                "run_key payload keys %s diverged from the manifest's "
                "%s" % (sorted(top), sorted(expected["top"])))

        previous = schema - 1
        if previous in RUN_KEY_MANIFEST and \
                RUN_KEY_MANIFEST[previous] == expected:
            yield self.finding(
                module, assignment,
                "schema %d is byte-identical to schema %d in the "
                "manifest: the bump invalidated every store without a "
                "payload change" % (schema, previous))
