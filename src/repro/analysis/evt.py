"""EVT-EXPORT: every public event class reaches the public surface.

The typed event stream is the facade's primary protocol: consumers
``match``/``isinstance`` on event classes, so an event that exists in
``repro.core.events`` but is missing from ``events.__all__``, from the
``repro.api`` facade surface, or from docs/API.md is an API users can
receive but not import or read about. PR 6 shipped exactly this gap
(``UnitRetrying``/``CampaignAborted`` reached ``__all__`` but not the
docs), which is what promoted the check into a rule.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterator

from .contracts import EVT_DOC_RELPATH, EVT_FACADE_SUFFIX
from .findings import Finding
from .rules import LintRule, Module, Project, register_rule

#: how far above events.py to look for the documentation root
_DOC_SEARCH_DEPTH = 6


def _event_classes(module: Module) -> tuple[ast.ClassDef, ...]:
    """Public class definitions in the events module, in order."""
    return tuple(node for node in module.tree.body
                 if isinstance(node, ast.ClassDef)
                 and not node.name.startswith("_"))


def _facade_all(events_path: pathlib.Path,
                project: Project) -> tuple[str, ...] | None:
    """The facade's ``__all__``: from the linted set when present,
    else read off disk next to the events package."""
    facade = project.find("repro/" + EVT_FACADE_SUFFIX)
    if facade is not None:
        return facade.dunder_all()
    candidate = events_path.parent.parent / EVT_FACADE_SUFFIX
    if not candidate.is_file():
        return None
    try:
        source = candidate.read_text()
        facade = Module(candidate, source)
    except (OSError, SyntaxError):
        return None
    return facade.dunder_all()


def _doc_text(
        events_path: pathlib.Path,
) -> tuple[pathlib.Path, str] | None:
    """``(doc_path, text)`` of docs/API.md found above events.py."""
    probe = events_path.resolve().parent
    for _ in range(_DOC_SEARCH_DEPTH):
        candidate = probe / EVT_DOC_RELPATH
        if candidate.is_file():
            try:
                return (candidate, candidate.read_text())
            except OSError:
                return None
        if probe.parent == probe:
            break
        probe = probe.parent
    return None


@register_rule
class EventExportRule(LintRule):
    """EVT-EXPORT: events exist in __all__, the facade and the docs."""

    rule_id = "EVT-EXPORT"
    rationale = ("consumers match on event classes by identity, so an "
                 "event missing from events.__all__, repro.api.__all__ "
                 "or docs/API.md is deliverable but unimportable/"
                 "undocumented — the streaming protocol's surface must "
                 "stay closed")

    def check_project(self, project: Project) -> Iterator[Finding]:
        module = project.find("core/events.py")
        if module is None:
            return
        classes = _event_classes(module)
        if not classes:
            return
        exported = module.dunder_all()
        if exported is None:
            yield self.finding_at(
                module, 1,
                "the events module must declare a literal __all__ "
                "(it is the event protocol's closed surface)")
            exported = ()
        for class_def in classes:
            if class_def.name not in exported:
                yield self.finding(
                    module, class_def,
                    "event class %s is missing from events.__all__"
                    % class_def.name)

        facade_all = _facade_all(module.path, project)
        if facade_all is not None:
            for class_def in classes:
                if class_def.name not in facade_all:
                    yield self.finding(
                        module, class_def,
                        "event class %s is not re-exported by the "
                        "repro.api facade __all__ (consumers import "
                        "events from the facade)" % class_def.name)

        doc = _doc_text(module.path)
        if doc is not None:
            doc_path, text = doc
            for class_def in classes:
                if class_def.name not in text:
                    yield self.finding(
                        module, class_def,
                        "event class %s is not documented in %s"
                        % (class_def.name, doc_path.name))
