"""REG-PROTOCOL: registrants satisfy their registry's protocol, statically.

The registries validate protocols at *registration time* (import), but
a plugin module that is only imported inside spawned campaign workers
fails far from its author. This rule runs the same checks at lint
time, on the AST: every class or function registered via
``@REGISTRY.register(...)``, ``REGISTRY.add("name", Thing)`` or
``@register("kind", ...)`` must statically define the protocol's
required methods with compatible arity.

Method lookup walks base classes *defined in the same module* (the
``DesignBase``/``ScenarioKind`` pattern). A base imported from
elsewhere makes the class unattributable statically — the rule then
stays silent rather than guessing (the runtime validator still has
it covered).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .contracts import (
    REGISTRY_CONTRACTS,
    REGISTRY_CONTRACTS_BY_KIND,
    MethodSpec,
    RegistryContract,
)
from .findings import Finding
from .rules import LintRule, Module, register_rule


def _registration_contract(decorator: ast.expr) -> RegistryContract | None:
    """The contract a decorator registers against, or None."""
    if not isinstance(decorator, ast.Call):
        return None
    func = decorator.func
    # @REGISTRY.register(...) — match the registry variable's name,
    # however it was imported (DESIGNS, store.STORES, ...)
    if isinstance(func, ast.Attribute) and func.attr == "register":
        head = Module.dotted_name(func.value)
        return REGISTRY_CONTRACTS.get(head.rpartition(".")[2])
    # @register("kind", "name") — the top-level decorator form
    if isinstance(func, ast.Name) and func.id == "register" \
            and decorator.args:
        kind = decorator.args[0]
        if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
            return REGISTRY_CONTRACTS_BY_KIND.get(kind.value)
    return None


def _add_call_contract(node: ast.Call) -> RegistryContract | None:
    """The contract behind a ``REGISTRY.add("name", Thing)`` call."""
    if isinstance(node.func, ast.Attribute) and node.func.attr == "add":
        head = Module.dotted_name(node.func.value)
        contract = REGISTRY_CONTRACTS.get(head.rpartition(".")[2])
        if contract is not None and len(node.args) >= 2:
            return contract
    return None


class _ClassView:
    """Method lookup over a class and its same-module bases."""

    def __init__(self, class_def: ast.ClassDef,
                 classes: dict[str, ast.ClassDef]):
        self.class_def = class_def
        self._classes = classes

    def resolve(
            self, method: str,
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | str | None:
        """``(FunctionDef, decorators)`` for ``method``, or the string
        ``"unknown"`` when an imported base makes lookup unsound, or
        None when the method is provably absent."""
        seen: set[str] = set()
        stack: list[ast.ClassDef] = [self.class_def]
        unknown_base = False
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            for node in current.body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)) \
                        and node.name == method:
                    return node
            for base in current.bases:
                if isinstance(base, ast.Name) \
                        and base.id in self._classes:
                    stack.append(self._classes[base.id])
                elif isinstance(base, ast.Name) and base.id == "object":
                    pass
                else:
                    unknown_base = True
        return "unknown" if unknown_base else None


def _accepts(function: ast.FunctionDef | ast.AsyncFunctionDef,
             call_args: int, skip_first: bool) -> bool:
    """Whether ``function`` can be called with ``call_args`` positional
    arguments (after self/cls when ``skip_first``)."""
    args = function.args
    positional = list(args.posonlyargs) + list(args.args)
    if skip_first and positional:
        positional = positional[1:]
    maximum = len(positional)
    required = maximum - len(args.defaults)
    if args.vararg is not None:
        return call_args >= required
    return required <= call_args <= maximum


@register_rule
class RegistryProtocolRule(LintRule):
    """REG-PROTOCOL: registered classes/handlers define their protocol."""

    rule_id = "REG-PROTOCOL"
    rationale = ("a registrant missing a protocol method (or with an "
                 "incompatible arity) registers fine in the author's "
                 "process and explodes mid-campaign inside a spawned "
                 "worker; the same contract the registries enforce at "
                 "import time is checked here at lint time")

    def check_module(self, module: Module) -> Iterator[Finding]:
        classes = module.class_defs()
        for node in module.walk():
            if isinstance(node, ast.ClassDef):
                for decorator in node.decorator_list:
                    contract = _registration_contract(decorator)
                    if contract is not None:
                        yield from self._check_class(module, node,
                                                     classes, contract)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                for decorator in node.decorator_list:
                    contract = _registration_contract(decorator)
                    if contract is not None \
                            and contract.callable_args is not None:
                        yield from self._check_callable(module, node,
                                                        contract)
            elif isinstance(node, ast.Call):
                contract = _add_call_contract(node)
                if contract is None:
                    continue
                target = node.args[1]
                if isinstance(target, ast.Name) \
                        and target.id in classes:
                    yield from self._check_class(
                        module, classes[target.id], classes, contract,
                        at=node)

    def _check_class(self, module: Module, class_def: ast.ClassDef,
                     classes: dict[str, ast.ClassDef],
                     contract: RegistryContract,
                     at: ast.AST | None = None) -> Iterator[Finding]:
        view = _ClassView(class_def, classes)
        for group in contract.required:
            yield from self._check_group(module, class_def, view,
                                         contract, group, at)

    def _check_group(self, module: Module, class_def: ast.ClassDef,
                     view: _ClassView, contract: RegistryContract,
                     group: tuple[MethodSpec, ...],
                     at: ast.AST | None) -> Iterator[Finding]:
        wrong_arity: list[tuple[MethodSpec, ast.FunctionDef | ast.AsyncFunctionDef]] = []
        for spec in group:
            resolved = view.resolve(spec.name)
            if resolved == "unknown":
                return  # imported base: statically unattributable
            if resolved is None:
                continue
            if self._arity_ok(resolved, spec):
                return  # satisfied
            wrong_arity.append((spec, resolved))
        anchor = at if at is not None else class_def
        names = " or ".join("%s()" % spec.name for spec in group)
        if wrong_arity:
            spec, resolved = wrong_arity[0]
            yield self.finding(
                module, anchor,
                "%s.%s() cannot accept the %d positional argument(s) "
                "the %r registry protocol calls it with"
                % (class_def.name, spec.name, spec.call_args,
                   contract.kind))
        else:
            yield self.finding(
                module, anchor,
                "%s is registered as a %r but defines no %s required "
                "by the protocol" % (class_def.name, contract.kind,
                                     names))

    @staticmethod
    def _arity_ok(function: ast.FunctionDef | ast.AsyncFunctionDef,
                  spec: MethodSpec) -> bool:
        decorators = {Module.dotted_name(d).rpartition(".")[2]
                      for d in function.decorator_list}
        skip_first = "staticmethod" not in decorators
        return _accepts(function, spec.call_args, skip_first)

    def _check_callable(self, module: Module,
                        function: ast.FunctionDef | ast.AsyncFunctionDef,
                        contract: RegistryContract) -> Iterator[Finding]:
        if not _accepts(function, contract.callable_args or 0,
                        skip_first=False):
            yield self.finding(
                module, function,
                "%s() is registered as a %r but cannot accept the %d "
                "positional argument(s) the protocol passes"
                % (function.name, contract.kind,
                   contract.callable_args))
