"""Reduction operators for collectives (the analogue of ``MPI_Op``).

All operators work on scalars and element-wise on numpy arrays, matching
MPI semantics for contiguous buffers.
"""

from __future__ import annotations

import numpy as np


def SUM(a, b):
    """Element-wise sum (``MPI_SUM``)."""
    return a + b


def PROD(a, b):
    """Element-wise product (``MPI_PROD``)."""
    return a * b


def MAX(a, b):
    """Element-wise maximum (``MPI_MAX``)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return a if a >= b else b


def MIN(a, b):
    """Element-wise minimum (``MPI_MIN``)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return a if a <= b else b


def LAND(a, b):
    """Logical and (``MPI_LAND``)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_and(a, b)
    return bool(a) and bool(b)


def LOR(a, b):
    """Logical or (``MPI_LOR``)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_or(a, b)
    return bool(a) or bool(b)


def BAND(a, b):
    """Bitwise and (``MPI_BAND``) — used by ULFM's agreement."""
    return a & b


def reduce_contributions(contributions, op):
    """Left fold of rank-ordered contributions, as MPI requires."""
    it = iter(contributions)
    acc = next(it)
    for value in it:
        acc = op(acc, value)
    return acc
