"""Operation and message datatypes exchanged between rank coroutines and
the scheduler.

Every MPI call an application makes is ultimately a ``yield`` of one of
these operation records; the runtime matches them, advances virtual time
and resumes the coroutine with the operation's result.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class OpKind(enum.Enum):
    """Discriminator for scheduler dispatch."""

    COMPUTE = "compute"
    SEND = "send"
    RECV = "recv"
    BARRIER = "barrier"
    BCAST = "bcast"
    REDUCE = "reduce"
    ALLREDUCE = "allreduce"
    GATHER = "gather"
    ALLGATHER = "allgather"
    SCATTER = "scatter"
    ALLTOALL = "alltoall"
    SCAN = "scan"
    ITER_MARK = "iter_mark"
    STORE_WRITE = "store_write"
    STORE_READ = "store_read"
    REVOKE = "revoke"
    SHRINK = "shrink"
    SPAWN = "spawn"
    MERGE = "merge"
    AGREE = "agree"
    ABORT = "abort"
    SLEEP = "sleep"


#: operation kinds resolved by a collective rendezvous of all comm members
COLLECTIVE_KINDS = frozenset({
    OpKind.BARRIER, OpKind.BCAST, OpKind.REDUCE, OpKind.ALLREDUCE,
    OpKind.GATHER, OpKind.ALLGATHER, OpKind.SCATTER, OpKind.ALLTOALL,
    OpKind.SCAN, OpKind.SHRINK, OpKind.SPAWN, OpKind.MERGE, OpKind.AGREE,
})


@dataclass(slots=True)
class Op:
    """One operation submitted by a rank coroutine.

    ``rank`` is filled in by the runtime when the op is received, so
    application-level helpers never need to know their own rank.
    """

    kind: OpKind
    comm: Any = None
    #: world rank of the peer (SEND destination / RECV source)
    peer: Optional[int] = None
    tag: int = 0
    #: payload carried by SEND / contributed to a collective
    payload: Any = None
    #: bytes on the wire; inferred from payload when None
    nbytes: Optional[int] = None
    #: root world-rank index *within the communicator* for rooted collectives
    root: int = 0
    #: reduction callable for REDUCE/ALLREDUCE/SCAN
    reduce_op: Optional[Callable] = None
    #: seconds of local work for COMPUTE / SLEEP
    seconds: float = 0.0
    #: iteration number for ITER_MARK
    iteration: int = -1
    #: storage tier + path for STORE_* ops
    store: Any = None
    path: str = ""
    #: world rank doing the op; assigned by the runtime
    rank: int = -1

    def __post_init__(self):
        if self.nbytes is None:
            self.nbytes = payload_nbytes(self.payload)


def payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload object.

    numpy arrays report their true buffer size; scalars count as 8 bytes;
    ``bytes`` count themselves; everything else is sized by a shallow
    structural walk with an 8-byte floor.
    """
    if payload is None:
        return 0
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, complex):
        return 16
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple, set, frozenset)):
        return max(8, sum(payload_nbytes(item) for item in payload))
    if isinstance(payload, dict):
        return max(8, sum(payload_nbytes(k) + payload_nbytes(v)
                          for k, v in payload.items()))
    return 8


@dataclass(slots=True)
class Status:
    """Completion record handed back with RECV results."""

    source: int
    tag: int
    nbytes: int
    completed_at: float


@dataclass(slots=True)
class Message:
    """An in-flight point-to-point message held in the unexpected queue."""

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    sent_at: float
    seq: int = field(default=0)
