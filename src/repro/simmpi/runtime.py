"""The simulated MPI runtime: a deterministic SPMD scheduler.

Every rank is a Python generator coroutine. An MPI call is a ``yield`` of
an :class:`~repro.simmpi.datatypes.Op`; the scheduler matches operations,
prices them with the cluster's network/storage models, advances per-rank
virtual clocks and resumes coroutines with results. Failures are
fail-stop: a killed rank simply stops yielding, and peers observe
:class:`~repro.errors.ProcessFailedError` once the failure detector's
latency has elapsed — or the whole job aborts if the communicator's error
handler is ``FATAL`` (the Restart design's path).

Scheduling is rank-ordered and time-independent of host wall-clock, so
every experiment is exactly reproducible.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from .communicator import Communicator
from .datatypes import COLLECTIVE_KINDS, Message, Op, OpKind, Status
from .errhandler import ErrHandler
from .failures import DetectorSpec, FailureDetector, FailureLog
from .overhead import OverheadModel
from .reduceops import BAND, reduce_contributions
from ..cluster.machine import Cluster
from ..cluster.simclock import SimClock
from ..errors import (
    CommRevokedError,
    DeadlockError,
    JobAbortedError,
    ProcessFailedError,
    SimulationError,
)


class RankStatus(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    DEAD = "dead"


class StartState(enum.Enum):
    """Why this coroutine instance was started (visible to applications)."""

    INITIAL = "initial"
    #: restarted by Reinit's global-restart path
    RESTARTED = "restarted"
    #: spawned as a replacement during ULFM non-shrinking recovery
    RESPAWNED = "respawned"


class _Throw:
    """Marker: deliver an exception into the coroutine at next resume."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


@dataclass
class _Rank:
    rank: int
    gen: Generator
    status: RankStatus = RankStatus.READY
    #: value (or _Throw) to deliver at next resume
    inbox: Any = None
    exit_value: Any = None
    #: the op this rank is currently blocked on, if any
    blocked_on: Optional[Op] = None
    start_state: StartState = StartState.INITIAL


@dataclass
class _CollectiveSite:
    """Rendezvous point for one collective call on one communicator.

    Roster tracking is incremental (O(1) per arrival): ``missing`` holds
    the alive members that have not arrived yet, and ``dead_flag`` is set
    as soon as any member is known failed.
    """

    comm: Communicator
    kind: OpKind
    #: world rank -> (Op, arrival time)
    arrivals: dict = field(default_factory=dict)
    #: alive members still expected
    missing: set = field(default_factory=set)
    dead_flag: bool = False

    @classmethod
    def create(cls, comm: Communicator, kind: OpKind,
               failure_log: FailureLog) -> "_CollectiveSite":
        site = cls(comm=comm, kind=kind)
        dead = [w for w in failure_log.failed_ranks() if comm.contains(w)]
        site.missing = set(comm.world_ranks).difference(dead)
        site.dead_flag = bool(dead)
        return site

    def note_arrival(self, rank: int) -> None:
        self.missing.discard(rank)

    def note_failure(self, rank: int) -> None:
        if self.comm.contains(rank):
            self.missing.discard(rank)
            self.dead_flag = True

    def complete_roster(self) -> bool:
        return not self.missing

    def has_dead_member(self) -> bool:
        return self.dead_flag


class Runtime:
    """Owns the coroutines, the clock and all matching state for one job."""

    #: cost constants for ULFM recovery operations (seconds); the log-depth
    #: scaling is what makes ULFM recovery grow with process count (Fig. 7)
    REVOKE_ALPHA = 0.012
    SHRINK_ALPHA = 0.11
    #: ULFM's shrink runs an all-to-all style consensus whose volume grows
    #: with the group: a per-process term on top of the log-depth rounds
    SHRINK_PER_PROC = 0.008
    AGREE_ALPHA = 0.055
    MERGE_ALPHA = 0.035
    SPAWN_BASE = 0.9
    SPAWN_PER_PROC = 0.012

    def __init__(self, cluster: Cluster, nprocs: int,
                 entry: Callable[["MpiApi"], Generator],
                 detector_spec: DetectorSpec | None = None,
                 overhead: OverheadModel | None = None,
                 fault_plan=None,
                 on_global_failure: Optional[Callable] = None,
                 errhandler: ErrHandler = ErrHandler.FATAL):
        from .api import MpiApi  # local import to avoid a cycle

        self.cluster = cluster
        self.nprocs = nprocs
        self.entry = entry
        self.clock = SimClock(nprocs)
        self.detector = FailureDetector(detector_spec)
        self.failure_log = FailureLog(self.detector, nprocs)
        self.overhead = overhead or OverheadModel()
        self.fault_plan = fault_plan
        #: Reinit hooks in here: called instead of aborting the job
        self.on_global_failure = on_global_failure
        self.world = Communicator(range(nprocs), "world",
                                  errhandler=errhandler)
        cluster.place_job(nprocs)
        self._api_cls = MpiApi
        self._ranks: dict[int, _Rank] = {}
        self._send_queue: list[Message] = []
        self._recv_waiters: dict[int, Op] = {}
        self._sites: dict[int, list] = {}
        self._seq = 0
        self._aborted: Optional[JobAbortedError] = None
        self._pending_global_failure: Optional[tuple] = None
        self._pending_spawned: list = []
        #: synthetic rendezvous comm for survivors + freshly spawned ranks
        self._merge_comm: Optional[Communicator] = None
        self._comm_cache: dict[tuple, Communicator] = {}
        self.abort_time: float = 0.0
        #: diagnostics for tests and the harness
        self.stats = {"p2p_messages": 0, "collectives": 0, "spawns": 0,
                      "reinit_rollbacks": 0}
        for rank in range(nprocs):
            self._spawn_coroutine(rank, StartState.INITIAL)

    # ------------------------------------------------------------------ #
    # coroutine lifecycle                                                #
    # ------------------------------------------------------------------ #
    def _spawn_coroutine(self, rank: int, state: StartState) -> None:
        api = self._api_cls(self, rank, state)
        gen = self.entry(api)
        if not hasattr(gen, "send"):
            raise SimulationError(
                "entry %r must be a generator function" % (self.entry,))
        self._ranks[rank] = _Rank(rank=rank, gen=gen, start_state=state)

    def api_for(self, rank: int):
        """Build a fresh API facade for ``rank`` (used by tests)."""
        return self._api_cls(self, rank, self._ranks[rank].start_state)

    def cached_comm(self, world_ranks, name: str) -> Communicator:
        """Canonical communicator shared by every rank that asks for the
        same (group, name) — SPMD code in different coroutines must agree
        on the communicator *object* for collectives to rendezvous."""
        key = (tuple(world_ranks), name)
        comm = self._comm_cache.get(key)
        if comm is None:
            comm = Communicator(key[0], name)
            self._comm_cache[key] = comm
        return comm

    # ------------------------------------------------------------------ #
    # public queries                                                     #
    # ------------------------------------------------------------------ #
    def is_alive(self, rank: int) -> bool:
        return (rank in self._ranks
                and self._ranks[rank].status is not RankStatus.DEAD)

    def makespan(self) -> float:
        return self.clock.global_now()

    def ranks_per_node(self) -> int:
        return -(-self.nprocs // self.cluster.nnodes)

    # ------------------------------------------------------------------ #
    # the driver loop                                                    #
    # ------------------------------------------------------------------ #
    def run(self) -> dict:
        """Drive every rank to completion; returns rank -> exit value.

        Raises :class:`JobAbortedError` if a failure hits a FATAL
        communicator and no global-failure hook is installed.
        """
        while True:
            if self._aborted is not None:
                raise self._aborted
            if self._pending_global_failure is not None:
                when, failed = self._pending_global_failure
                self._pending_global_failure = None
                self.on_global_failure(self, when, failed)
                continue
            progressed = self._round()
            if self._all_finished():
                break
            if not progressed and self._pending_global_failure is None:
                self._resolve_stalled_failures()
                if self._aborted is not None:
                    raise self._aborted
                if (self._pending_global_failure is None
                        and not self._any_ready()
                        and not self._all_finished()):
                    self._raise_deadlock()
        return {r: st.exit_value for r, st in self._ranks.items()
                if st.status is RankStatus.DONE}

    def _round(self) -> bool:
        progressed = False
        for rank in sorted(self._ranks):
            state = self._ranks[rank]
            if state.status is RankStatus.READY:
                self._step(rank)
                progressed = True
                if (self._aborted is not None
                        or self._pending_global_failure is not None):
                    return progressed
        return progressed

    def _any_ready(self) -> bool:
        return any(s.status is RankStatus.READY for s in self._ranks.values())

    def _all_finished(self) -> bool:
        return all(s.status in (RankStatus.DONE, RankStatus.DEAD)
                   for s in self._ranks.values())

    def _step(self, rank: int) -> None:
        state = self._ranks[rank]
        inbox, state.inbox = state.inbox, None
        try:
            if isinstance(inbox, _Throw):
                op = state.gen.throw(inbox.exc)
            else:
                op = state.gen.send(inbox)
        except StopIteration as stop:
            state.status = RankStatus.DONE
            state.exit_value = stop.value
            self._on_rank_gone(rank)
            return
        if not isinstance(op, Op):
            raise SimulationError(
                "rank %d yielded %r instead of an Op" % (rank, op))
        op.rank = rank
        self._dispatch(rank, op)

    # ------------------------------------------------------------------ #
    # dispatch                                                           #
    # ------------------------------------------------------------------ #
    def _dispatch(self, rank: int, op: Op) -> None:
        kind = op.kind
        if op.comm is not None and op.comm.revoked and kind not in (
                OpKind.SHRINK, OpKind.AGREE, OpKind.ABORT):
            self._deliver_error(rank, CommRevokedError(
                "op %s on revoked %s" % (kind.value, op.comm.name)))
            return
        if kind is OpKind.COMPUTE:
            factor = self.overhead.compute_factor(self.nprocs)
            self.clock.advance(rank, op.seconds * factor)
            self._mark_ready(rank, None)
        elif kind is OpKind.SLEEP:
            self.clock.advance(rank, op.seconds)
            self._mark_ready(rank, None)
        elif kind is OpKind.ITER_MARK:
            self._handle_iter_mark(rank, op)
        elif kind is OpKind.STORE_WRITE:
            duration = op.store.write(op.path, op.payload,
                                      now=self.clock.now(rank))
            self.clock.advance(rank, duration)
            self._mark_ready(rank, duration)
        elif kind is OpKind.STORE_READ:
            data, duration = op.store.read(op.path)
            self.clock.advance(rank, duration)
            self._mark_ready(rank, data)
        elif kind is OpKind.SEND:
            self._handle_send(rank, op)
        elif kind is OpKind.RECV:
            self._handle_recv(rank, op)
        elif kind is OpKind.REVOKE:
            self._handle_revoke(rank, op)
        elif kind is OpKind.ABORT:
            self._abort_job(self.clock.now(rank),
                            "MPI_Abort called by rank %d" % rank)
        elif kind in COLLECTIVE_KINDS:
            self._handle_collective(rank, op)
        else:
            raise SimulationError("unhandled op kind %s" % kind)

    def _mark_ready(self, rank: int, result: Any) -> None:
        state = self._ranks[rank]
        state.status = RankStatus.READY
        state.inbox = result
        state.blocked_on = None

    def _deliver_error(self, rank: int, exc: BaseException,
                       at_time: float | None = None) -> None:
        state = self._ranks[rank]
        if at_time is not None:
            self.clock.advance_to(rank, at_time)
        state.status = RankStatus.READY
        state.inbox = _Throw(exc)
        state.blocked_on = None

    # ------------------------------------------------------------------ #
    # fault injection                                                    #
    # ------------------------------------------------------------------ #
    def _handle_iter_mark(self, rank: int, op: Op) -> None:
        event = (self.fault_plan.event_for(rank, op.iteration)
                 if self.fault_plan is not None else None)
        if event is not None:
            if getattr(event, "kind", "process") == "node":
                self.kill_node(self.cluster.node_of(rank),
                               iteration=op.iteration)
            else:
                self.kill(rank, iteration=op.iteration)
            return
        self._mark_ready(rank, None)

    def kill_node(self, node_id: int, iteration: int = -1) -> None:
        """Fail-stop a whole node: every rank on it dies and its volatile
        storage (RAMFS/SSD, i.e. any L1 checkpoints) is destroyed.

        The node is modeled as rebooting before replacements arrive, so
        placement is unchanged — but the lost storage means recovery
        must come from a redundant FTI level (L2+).
        """
        victims = list(self.cluster.ranks_on_node(node_id))
        self.cluster.node_storage[node_id].wipe()
        for rank in victims:
            if self.is_alive(rank):
                self.kill(rank, iteration=iteration)

    def kill(self, rank: int, iteration: int = -1) -> None:
        """Fail-stop ``rank`` at its current local time (SIGTERM model)."""
        state = self._ranks[rank]
        if state.status is RankStatus.DEAD:
            return
        failed_at = self.clock.now(rank)
        state.status = RankStatus.DEAD
        state.blocked_on = None
        state.gen.close()
        self.failure_log.record(rank, failed_at, iteration)
        self._on_failure_recorded(rank)

    def _on_rank_gone(self, rank: int) -> None:
        """Completion (DONE) needs no matching cleanup; placeholder hook."""

    def _on_failure_recorded(self, failed_rank: int) -> None:
        """Wake every op that can now observe the failure."""
        rec = self.failure_log.record_for(failed_rank)
        # blocked receivers waiting on the failed rank
        for waiter_rank, op in list(self._recv_waiters.items()):
            if op.peer == failed_rank or op.peer is None:
                self._fail_blocked_op(waiter_rank, op, rec.detected_at)
        # queued sends headed to the failed rank never complete; the sender
        # already continued (eager semantics), so just drop the messages
        self._send_queue = [m for m in self._send_queue
                            if m.dest != failed_rank]
        # collective sites including the failed rank
        for sites in self._sites.values():
            for site in list(sites):
                if site.comm.contains(failed_rank):
                    site.note_failure(failed_rank)
                    self._maybe_resolve_site(site)

    def _fail_blocked_op(self, rank: int, op: Op, detected_at: float) -> None:
        handler = (op.comm.errhandler if op.comm is not None
                   else self.world.errhandler)
        failed = self.failure_log.failed_ranks()
        when = max(self.clock.now(rank), detected_at)
        self._recv_waiters.pop(rank, None)
        if handler is ErrHandler.FATAL:
            self._global_failure(when, failed)
        else:
            self._deliver_error(rank, ProcessFailedError(failed), when)

    # ------------------------------------------------------------------ #
    # global failure: abort or Reinit                                    #
    # ------------------------------------------------------------------ #
    def _global_failure(self, when: float, failed_ranks) -> None:
        if self.on_global_failure is not None:
            # defer to the driver loop: restarting mid-dispatch would pull
            # the rug out from under the code that detected the failure
            if self._pending_global_failure is None:
                self._pending_global_failure = (when, tuple(failed_ranks))
            return
        self._abort_job(when, "process failure on ranks %s with FATAL "
                              "error handler" % (list(failed_ranks),))

    def _abort_job(self, when: float, reason: str) -> None:
        self.abort_time = max(when, self.abort_time)
        self._aborted = JobAbortedError(reason)

    def global_restart(self, restart_time: float) -> None:
        """Reinit's core move: re-enter every rank at the restart point.

        All coroutines (dead or alive) are discarded and restarted with
        ``StartState.RESTARTED``; clocks jump to ``restart_time``. MPI
        state is repaired by construction: a fresh world communicator.
        """
        for state in self._ranks.values():
            if state.status not in (RankStatus.DEAD, RankStatus.DONE):
                state.gen.close()
        self.failure_log.clear()
        self._send_queue.clear()
        self._recv_waiters.clear()
        self._sites.clear()
        self._comm_cache.clear()
        self.world = Communicator(range(self.nprocs), "world",
                                  errhandler=self.world.errhandler)
        for rank in range(self.nprocs):
            self._spawn_coroutine(rank, StartState.RESTARTED)
            self.clock.advance_to(rank, restart_time)
        self.stats["reinit_rollbacks"] += 1

    # ------------------------------------------------------------------ #
    # point to point                                                     #
    # ------------------------------------------------------------------ #
    def _ptp_cost(self, src: int, dst: int, nbytes: int) -> float:
        intra = self.cluster.same_node(src, dst)
        return (self.cluster.network.ptp_time(nbytes, intra_node=intra)
                + self.overhead.ptp_extra(self.nprocs, nbytes))

    def _handle_send(self, rank: int, op: Op) -> None:
        """Eager/buffered send: sender pays overhead and proceeds."""
        dest = op.peer
        if self.failure_log.is_failed(dest):
            rec = self.failure_log.record_for(dest)
            self._fail_blocked_op(rank, op, rec.detected_at)
            return
        self._seq += 1
        msg = Message(source=rank, dest=dest, tag=op.tag, payload=op.payload,
                      nbytes=op.nbytes, sent_at=self.clock.now(rank),
                      seq=self._seq)
        self.stats["p2p_messages"] += 1
        # sender-side overhead: injection latency only (eager protocol)
        self.clock.advance(rank, self.cluster.network.spec.alpha_intra
                           if self.cluster.same_node(rank, dest)
                           else self.cluster.network.spec.alpha_inter)
        waiter = self._recv_waiters.get(dest)
        if waiter is not None and self._matches(waiter, msg):
            self._complete_recv(dest, waiter, msg)
        else:
            self._send_queue.append(msg)
        self._mark_ready(rank, None)

    def _handle_recv(self, rank: int, op: Op) -> None:
        for i, msg in enumerate(self._send_queue):
            if msg.dest == rank and self._matches(op, msg):
                del self._send_queue[i]
                self._complete_recv(rank, op, msg)
                return
        source = op.peer
        if source is not None and self.failure_log.is_failed(source):
            rec = self.failure_log.record_for(source)
            self._fail_blocked_op(rank, op, rec.detected_at)
            return
        if rank in self._recv_waiters:
            raise SimulationError(
                "rank %d posted a second blocking recv" % rank)
        op.rank = rank
        self._recv_waiters[rank] = op
        state = self._ranks[rank]
        state.status = RankStatus.BLOCKED
        state.blocked_on = op

    @staticmethod
    def _matches(recv_op: Op, msg: Message) -> bool:
        source_ok = recv_op.peer is None or recv_op.peer == msg.source
        tag_ok = recv_op.tag is None or recv_op.tag == msg.tag
        return source_ok and tag_ok

    def _complete_recv(self, rank: int, op: Op, msg: Message) -> None:
        self._recv_waiters.pop(rank, None)
        cost = self._ptp_cost(msg.source, rank, msg.nbytes)
        completion = max(self.clock.now(rank), msg.sent_at + cost)
        self.clock.advance_to(rank, completion)
        status = Status(source=msg.source, tag=msg.tag, nbytes=msg.nbytes,
                        completed_at=completion)
        self._mark_ready(rank, (msg.payload, status))

    # ------------------------------------------------------------------ #
    # collectives                                                        #
    # ------------------------------------------------------------------ #
    def _handle_collective(self, rank: int, op: Op) -> None:
        comm = op.comm or self.world
        if op.kind is OpKind.MERGE and self._merge_comm is not None:
            # both survivors (who pass the shrunk comm) and replacements
            # (who pass None, like joining via the parent intercomm) are
            # routed to the synthetic spawn-merge rendezvous
            comm = self._merge_comm
        op.comm = comm
        if not comm.contains(rank):
            raise SimulationError(
                "rank %d called %s on %s it does not belong to"
                % (rank, op.kind.value, comm.name))
        sites = self._sites.setdefault(comm.comm_id, [])
        site = None
        for candidate in sites:
            if rank not in candidate.arrivals:
                if candidate.kind is not op.kind:
                    raise SimulationError(
                        "collective mismatch on %s: rank %d called %s while "
                        "site expects %s" % (comm.name, rank, op.kind.value,
                                             candidate.kind.value))
                site = candidate
                break
        if site is None:
            site = _CollectiveSite.create(comm, op.kind, self.failure_log)
            sites.append(site)
        site.arrivals[rank] = (op, self.clock.now(rank))
        site.note_arrival(rank)
        state = self._ranks[rank]
        state.status = RankStatus.BLOCKED
        state.blocked_on = op
        self._maybe_resolve_site(site)

    def _maybe_resolve_site(self, site: _CollectiveSite) -> None:
        if not site.complete_roster():
            return
        if not site.arrivals:
            self._discard_site(site)
            return
        if site.has_dead_member() and site.kind not in (
                OpKind.SHRINK, OpKind.AGREE, OpKind.SPAWN, OpKind.MERGE):
            self._resolve_site_as_failure(site)
            return
        self._resolve_site(site)

    def _discard_site(self, site: _CollectiveSite) -> None:
        sites = self._sites.get(site.comm.comm_id, [])
        if site in sites:
            sites.remove(site)

    def _resolve_site_as_failure(self, site: _CollectiveSite) -> None:
        self._discard_site(site)
        failed = self.failure_log.failed_ranks()
        detected = self.failure_log.earliest_detection(site.comm.world_ranks)
        if site.comm.errhandler is ErrHandler.FATAL:
            arrivals = [t for (_, t) in site.arrivals.values()]
            self._global_failure(max([detected] + arrivals), failed)
            return
        for rank, (_, arrival) in site.arrivals.items():
            if self._ranks[rank].status is RankStatus.BLOCKED:
                self._deliver_error(rank, ProcessFailedError(failed),
                                    max(arrival, detected))

    def _collective_cost(self, kind: OpKind, nprocs: int, nbytes: int) -> float:
        net = self.cluster.network
        if kind is OpKind.BARRIER:
            base = net.barrier_time(nprocs)
        elif kind is OpKind.BCAST:
            base = net.bcast_time(nprocs, nbytes)
        elif kind is OpKind.REDUCE:
            base = net.reduce_time(nprocs, nbytes)
        elif kind is OpKind.ALLREDUCE:
            base = net.allreduce_time(nprocs, nbytes)
        elif kind is OpKind.GATHER:
            base = net.gather_time(nprocs, nbytes)
        elif kind is OpKind.ALLGATHER:
            base = net.allgather_time(nprocs, nbytes)
        elif kind is OpKind.SCATTER:
            base = net.scatter_time(nprocs, nbytes)
        elif kind is OpKind.ALLTOALL:
            base = net.alltoall_time(nprocs, nbytes)
        elif kind is OpKind.SCAN:
            base = net.scan_time(nprocs, nbytes)
        elif kind is OpKind.SHRINK:
            base = (self.SHRINK_ALPHA * math.log2(max(2, nprocs))
                    + self.SHRINK_PER_PROC * nprocs)
        elif kind is OpKind.AGREE:
            base = 2.0 * self.AGREE_ALPHA * math.log2(max(2, nprocs))
        elif kind is OpKind.MERGE:
            base = self.MERGE_ALPHA * math.log2(max(2, nprocs))
        elif kind is OpKind.SPAWN:
            base = 0.0  # priced separately in _resolve_site
        else:
            raise SimulationError("no cost model for %s" % kind)
        return base + self.overhead.collective_extra(nprocs, nbytes)

    def _resolve_site(self, site: _CollectiveSite) -> None:
        self._discard_site(site)
        self.stats["collectives"] += 1
        participants = sorted(site.arrivals)
        arrivals = [site.arrivals[r][1] for r in participants]
        ops = {r: site.arrivals[r][0] for r in participants}
        nprocs = len(participants)
        max_nbytes = max((ops[r].nbytes or 0) for r in participants)
        cost = self._collective_cost(site.kind, nprocs, max_nbytes)
        completion = max(arrivals) + cost
        results = self._collective_results(site, participants, ops)
        if site.kind is OpKind.SPAWN:
            completion += self._do_spawn(site, ops, completion)
            results = self._collective_results(site, participants, ops)
        for rank in participants:
            self.clock.advance_to(rank, completion)
            self._mark_ready(rank, results[rank])

    def _collective_results(self, site, participants, ops) -> dict:
        kind = site.kind
        comm = site.comm
        if kind is OpKind.BARRIER:
            return {r: None for r in participants}
        if kind is OpKind.BCAST:
            root_world = comm.world_rank(ops[participants[0]].root)
            value = ops[root_world].payload
            return {r: value for r in participants}
        if kind in (OpKind.REDUCE, OpKind.ALLREDUCE):
            op_fn = ops[participants[0]].reduce_op
            ordered = [ops[w].payload
                       for w in comm.world_ranks if w in ops]
            total = reduce_contributions(ordered, op_fn)
            if kind is OpKind.ALLREDUCE:
                return {r: total for r in participants}
            root_world = comm.world_rank(ops[participants[0]].root)
            return {r: (total if r == root_world else None)
                    for r in participants}
        if kind in (OpKind.GATHER, OpKind.ALLGATHER):
            gathered = [ops[w].payload
                        for w in comm.world_ranks if w in ops]
            if kind is OpKind.ALLGATHER:
                return {r: list(gathered) for r in participants}
            root_world = comm.world_rank(ops[participants[0]].root)
            return {r: (list(gathered) if r == root_world else None)
                    for r in participants}
        if kind is OpKind.SCATTER:
            root_world = comm.world_rank(ops[participants[0]].root)
            chunks = ops[root_world].payload
            return {r: chunks[comm.rank_of(r)] for r in participants}
        if kind is OpKind.ALLTOALL:
            blocks = {r: ops[r].payload for r in participants}
            return {
                r: [blocks[s][comm.rank_of(r)]
                    for s in comm.world_ranks if s in blocks]
                for r in participants
            }
        if kind is OpKind.SCAN:
            op_fn = ops[participants[0]].reduce_op
            out, acc = {}, None
            for w in comm.world_ranks:
                if w not in ops:
                    continue
                acc = ops[w].payload if acc is None else op_fn(acc, ops[w].payload)
                out[w] = acc
            return out
        if kind is OpKind.SHRINK:
            shrunk = comm.without(self.failure_log.failed_ranks())
            return {r: shrunk for r in participants}
        if kind is OpKind.AGREE:
            flags = [ops[w].payload for w in comm.world_ranks if w in ops]
            agreed = reduce_contributions(flags, BAND)
            return {r: agreed for r in participants}
        if kind is OpKind.MERGE:
            merged = comm.merged_with(self._pending_spawned,
                                      name="world.repaired")
            self._pending_spawned = []
            self._merge_comm = None
            return {r: merged for r in participants}
        if kind is OpKind.SPAWN:
            return {r: list(self._pending_spawned) for r in participants}
        raise SimulationError("no result rule for %s" % kind)

    def _do_spawn(self, site: _CollectiveSite, ops, when: float) -> float:
        """Respawn replacements for every currently-failed rank.

        Returns the additional seconds the spawn costs beyond the
        rendezvous. Replacement processes reuse the dead world ranks' ids
        (the paper's non-shrinking recovery restores the original layout).
        """
        dead = list(self.failure_log.failed_ranks())
        cost = (self.SPAWN_BASE
                + self.SPAWN_PER_PROC * max(1, len(dead))
                + self.MERGE_ALPHA * math.log2(max(2, self.nprocs)))
        for rank in dead:
            self._spawn_coroutine(rank, StartState.RESPAWNED)
            self.clock.advance_to(rank, when + cost)
            self.failure_log.forget(rank)
        self._pending_spawned = dead
        # the rendezvous (and thus the merged world) must inherit the
        # shrunk comm's error handler, or a later failure on the repaired
        # world would wrongly be treated as fatal
        self._merge_comm = Communicator(
            sorted(set(site.comm.world_ranks) | set(dead)), "merge.pending",
            errhandler=site.comm.errhandler)
        self.stats["spawns"] += 1
        return cost

    # ------------------------------------------------------------------ #
    # revoke                                                             #
    # ------------------------------------------------------------------ #
    def _handle_revoke(self, rank: int, op: Op) -> None:
        comm = op.comm
        now = self.clock.now(rank)
        cost = self.REVOKE_ALPHA * math.log2(max(2, comm.size))
        comm.revoke()
        notice_at = now + cost
        # interrupt pending receives from members of this communicator
        for waiter_rank, waiter in list(self._recv_waiters.items()):
            if comm.contains(waiter_rank):
                self._recv_waiters.pop(waiter_rank, None)
                self._deliver_error(waiter_rank, CommRevokedError(),
                                    max(self.clock.now(waiter_rank),
                                        notice_at))
        # poison collective sites on this communicator
        for site in list(self._sites.get(comm.comm_id, [])):
            self._discard_site(site)
            for member, (_, arrival) in site.arrivals.items():
                if self._ranks[member].status is RankStatus.BLOCKED:
                    self._deliver_error(member, CommRevokedError(),
                                        max(arrival, notice_at))
        self.clock.advance(rank, cost)
        self._mark_ready(rank, None)

    # ------------------------------------------------------------------ #
    # stall resolution / deadlock                                        #
    # ------------------------------------------------------------------ #
    def _resolve_stalled_failures(self) -> None:
        """Re-check blocked ops against the failure log (safety net)."""
        for rank, op in list(self._recv_waiters.items()):
            if op.peer is not None and self.failure_log.is_failed(op.peer):
                rec = self.failure_log.record_for(op.peer)
                self._fail_blocked_op(rank, op, rec.detected_at)
        for sites in list(self._sites.values()):
            for site in list(sites):
                self._maybe_resolve_site(site)

    def _raise_deadlock(self) -> None:
        blocked = {
            r: (s.blocked_on.kind.value if s.blocked_on else "?")
            for r, s in self._ranks.items()
            if s.status is RankStatus.BLOCKED
        }
        raise DeadlockError(
            "no rank can make progress; blocked ranks: %s" % (blocked,))
