"""The simulated MPI runtime: a deterministic SPMD scheduler.

Every rank is a Python generator coroutine. An MPI call is a ``yield`` of
an :class:`~repro.simmpi.datatypes.Op`; the scheduler matches operations,
prices them with the cluster's network/storage models, advances per-rank
virtual clocks and resumes coroutines with results. Failures are
fail-stop: a killed rank simply stops yielding, and peers observe
:class:`~repro.errors.ProcessFailedError` once the failure detector's
latency has elapsed — or the whole job aborts if the communicator's error
handler is ``FATAL`` (the Restart design's path).

Scheduling is rank-ordered and time-independent of host wall-clock, so
every experiment is exactly reproducible.

**Event-driven scheduling.** The scheduler never scans the whole world
per round. Runnable ranks live in a pair of min-heaps (`current round` /
`next round`) ordered by rank id; a rank is pushed when it becomes
runnable (unblock, spawn, error delivery) and popped exactly once per
round, so a round costs O(runnable · log runnable) instead of O(P).
The two-heap split preserves the historical semantics exactly: a rank
unblocked while rank ``r`` is stepping joins the *current* round iff its
id is greater than ``r`` (the ascending scan would still reach it),
otherwise the next round.

**Indexed message matching.** Unexpected (eager) messages are held in
per-destination buckets keyed by ``(source, tag)``; a receive with both
coordinates known pops its bucket's head in O(1), and a wildcard receive
(``MPI_ANY_SOURCE``/``MPI_ANY_TAG``) takes the lowest global sequence
number over the destination's buckets, which is exactly the arrival-order
scan the flat queue used to do. Blocked receivers are likewise indexed by
awaited source so a failure wakes only the receivers that can observe it.
"""

from __future__ import annotations

import enum
import math
import os
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Optional

from .communicator import Communicator
from .datatypes import COLLECTIVE_KINDS, Message, Op, OpKind, Status
from .errhandler import ErrHandler
from .failures import DetectorSpec, FailureDetector, FailureLog
from .overhead import OverheadModel
from .reduceops import BAND, reduce_contributions
from ..cluster.machine import Cluster
from ..cluster.simclock import SimClock
from ..errors import (
    WATCHDOG_ENV,
    CommRevokedError,
    DeadlockError,
    JobAbortedError,
    ProcessFailedError,
    SimulationError,
    WatchdogError,
)


def _watchdog_budget_from_env():
    """The scheduler-step budget from ``$MATCH_SIM_WATCHDOG``, or None.

    The campaign engine exports the variable to worker processes (spawn
    children inherit the environment), so the budget reaches every
    Runtime a run constructs — including relaunches inside a design's
    recovery loop — without threading a parameter through the designs.
    """
    text = os.environ.get(WATCHDOG_ENV, "").strip()
    if not text:
        return None
    try:
        budget = int(text)
    except ValueError:
        raise SimulationError(
            "%s must be an integer scheduler-step budget, got %r"
            % (WATCHDOG_ENV, text))
    return budget if budget > 0 else None


class RankStatus(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    DEAD = "dead"


class StartState(enum.Enum):
    """Why this coroutine instance was started (visible to applications)."""

    INITIAL = "initial"
    #: restarted by Reinit's global-restart path
    RESTARTED = "restarted"
    #: spawned as a replacement during ULFM non-shrinking recovery
    RESPAWNED = "respawned"


class _Throw:
    """Marker: deliver an exception into the coroutine at next resume."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


@dataclass(slots=True)
class _Rank:
    rank: int
    gen: Generator
    status: RankStatus = RankStatus.READY
    #: value (or _Throw) to deliver at next resume
    inbox: Any = None
    exit_value: Any = None
    #: the op this rank is currently blocked on, if any
    blocked_on: Optional[Op] = None
    start_state: StartState = StartState.INITIAL
    #: True while this instance sits in a ready heap (dedup guard)
    queued: bool = False


class _CollectiveSite:
    """Rendezvous point for one collective call on one communicator.

    Roster tracking is incremental (O(1) per arrival): ``missing`` holds
    the alive members that have not arrived yet, and ``dead_flag`` is set
    as soon as any member is known failed.
    """

    __slots__ = ("comm", "kind", "arrivals", "missing", "dead_flag")

    def __init__(self, comm: Communicator, kind: OpKind):
        self.comm = comm
        self.kind = kind
        #: world rank -> (Op, arrival time)
        self.arrivals: dict = {}
        #: alive members still expected
        self.missing: set = set()
        self.dead_flag = False

    @classmethod
    def create(cls, comm: Communicator, kind: OpKind,
               failure_log: FailureLog) -> "_CollectiveSite":
        site = cls(comm, kind)
        dead = [w for w in failure_log.failed_ranks() if comm.contains(w)]
        site.missing = set(comm.world_ranks).difference(dead)
        site.dead_flag = bool(dead)
        return site

    def note_failure(self, rank: int) -> None:
        if self.comm.contains(rank):
            self.missing.discard(rank)
            self.dead_flag = True


class Runtime:
    """Owns the coroutines, the clock and all matching state for one job."""

    #: cost constants for ULFM recovery operations (seconds); the log-depth
    #: scaling is what makes ULFM recovery grow with process count (Fig. 7)
    REVOKE_ALPHA = 0.012
    SHRINK_ALPHA = 0.11
    #: ULFM's shrink runs an all-to-all style consensus whose volume grows
    #: with the group: a per-process term on top of the log-depth rounds
    SHRINK_PER_PROC = 0.008
    AGREE_ALPHA = 0.055
    MERGE_ALPHA = 0.035
    SPAWN_BASE = 0.9
    SPAWN_PER_PROC = 0.012

    def __init__(self, cluster: Cluster, nprocs: int,
                 entry: Callable[["MpiApi"], Generator],
                 detector_spec: DetectorSpec | None = None,
                 overhead: OverheadModel | None = None,
                 fault_plan=None,
                 on_global_failure: Optional[Callable] = None,
                 errhandler: ErrHandler = ErrHandler.FATAL,
                 max_steps: Optional[int] = None):
        from .api import MpiApi  # local import to avoid a cycle

        self.cluster = cluster
        self.nprocs = nprocs
        self.entry = entry
        self.clock = SimClock(nprocs)
        self.detector = FailureDetector(detector_spec)
        self.failure_log = FailureLog(self.detector, nprocs)
        self.overhead = overhead or OverheadModel()
        self.fault_plan = fault_plan
        #: exact-time injection hook: TimedFaultPlan exposes due_event
        #: (cached here so ordinary iteration-indexed plans cost nothing
        #: in the scheduler hot path)
        self._timed_due = getattr(fault_plan, "due_event", None)
        #: phase-anchor instrumentation sink (repro.explore.timeline);
        #: rides on the plan — the only object threaded from the harness
        self.phase_hook = getattr(fault_plan, "phase_hook", None)
        #: Reinit hooks in here: called instead of aborting the job
        self.on_global_failure = on_global_failure
        self.world = Communicator(range(nprocs), "world",
                                  errhandler=errhandler)
        cluster.place_job(nprocs)
        self._api_cls = MpiApi
        self._ranks: dict[int, _Rank] = {}
        #: dest -> (source, tag) -> FIFO deque of unexpected messages
        self._unexpected: dict[int, dict[tuple, deque]] = {}
        self._recv_waiters: dict[int, Op] = {}
        #: awaited source -> {waiter rank -> post sequence}
        self._waiters_by_src: dict[int, dict[int, int]] = {}
        #: ANY_SOURCE waiters: rank -> post sequence
        self._waiters_any: dict[int, int] = {}
        self._waiter_seq = 0
        self._sites: dict[int, list] = {}
        self._seq = 0
        self._aborted: Optional[JobAbortedError] = None
        self._pending_global_failure: Optional[tuple] = None
        self._pending_spawned: list = []
        #: synthetic rendezvous comm for survivors + freshly spawned ranks
        self._merge_comm: Optional[Communicator] = None
        self._comm_cache: dict[tuple, Communicator] = {}
        self.abort_time: float = 0.0
        #: diagnostics for tests and the harness
        self.stats = {"p2p_messages": 0, "collectives": 0, "spawns": 0,
                      "reinit_rollbacks": 0}
        #: ready heaps: (rank, push id, _Rank) — see the module docstring
        self._ready_now: list = []
        self._ready_next: list = []
        self._push_count = 0
        self._stepping: Optional[int] = None
        #: livelock guard: raise WatchdogError past this many _step()
        #: calls (None = unlimited; $MATCH_SIM_WATCHDOG sets it when the
        #: constructor isn't given one)
        self.watchdog_budget = (max_steps if max_steps is not None
                                else _watchdog_budget_from_env())
        self.watchdog_steps = 0
        #: ranks neither DONE nor DEAD (O(1) termination check)
        self._unfinished = 0
        self._dispatch_table = self._build_dispatch_table()
        for rank in range(nprocs):
            self._spawn_coroutine(rank, StartState.INITIAL)

    def _build_dispatch_table(self) -> dict:
        table = {
            OpKind.COMPUTE: self._handle_compute,
            OpKind.SLEEP: self._handle_sleep,
            OpKind.ITER_MARK: self._handle_iter_mark,
            OpKind.STORE_WRITE: self._handle_store_write,
            OpKind.STORE_READ: self._handle_store_read,
            OpKind.SEND: self._handle_send,
            OpKind.RECV: self._handle_recv,
            OpKind.REVOKE: self._handle_revoke,
            OpKind.ABORT: self._handle_abort,
        }
        for kind in COLLECTIVE_KINDS:
            table[kind] = self._handle_collective
        return table

    # ------------------------------------------------------------------ #
    # coroutine lifecycle                                                #
    # ------------------------------------------------------------------ #
    def _spawn_coroutine(self, rank: int, state: StartState) -> None:
        api = self._api_cls(self, rank, state)
        gen = self.entry(api)
        if not hasattr(gen, "send"):
            raise SimulationError(
                "entry %r must be a generator function" % (self.entry,))
        old = self._ranks.get(rank)
        if old is None or old.status in (RankStatus.DONE, RankStatus.DEAD):
            self._unfinished += 1
        self._ranks[rank] = _Rank(rank=rank, gen=gen, start_state=state)
        self._enqueue_ready(rank)

    def api_for(self, rank: int):
        """Build a fresh API facade for ``rank`` (used by tests)."""
        return self._api_cls(self, rank, self._ranks[rank].start_state)

    def cached_comm(self, world_ranks, name: str) -> Communicator:
        """Canonical communicator shared by every rank that asks for the
        same (group, name) — SPMD code in different coroutines must agree
        on the communicator *object* for collectives to rendezvous.

        A revoked entry is replaced with a fresh communicator: ranks
        re-deriving the group after a repair must not rendezvous on a
        permanently-poisoned object.
        """
        key = (tuple(world_ranks), name)
        comm = self._comm_cache.get(key)
        if comm is None or comm.revoked:
            comm = Communicator(key[0], name)
            self._comm_cache[key] = comm
        return comm

    def prune_stale_comms(self) -> int:
        """Evict cached communicators that can never be used again.

        Called after a world swap (ULFM repair): entries that are revoked
        or reference ranks outside the new world are dropped so
        ``_comm_cache`` stays bounded across repeated recoveries
        (``_discard_site`` already bounds ``_sites`` the same way).
        Returns the number of evicted communicators.
        """
        alive = set(self.world.world_ranks)
        stale = [key for key, comm in self._comm_cache.items()
                 if comm.revoked or not alive.issuperset(key[0])]
        for key in stale:
            del self._comm_cache[key]
        return len(stale)

    # ------------------------------------------------------------------ #
    # public queries                                                     #
    # ------------------------------------------------------------------ #
    def is_alive(self, rank: int) -> bool:
        return (rank in self._ranks
                and self._ranks[rank].status is not RankStatus.DEAD)

    def makespan(self) -> float:
        return self.clock.global_now()

    def ranks_per_node(self) -> int:
        return -(-self.nprocs // self.cluster.nnodes)

    # ------------------------------------------------------------------ #
    # the ready queue                                                    #
    # ------------------------------------------------------------------ #
    def _enqueue_ready(self, rank: int) -> None:
        state = self._ranks[rank]
        if state.queued:
            return
        state.queued = True
        self._push_count += 1
        entry = (rank, self._push_count, state)
        stepping = self._stepping
        if stepping is not None and rank > stepping:
            heappush(self._ready_now, entry)
        else:
            heappush(self._ready_next, entry)

    def _merge_rounds(self) -> None:
        """Fold a partially-consumed round back into the next one.

        After a mid-round interruption (pending global failure handed to
        its hook) the historical scheduler would restart its ascending
        scan from rank 0; merging the heaps reproduces that exactly.
        """
        while self._ready_now:
            heappush(self._ready_next, heappop(self._ready_now))

    # ------------------------------------------------------------------ #
    # the driver loop                                                    #
    # ------------------------------------------------------------------ #
    def run(self) -> dict:
        """Drive every rank to completion; returns rank -> exit value.

        Raises :class:`JobAbortedError` if a failure hits a FATAL
        communicator and no global-failure hook is installed.
        """
        while True:
            if self._aborted is not None:
                raise self._aborted
            if self._pending_global_failure is not None:
                when, failed = self._pending_global_failure
                self._pending_global_failure = None
                self.on_global_failure(self, when, failed)
                self._merge_rounds()
                continue
            progressed = self._round()
            if self._all_finished():
                break
            if not progressed and self._pending_global_failure is None:
                self._resolve_stalled_failures()
                if self._aborted is not None:
                    raise self._aborted
                if (self._pending_global_failure is None
                        and not self._any_ready()
                        and not self._all_finished()):
                    self._raise_deadlock()
        return {r: st.exit_value for r, st in self._ranks.items()
                if st.status is RankStatus.DONE}

    def _round(self) -> bool:
        if not self._ready_now:
            self._ready_now, self._ready_next = (self._ready_next,
                                                 self._ready_now)
        heap = self._ready_now
        ranks = self._ranks
        progressed = False
        while heap:
            rank, _, state = heappop(heap)
            if state is not ranks[rank]:
                continue  # superseded by a respawn/restart
            state.queued = False
            if state.status is not RankStatus.READY:
                continue
            self._stepping = rank
            self._step(rank)
            progressed = True
            if (self._aborted is not None
                    or self._pending_global_failure is not None):
                break
        self._stepping = None
        return progressed

    def _any_ready(self) -> bool:
        return any(s.status is RankStatus.READY for s in self._ranks.values())

    def _all_finished(self) -> bool:
        return self._unfinished == 0

    def _step(self, rank: int) -> None:
        if self.watchdog_budget is not None:
            self.watchdog_steps += 1
            if self.watchdog_steps > self.watchdog_budget:
                raise WatchdogError(self.watchdog_budget)
        state = self._ranks[rank]
        if self._timed_due is not None and state.status is not RankStatus.DEAD:
            event = self._timed_due(rank, self.clock.now(rank))
            if event is not None:
                # deliver *before* resuming the coroutine: the kill lands
                # between yields — mid-repair, mid-checkpoint — exactly
                # where an anchored schedule aimed it, instead of being
                # deferred to the victim's next iteration mark. The clock
                # is forward-only: a rank whose last op overshot the
                # event time dies at its current clock (signal-between-
                # instructions semantics)
                if event.time > self.clock.now(rank):
                    self.clock.advance_to(rank, event.time)
                if event.kind == "node":
                    self.kill_node(self.cluster.node_of(rank))
                else:
                    self.kill(rank)
                return
        inbox, state.inbox = state.inbox, None
        try:
            if type(inbox) is _Throw:
                op = state.gen.throw(inbox.exc)
            else:
                op = state.gen.send(inbox)
        except StopIteration as stop:
            state.status = RankStatus.DONE
            state.exit_value = stop.value
            self._unfinished -= 1
            self._on_rank_gone(rank)
            return
        if not isinstance(op, Op):
            raise SimulationError(
                "rank %d yielded %r instead of an Op" % (rank, op))
        op.rank = rank
        self._dispatch(rank, op)

    # ------------------------------------------------------------------ #
    # dispatch                                                           #
    # ------------------------------------------------------------------ #
    def _dispatch(self, rank: int, op: Op) -> None:
        kind = op.kind
        comm = op.comm
        if comm is not None and comm.revoked and kind not in (
                OpKind.SHRINK, OpKind.AGREE, OpKind.ABORT):
            self._deliver_error(rank, CommRevokedError(
                "op %s on revoked %s" % (kind.value, comm.name)))
            return
        handler = self._dispatch_table.get(kind)
        if handler is None:
            raise SimulationError("unhandled op kind %s" % kind)
        handler(rank, op)

    def _handle_compute(self, rank: int, op: Op) -> None:
        factor = self.overhead.compute_factor(self.nprocs)
        self.clock.advance(rank, op.seconds * factor)
        self._mark_ready(rank, None)

    def _handle_sleep(self, rank: int, op: Op) -> None:
        self.clock.advance(rank, op.seconds)
        self._mark_ready(rank, None)

    def _handle_store_write(self, rank: int, op: Op) -> None:
        duration = op.store.write(op.path, op.payload,
                                  now=self.clock.now(rank))
        self.clock.advance(rank, duration)
        self._mark_ready(rank, duration)

    def _handle_store_read(self, rank: int, op: Op) -> None:
        data, duration = op.store.read(op.path)
        self.clock.advance(rank, duration)
        self._mark_ready(rank, data)

    def _handle_abort(self, rank: int, op: Op) -> None:
        self._abort_job(self.clock.now(rank),
                        "MPI_Abort called by rank %d" % rank)

    def _mark_ready(self, rank: int, result: Any) -> None:
        state = self._ranks[rank]
        if state.status is RankStatus.DEAD:
            return  # a failed rank is never resurrected
        state.status = RankStatus.READY
        state.inbox = result
        state.blocked_on = None
        self._enqueue_ready(rank)

    def _deliver_error(self, rank: int, exc: BaseException,
                       at_time: float | None = None) -> None:
        state = self._ranks[rank]
        if state.status is RankStatus.DEAD:
            return  # a failed rank observes nothing, not even errors
        if at_time is not None:
            self.clock.advance_to(rank, at_time)
        state.status = RankStatus.READY
        state.inbox = _Throw(exc)
        state.blocked_on = None
        self._enqueue_ready(rank)

    # ------------------------------------------------------------------ #
    # fault injection                                                    #
    # ------------------------------------------------------------------ #
    def _handle_iter_mark(self, rank: int, op: Op) -> None:
        event = (self.fault_plan.event_for(rank, op.iteration)
                 if self.fault_plan is not None else None)
        if event is not None:
            if getattr(event, "kind", "process") == "node":
                self.kill_node(self.cluster.node_of(rank),
                               iteration=op.iteration)
            else:
                self.kill(rank, iteration=op.iteration)
            return
        self._mark_ready(rank, None)

    def kill_node(self, node_id: int, iteration: int = -1) -> None:
        """Fail-stop a whole node: every rank on it dies and its volatile
        storage (RAMFS/SSD, i.e. any L1 checkpoints) is destroyed.

        The node is modeled as rebooting before replacements arrive, so
        placement is unchanged — but the lost storage means recovery
        must come from a redundant FTI level (L2+).
        """
        victims = list(self.cluster.ranks_on_node(node_id))
        self.cluster.node_storage[node_id].wipe()
        for rank in victims:
            if self.is_alive(rank):
                self.kill(rank, iteration=iteration)

    def kill(self, rank: int, iteration: int = -1) -> None:
        """Fail-stop ``rank`` at its current local time (SIGTERM model)."""
        state = self._ranks[rank]
        if state.status is RankStatus.DEAD:
            return
        failed_at = self.clock.now(rank)
        if state.status is not RankStatus.DONE:
            self._unfinished -= 1
        # drop the victim's own blocked receive from the waiter indexes:
        # a later failure of its awaited source must not try to wake it
        if state.blocked_on is not None and \
                state.blocked_on.kind is OpKind.RECV:
            self._unregister_waiter(rank, state.blocked_on)
        state.status = RankStatus.DEAD
        state.blocked_on = None
        state.gen.close()
        self.failure_log.record(rank, failed_at, iteration)
        self._on_failure_recorded(rank)

    def _on_rank_gone(self, rank: int) -> None:
        """Completion (DONE) needs no matching cleanup; placeholder hook."""

    def _on_failure_recorded(self, failed_rank: int) -> None:
        """Wake every op that can now observe the failure."""
        rec = self.failure_log.record_for(failed_rank)
        # blocked receivers awaiting the failed rank (or ANY_SOURCE),
        # woken in the order their receives were posted
        candidates = list(self._waiters_by_src.get(failed_rank, {}).items())
        candidates.extend(self._waiters_any.items())
        candidates.sort(key=lambda item: item[1])
        for waiter_rank, _ in candidates:
            op = self._recv_waiters.get(waiter_rank)
            if op is not None:
                self._fail_blocked_op(waiter_rank, op, rec.detected_at)
        # queued sends headed to the failed rank never complete; the sender
        # already continued (eager semantics), so just drop the messages
        self._unexpected.pop(failed_rank, None)
        # collective sites including the failed rank
        for sites in list(self._sites.values()):
            for site in list(sites):
                if site.comm.contains(failed_rank):
                    site.note_failure(failed_rank)
                    self._maybe_resolve_site(site)

    def _fail_blocked_op(self, rank: int, op: Op, detected_at: float) -> None:
        handler = (op.comm.errhandler if op.comm is not None
                   else self.world.errhandler)
        failed = self.failure_log.failed_ranks()
        when = max(self.clock.now(rank), detected_at)
        self._unregister_waiter(rank, op)
        if handler is ErrHandler.FATAL:
            self._global_failure(when, failed)
        else:
            self._deliver_error(rank, ProcessFailedError(failed), when)

    # ------------------------------------------------------------------ #
    # global failure: abort or Reinit                                    #
    # ------------------------------------------------------------------ #
    def _global_failure(self, when: float, failed_ranks) -> None:
        if self.on_global_failure is not None:
            # defer to the driver loop: restarting mid-dispatch would pull
            # the rug out from under the code that detected the failure
            if self._pending_global_failure is None:
                self._pending_global_failure = (when, tuple(failed_ranks))
            return
        self._abort_job(when, "process failure on ranks %s with FATAL "
                              "error handler" % (list(failed_ranks),))

    def _abort_job(self, when: float, reason: str) -> None:
        self.abort_time = max(when, self.abort_time)
        self._aborted = JobAbortedError(reason)

    def global_restart(self, restart_time: float) -> None:
        """Reinit's core move: re-enter every rank at the restart point.

        All coroutines (dead or alive) are discarded and restarted with
        ``StartState.RESTARTED``; clocks jump to ``restart_time``. MPI
        state is repaired by construction: a fresh world communicator.
        All matching state — unexpected messages, receive waiters,
        collective sites, cached communicators, queued ready entries —
        is from a dead epoch and dropped wholesale.
        """
        for state in self._ranks.values():
            if state.status not in (RankStatus.DEAD, RankStatus.DONE):
                state.gen.close()
        self.failure_log.clear()
        self._unexpected.clear()
        self._recv_waiters.clear()
        self._waiters_by_src.clear()
        self._waiters_any.clear()
        self._sites.clear()
        self._comm_cache.clear()
        self._ready_now.clear()
        self._ready_next.clear()
        self.world = Communicator(range(self.nprocs), "world",
                                  errhandler=self.world.errhandler)
        for rank in range(self.nprocs):
            self._spawn_coroutine(rank, StartState.RESTARTED)
            self.clock.advance_to(rank, restart_time)
        self.stats["reinit_rollbacks"] += 1

    # ------------------------------------------------------------------ #
    # point to point                                                     #
    # ------------------------------------------------------------------ #
    def _ptp_cost(self, src: int, dst: int, nbytes: int) -> float:
        intra = self.cluster.same_node(src, dst)
        return (self.cluster.network.ptp_time(nbytes, intra_node=intra)
                + self.overhead.ptp_extra(self.nprocs, nbytes))

    def _handle_send(self, rank: int, op: Op) -> None:
        """Eager/buffered send: sender pays overhead and proceeds."""
        dest = op.peer
        if self.failure_log.is_failed(dest):
            rec = self.failure_log.record_for(dest)
            self._fail_blocked_op(rank, op, rec.detected_at)
            return
        self._seq += 1
        msg = Message(source=rank, dest=dest, tag=op.tag, payload=op.payload,
                      nbytes=op.nbytes, sent_at=self.clock.now(rank),
                      seq=self._seq)
        self.stats["p2p_messages"] += 1
        # sender-side overhead: injection latency only (eager protocol)
        self.clock.advance(rank, self.cluster.network.spec.alpha_intra
                           if self.cluster.same_node(rank, dest)
                           else self.cluster.network.spec.alpha_inter)
        waiter = self._recv_waiters.get(dest)
        if waiter is not None and self._matches(waiter, msg):
            self._complete_recv(dest, waiter, msg)
        else:
            buckets = self._unexpected.get(dest)
            if buckets is None:
                buckets = self._unexpected[dest] = {}
            key = (rank, op.tag)
            queue = buckets.get(key)
            if queue is None:
                queue = buckets[key] = deque()
            queue.append(msg)
        self._mark_ready(rank, None)

    def _match_unexpected(self, rank: int, op: Op) -> Optional[Message]:
        """Pop the matching unexpected message with the lowest sequence
        number (arrival order), or None. O(1) for a fully-specified
        receive; O(active buckets for this destination) with wildcards."""
        buckets = self._unexpected.get(rank)
        if not buckets:
            return None
        src, tag = op.peer, op.tag
        if src is not None and tag is not None:
            queue = buckets.get((src, tag))
            if not queue:
                return None
            msg = queue.popleft()
            if not queue:
                del buckets[(src, tag)]
                if not buckets:
                    del self._unexpected[rank]
            return msg
        best_key = None
        best_seq = -1
        for key, queue in buckets.items():
            if src is not None and key[0] != src:
                continue
            if tag is not None and key[1] != tag:
                continue
            head_seq = queue[0].seq
            if best_key is None or head_seq < best_seq:
                best_key, best_seq = key, head_seq
        if best_key is None:
            return None
        queue = buckets[best_key]
        msg = queue.popleft()
        if not queue:
            del buckets[best_key]
            if not buckets:
                del self._unexpected[rank]
        return msg

    def _handle_recv(self, rank: int, op: Op) -> None:
        msg = self._match_unexpected(rank, op)
        if msg is not None:
            self._complete_recv(rank, op, msg)
            return
        source = op.peer
        if source is not None and self.failure_log.is_failed(source):
            rec = self.failure_log.record_for(source)
            self._fail_blocked_op(rank, op, rec.detected_at)
            return
        if rank in self._recv_waiters:
            raise SimulationError(
                "rank %d posted a second blocking recv" % rank)
        op.rank = rank
        self._recv_waiters[rank] = op
        self._waiter_seq += 1
        if source is None:
            self._waiters_any[rank] = self._waiter_seq
        else:
            by_src = self._waiters_by_src.get(source)
            if by_src is None:
                by_src = self._waiters_by_src[source] = {}
            by_src[rank] = self._waiter_seq
        state = self._ranks[rank]
        state.status = RankStatus.BLOCKED
        state.blocked_on = op

    def _unregister_waiter(self, rank: int, op: Op) -> None:
        self._recv_waiters.pop(rank, None)
        if op is not None and op.kind is OpKind.RECV:
            if op.peer is None:
                self._waiters_any.pop(rank, None)
            else:
                by_src = self._waiters_by_src.get(op.peer)
                if by_src is not None:
                    by_src.pop(rank, None)
                    if not by_src:
                        del self._waiters_by_src[op.peer]

    @staticmethod
    def _matches(recv_op: Op, msg: Message) -> bool:
        source_ok = recv_op.peer is None or recv_op.peer == msg.source
        tag_ok = recv_op.tag is None or recv_op.tag == msg.tag
        return source_ok and tag_ok

    def _complete_recv(self, rank: int, op: Op, msg: Message) -> None:
        self._unregister_waiter(rank, op)
        cost = self._ptp_cost(msg.source, rank, msg.nbytes)
        completion = max(self.clock.now(rank), msg.sent_at + cost)
        self.clock.advance_to(rank, completion)
        status = Status(source=msg.source, tag=msg.tag, nbytes=msg.nbytes,
                        completed_at=completion)
        self._mark_ready(rank, (msg.payload, status))

    # ------------------------------------------------------------------ #
    # collectives                                                        #
    # ------------------------------------------------------------------ #
    def _handle_collective(self, rank: int, op: Op) -> None:
        comm = op.comm or self.world
        if op.kind is OpKind.MERGE and self._merge_comm is not None:
            # both survivors (who pass the shrunk comm) and replacements
            # (who pass None, like joining via the parent intercomm) are
            # routed to the synthetic spawn-merge rendezvous
            comm = self._merge_comm
        op.comm = comm
        if not comm.contains(rank):
            raise SimulationError(
                "rank %d called %s on %s it does not belong to"
                % (rank, op.kind.value, comm.name))
        sites = self._sites.get(comm.comm_id)
        if sites is None:
            sites = self._sites[comm.comm_id] = []
        site = None
        for candidate in sites:
            if rank not in candidate.arrivals:
                if candidate.kind is not op.kind:
                    raise SimulationError(
                        "collective mismatch on %s: rank %d called %s while "
                        "site expects %s" % (comm.name, rank, op.kind.value,
                                             candidate.kind.value))
                site = candidate
                break
        if site is None:
            site = _CollectiveSite.create(comm, op.kind, self.failure_log)
            sites.append(site)
        site.arrivals[rank] = (op, self.clock.now(rank))
        site.missing.discard(rank)
        state = self._ranks[rank]
        state.status = RankStatus.BLOCKED
        state.blocked_on = op
        if not site.missing:
            self._maybe_resolve_site(site)

    def _maybe_resolve_site(self, site: _CollectiveSite) -> None:
        if site.missing:
            return
        if not site.arrivals:
            self._discard_site(site)
            return
        if site.dead_flag and site.kind not in (
                OpKind.SHRINK, OpKind.AGREE, OpKind.SPAWN, OpKind.MERGE):
            self._resolve_site_as_failure(site)
            return
        self._resolve_site(site)

    def _discard_site(self, site: _CollectiveSite) -> None:
        sites = self._sites.get(site.comm.comm_id)
        if sites is None:
            return
        if site in sites:
            sites.remove(site)
        if not sites:
            # drop the key too: comm ids are never reused, so an empty
            # list would otherwise linger for the life of the job
            del self._sites[site.comm.comm_id]

    def _resolve_site_as_failure(self, site: _CollectiveSite) -> None:
        self._discard_site(site)
        failed = self.failure_log.failed_ranks()
        detected = self.failure_log.earliest_detection(site.comm.world_ranks)
        if site.comm.errhandler is ErrHandler.FATAL:
            arrivals = [t for (_, t) in site.arrivals.values()]
            self._global_failure(max([detected] + arrivals), failed)
            return
        for rank, (_, arrival) in site.arrivals.items():
            if self._ranks[rank].status is RankStatus.BLOCKED:
                self._deliver_error(rank, ProcessFailedError(failed),
                                    max(arrival, detected))

    def _collective_cost(self, kind: OpKind, nprocs: int, nbytes: int) -> float:
        net = self.cluster.network
        if kind is OpKind.BARRIER:
            base = net.barrier_time(nprocs)
        elif kind is OpKind.BCAST:
            base = net.bcast_time(nprocs, nbytes)
        elif kind is OpKind.REDUCE:
            base = net.reduce_time(nprocs, nbytes)
        elif kind is OpKind.ALLREDUCE:
            base = net.allreduce_time(nprocs, nbytes)
        elif kind is OpKind.GATHER:
            base = net.gather_time(nprocs, nbytes)
        elif kind is OpKind.ALLGATHER:
            base = net.allgather_time(nprocs, nbytes)
        elif kind is OpKind.SCATTER:
            base = net.scatter_time(nprocs, nbytes)
        elif kind is OpKind.ALLTOALL:
            base = net.alltoall_time(nprocs, nbytes)
        elif kind is OpKind.SCAN:
            base = net.scan_time(nprocs, nbytes)
        elif kind is OpKind.SHRINK:
            base = (self.SHRINK_ALPHA * math.log2(max(2, nprocs))
                    + self.SHRINK_PER_PROC * nprocs)
        elif kind is OpKind.AGREE:
            base = 2.0 * self.AGREE_ALPHA * math.log2(max(2, nprocs))
        elif kind is OpKind.MERGE:
            base = self.MERGE_ALPHA * math.log2(max(2, nprocs))
        elif kind is OpKind.SPAWN:
            base = 0.0  # priced separately in _resolve_site
        else:
            raise SimulationError("no cost model for %s" % kind)
        return base + self.overhead.collective_extra(nprocs, nbytes)

    def _resolve_site(self, site: _CollectiveSite) -> None:
        self._discard_site(site)
        self.stats["collectives"] += 1
        participants = sorted(site.arrivals)
        arrivals = [site.arrivals[r][1] for r in participants]
        ops = {r: site.arrivals[r][0] for r in participants}
        nprocs = len(participants)
        max_nbytes = max((ops[r].nbytes or 0) for r in participants)
        cost = self._collective_cost(site.kind, nprocs, max_nbytes)
        completion = max(arrivals) + cost
        results = self._collective_results(site, participants, ops)
        if site.kind is OpKind.SPAWN:
            completion += self._do_spawn(site, ops, completion)
            results = self._collective_results(site, participants, ops)
        for rank in participants:
            self.clock.advance_to(rank, completion)
            self._mark_ready(rank, results[rank])

    def _collective_results(self, site, participants, ops) -> dict:
        kind = site.kind
        comm = site.comm
        if kind is OpKind.BARRIER:
            return {r: None for r in participants}
        if kind is OpKind.BCAST:
            root_world = comm.world_rank(ops[participants[0]].root)
            value = ops[root_world].payload
            return {r: value for r in participants}
        if kind in (OpKind.REDUCE, OpKind.ALLREDUCE):
            op_fn = ops[participants[0]].reduce_op
            ordered = [ops[w].payload
                       for w in comm.world_ranks if w in ops]
            total = reduce_contributions(ordered, op_fn)
            if kind is OpKind.ALLREDUCE:
                return {r: total for r in participants}
            root_world = comm.world_rank(ops[participants[0]].root)
            return {r: (total if r == root_world else None)
                    for r in participants}
        if kind in (OpKind.GATHER, OpKind.ALLGATHER):
            gathered = [ops[w].payload
                        for w in comm.world_ranks if w in ops]
            if kind is OpKind.ALLGATHER:
                return {r: list(gathered) for r in participants}
            root_world = comm.world_rank(ops[participants[0]].root)
            return {r: (list(gathered) if r == root_world else None)
                    for r in participants}
        if kind is OpKind.SCATTER:
            root_world = comm.world_rank(ops[participants[0]].root)
            chunks = ops[root_world].payload
            return {r: chunks[comm.rank_of(r)] for r in participants}
        if kind is OpKind.ALLTOALL:
            blocks = {r: ops[r].payload for r in participants}
            return {
                r: [blocks[s][comm.rank_of(r)]
                    for s in comm.world_ranks if s in blocks]
                for r in participants
            }
        if kind is OpKind.SCAN:
            op_fn = ops[participants[0]].reduce_op
            out, acc = {}, None
            for w in comm.world_ranks:
                if w not in ops:
                    continue
                acc = ops[w].payload if acc is None else op_fn(acc, ops[w].payload)
                out[w] = acc
            return out
        if kind is OpKind.SHRINK:
            shrunk = comm.without(self.failure_log.failed_ranks())
            return {r: shrunk for r in participants}
        if kind is OpKind.AGREE:
            flags = [ops[w].payload for w in comm.world_ranks if w in ops]
            agreed = reduce_contributions(flags, BAND)
            return {r: agreed for r in participants}
        if kind is OpKind.MERGE:
            merged = comm.merged_with(self._pending_spawned,
                                      name="world.repaired")
            self._pending_spawned = []
            self._merge_comm = None
            return {r: merged for r in participants}
        if kind is OpKind.SPAWN:
            return {r: list(self._pending_spawned) for r in participants}
        raise SimulationError("no result rule for %s" % kind)

    def _do_spawn(self, site: _CollectiveSite, ops, when: float) -> float:
        """Respawn replacements for every currently-failed rank.

        Returns the additional seconds the spawn costs beyond the
        rendezvous. Replacement processes reuse the dead world ranks' ids
        (the paper's non-shrinking recovery restores the original layout).
        """
        dead = list(self.failure_log.failed_ranks())
        cost = (self.SPAWN_BASE
                + self.SPAWN_PER_PROC * max(1, len(dead))
                + self.MERGE_ALPHA * math.log2(max(2, self.nprocs)))
        for rank in dead:
            self._spawn_coroutine(rank, StartState.RESPAWNED)
            self.clock.advance_to(rank, when + cost)
            self.failure_log.forget(rank)
        self._pending_spawned = dead
        # the rendezvous (and thus the merged world) must inherit the
        # shrunk comm's error handler, or a later failure on the repaired
        # world would wrongly be treated as fatal
        self._merge_comm = Communicator(
            sorted(set(site.comm.world_ranks) | set(dead)), "merge.pending",
            errhandler=site.comm.errhandler)
        self.stats["spawns"] += 1
        return cost

    # ------------------------------------------------------------------ #
    # revoke                                                             #
    # ------------------------------------------------------------------ #
    def _handle_revoke(self, rank: int, op: Op) -> None:
        comm = op.comm
        now = self.clock.now(rank)
        cost = self.REVOKE_ALPHA * math.log2(max(2, comm.size))
        comm.revoke()
        notice_at = now + cost
        # interrupt pending receives from members of this communicator
        for waiter_rank, waiter in list(self._recv_waiters.items()):
            if comm.contains(waiter_rank):
                self._unregister_waiter(waiter_rank, waiter)
                self._deliver_error(waiter_rank, CommRevokedError(),
                                    max(self.clock.now(waiter_rank),
                                        notice_at))
        # poison collective sites on this communicator
        for site in list(self._sites.get(comm.comm_id, [])):
            self._discard_site(site)
            for member, (_, arrival) in site.arrivals.items():
                if self._ranks[member].status is RankStatus.BLOCKED:
                    self._deliver_error(member, CommRevokedError(),
                                        max(arrival, notice_at))
        self.clock.advance(rank, cost)
        self._mark_ready(rank, None)

    # ------------------------------------------------------------------ #
    # stall resolution / deadlock                                        #
    # ------------------------------------------------------------------ #
    def _resolve_stalled_failures(self) -> None:
        """Re-check blocked ops against the failure log (safety net)."""
        for rank, op in list(self._recv_waiters.items()):
            if op.peer is not None and self.failure_log.is_failed(op.peer):
                rec = self.failure_log.record_for(op.peer)
                self._fail_blocked_op(rank, op, rec.detected_at)
        for sites in list(self._sites.values()):
            for site in list(sites):
                self._maybe_resolve_site(site)

    def _raise_deadlock(self) -> None:
        blocked = {
            r: (s.blocked_on.kind.value if s.blocked_on else "?")
            for r, s in self._ranks.items()
            if s.status is RankStatus.BLOCKED
        }
        raise DeadlockError(
            "no rank can make progress; blocked ranks: %s" % (blocked,))
