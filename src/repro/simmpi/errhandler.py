"""MPI error handler semantics.

The default world error handler is ``ERRORS_ARE_FATAL``: a detected process
failure aborts the whole job (this is what plain Restart relies on). ULFM
flips the world to ``ERRORS_RETURN`` so failures surface as exceptions in
the affected ranks, which the application-level recovery code catches —
exactly the control flow of Figure 3 in the paper.
"""

from __future__ import annotations

import enum


class ErrHandler(enum.Enum):
    """How a communicator reacts to a detected failure."""

    #: abort the entire job (MPI default)
    FATAL = "errors_are_fatal"
    #: raise the error inside the calling rank(s) and keep the job alive
    RETURN = "errors_return"


DEFAULT_ERRHANDLER = ErrHandler.FATAL
