"""Fail-stop failure bookkeeping and detection model.

A killed process stops at a definite virtual time; surviving peers observe
the failure only after the detector's latency has elapsed — waiting inside
a blocked operation until then, exactly as a real MPI stack behaves. The
detection latency follows the heartbeat-ring detector of Bosilca et al.
("A failure detector for HPC platforms", IJHPCA 2018) that ULFM ships:
roughly one heartbeat period plus a log-depth propagation wave.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DetectorSpec:
    """Failure-detector timing parameters."""

    #: heartbeat period in seconds (ULFM default is 100 ms class)
    heartbeat_period: float = 0.1
    #: missed-beat multiplier before declaring a process dead
    timeout_beats: int = 3
    #: per-hop propagation latency of the failure notice
    propagation_hop: float = 5e-4

    def __post_init__(self):
        if self.heartbeat_period <= 0 or self.timeout_beats < 1:
            raise ConfigurationError("invalid detector parameters")


class FailureDetector:
    """Computes when a failure at time ``t`` becomes visible to peers."""

    def __init__(self, spec: DetectorSpec | None = None):
        self.spec = spec or DetectorSpec()

    def detection_latency(self, nprocs: int) -> float:
        """Seconds from actual death to global knowledge of it."""
        s = self.spec
        wave = math.ceil(math.log2(max(2, nprocs))) * s.propagation_hop
        return s.heartbeat_period * s.timeout_beats + wave

    def detected_at(self, failure_time: float, nprocs: int) -> float:
        return failure_time + self.detection_latency(nprocs)


@dataclass
class FailureRecord:
    """One observed process failure."""

    rank: int
    failed_at: float
    iteration: int = -1
    detected_at: float = field(default=0.0)


class FailureLog:
    """Job-wide record of failures, queried by ops and recovery code."""

    def __init__(self, detector: FailureDetector, nprocs: int):
        self._detector = detector
        self._nprocs = nprocs
        self._records: dict[int, FailureRecord] = {}

    def record(self, rank: int, failed_at: float,
               iteration: int = -1) -> FailureRecord:
        rec = FailureRecord(
            rank=rank, failed_at=failed_at, iteration=iteration,
            detected_at=self._detector.detected_at(failed_at, self._nprocs),
        )
        self._records[rank] = rec
        return rec

    def is_failed(self, rank: int) -> bool:
        return rank in self._records

    def failed_ranks(self) -> tuple:
        return tuple(sorted(self._records))

    def record_for(self, rank: int) -> FailureRecord:
        return self._records[rank]

    def any_failed(self, ranks) -> list:
        return [r for r in ranks if r in self._records]

    def earliest_detection(self, ranks) -> float:
        """Earliest time at which any failure among ``ranks`` is visible."""
        times = [self._records[r].detected_at for r in ranks
                 if r in self._records]
        if not times:
            raise ConfigurationError(
                "no failed ranks among %s" % (list(ranks),))
        return min(times)

    def clear(self) -> None:
        self._records.clear()

    def forget(self, rank: int) -> None:
        """Drop the record for a rank (after a replacement was spawned)."""
        self._records.pop(rank, None)
