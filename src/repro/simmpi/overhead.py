"""Runtime overhead models attached by recovery frameworks.

The paper's key asymmetry (§V-C): ULFM amends the MPI runtime with a
periodic heartbeat and fault-tolerant variants of communication calls, so
it taxes *every* application operation, and the tax grows with the process
count. Reinit lives entirely inside the runtime's launch path and costs
nothing until a failure happens. These classes make that asymmetry a
mechanism instead of a fudge factor: the runtime consults its overhead
model when pricing compute and communication.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class OverheadModel:
    """No-op baseline: vanilla MPI (Restart) and Reinit behave like this."""

    name = "none"

    def compute_factor(self, nprocs: int) -> float:
        """Multiplier applied to every compute interval."""
        return 1.0

    def collective_extra(self, nprocs: int, nbytes: int) -> float:
        """Additive seconds per collective call."""
        return 0.0

    def ptp_extra(self, nprocs: int, nbytes: int) -> float:
        """Additive seconds per point-to-point message."""
        return 0.0


@dataclass
class UlfmOverheadModel(OverheadModel):
    """ULFM's always-on costs.

    * ``compute_factor`` models heartbeat servicing and the interposition
      layer on the progress engine: a small per-process-count tax that
      multiplies application compute. Because it is multiplicative it
      automatically grows with the input problem size, reproducing Fig. 8.
    * ``collective_extra``/``ptp_extra`` model the fault-tolerance wrappers
      around communication calls (epoch tracking, revocation checks).
    """

    #: compute tax per log2(P) step (calibrated to Fig. 5's ~10-25% band)
    compute_tax_per_log2p: float = 0.022
    #: extra seconds per collective per log2(P) step
    collective_alpha: float = 6.0e-6
    #: extra seconds per p2p message
    ptp_alpha: float = 1.2e-6
    name: str = "ulfm"

    def compute_factor(self, nprocs: int) -> float:
        return 1.0 + self.compute_tax_per_log2p * math.log2(max(2, nprocs))

    def collective_extra(self, nprocs: int, nbytes: int) -> float:
        return self.collective_alpha * math.log2(max(2, nprocs))

    def ptp_extra(self, nprocs: int, nbytes: int) -> float:
        return self.ptp_alpha
