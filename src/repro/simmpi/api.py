"""The per-rank MPI facade applications program against.

Every communication method is a *generator function*: application code
calls it with ``yield from`` so the operation flows out to the scheduler
and the result flows back in::

    def main(mpi):
        total = yield from mpi.allreduce(local_sum, op=ops.SUM)
        yield from mpi.barrier()

Non-communication helpers (``now()``, ``rank``, ``size``) are plain
attributes/functions.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .communicator import Communicator
from .datatypes import Op, OpKind
from .runtime import StartState
from ..workmodel import WorkModel


class MpiApi:
    """One rank's view of the simulated MPI runtime."""

    def __init__(self, runtime, rank: int,
                 start_state: StartState = StartState.INITIAL):
        self._runtime = runtime
        self.rank = rank
        self.start_state = start_state
        self.work_model = WorkModel(node=runtime.cluster.node_spec)

    # -- plain accessors ----------------------------------------------------
    @property
    def size(self) -> int:
        return self._runtime.nprocs

    @property
    def world(self) -> Communicator:
        return self._runtime.world

    @property
    def is_restarted(self) -> bool:
        """True when Reinit re-entered the resilient main after a failure."""
        return self.start_state is StartState.RESTARTED

    @property
    def is_respawned(self) -> bool:
        """True for a ULFM replacement process joining an ongoing recovery."""
        return self.start_state is StartState.RESPAWNED

    def now(self) -> float:
        """This rank's local virtual time (``MPI_Wtime``)."""
        return self._runtime.clock.now(self.rank)

    def node_id(self) -> int:
        return self._runtime.cluster.node_of(self.rank)

    def cached_comm(self, world_ranks, name: str) -> Communicator:
        """Shared communicator for a subgroup (see Runtime.cached_comm)."""
        return self._runtime.cached_comm(world_ranks, name)

    def ranks_per_node(self) -> int:
        return self._runtime.ranks_per_node()

    # -- local work ----------------------------------------------------------
    def compute(self, seconds: Optional[float] = None, flops: float = 0.0,
                bytes_moved: float = 0.0) -> Generator:
        """Charge local compute time (subject to the runtime overhead tax)."""
        if seconds is None:
            seconds = self.work_model.seconds(
                flops=flops, bytes_moved=bytes_moved,
                ranks_per_node=self.ranks_per_node())
        yield Op(OpKind.COMPUTE, seconds=seconds)

    def sleep(self, seconds: float) -> Generator:
        """Advance local time without the compute overhead tax."""
        yield Op(OpKind.SLEEP, seconds=seconds)

    def iteration(self, i: int) -> Generator:
        """Mark the start of main-loop iteration ``i`` (fault hook).

        With no armed fault events the mark cannot have any effect (it
        advances no clock and carries no result), so it is elided
        entirely instead of paying a scheduler round trip.
        """
        hook = self._runtime.phase_hook
        if hook is not None:
            hook.iteration(self.rank, i, self.now())
        plan = self._runtime.fault_plan
        if plan is None or not getattr(plan, "events", ()):
            return
        yield Op(OpKind.ITER_MARK, iteration=i)

    # -- phase-anchor instrumentation (repro.explore) -------------------------
    def phase_enter(self, anchor: str) -> None:
        """Note entry into a named phase window (checkpoint write, a ULFM
        repair step, ...) on the plan's phase hook, if any.

        Plain calls, not ops: anchors advance no clock and must cost
        nothing when no timeline probe or progress guard is attached.
        """
        hook = self._runtime.phase_hook
        if hook is not None:
            hook.enter(self.rank, anchor, self.now())

    def phase_exit(self, anchor: str) -> None:
        """Note exit from a named phase window (see :meth:`phase_enter`)."""
        hook = self._runtime.phase_hook
        if hook is not None:
            hook.exit(self.rank, anchor, self.now())

    # -- point to point -------------------------------------------------------
    def send(self, dest: int, payload: Any, tag: int = 0,
             nbytes: Optional[int] = None) -> Generator:
        yield Op(OpKind.SEND, peer=dest, tag=tag, payload=payload,
                 nbytes=nbytes, comm=self._runtime.world)

    def recv(self, source: Optional[int] = None, tag: Optional[int] = 0
             ) -> Generator:
        """Blocking receive; returns ``(payload, status)``.

        ``source=None`` is ``MPI_ANY_SOURCE``; ``tag=None`` is
        ``MPI_ANY_TAG``.
        """
        result = yield Op(OpKind.RECV, peer=source, tag=tag,
                          comm=self._runtime.world)
        return result

    def sendrecv(self, dest: int, payload: Any, source: Optional[int] = None,
                 tag: int = 0, nbytes: Optional[int] = None) -> Generator:
        """Combined exchange (safe under the eager send protocol)."""
        yield from self.send(dest, payload, tag=tag, nbytes=nbytes)
        result = yield from self.recv(source if source is not None else dest,
                                      tag=tag)
        return result

    # -- collectives ----------------------------------------------------------
    def barrier(self, comm: Optional[Communicator] = None) -> Generator:
        yield Op(OpKind.BARRIER, comm=comm or self._runtime.world)

    def bcast(self, payload: Any = None, root: int = 0,
              comm: Optional[Communicator] = None,
              nbytes: Optional[int] = None) -> Generator:
        result = yield Op(OpKind.BCAST, comm=comm or self._runtime.world,
                          payload=payload, root=root, nbytes=nbytes)
        return result

    def reduce(self, payload: Any, op, root: int = 0,
               comm: Optional[Communicator] = None,
               nbytes: Optional[int] = None) -> Generator:
        result = yield Op(OpKind.REDUCE, comm=comm or self._runtime.world,
                          payload=payload, reduce_op=op, root=root,
                          nbytes=nbytes)
        return result

    def allreduce(self, payload: Any, op,
                  comm: Optional[Communicator] = None,
                  nbytes: Optional[int] = None) -> Generator:
        result = yield Op(OpKind.ALLREDUCE, comm=comm or self._runtime.world,
                          payload=payload, reduce_op=op, nbytes=nbytes)
        return result

    def gather(self, payload: Any, root: int = 0,
               comm: Optional[Communicator] = None,
               nbytes: Optional[int] = None) -> Generator:
        result = yield Op(OpKind.GATHER, comm=comm or self._runtime.world,
                          payload=payload, root=root, nbytes=nbytes)
        return result

    def allgather(self, payload: Any,
                  comm: Optional[Communicator] = None,
                  nbytes: Optional[int] = None) -> Generator:
        result = yield Op(OpKind.ALLGATHER, comm=comm or self._runtime.world,
                          payload=payload, nbytes=nbytes)
        return result

    def scatter(self, chunks: Any = None, root: int = 0,
                comm: Optional[Communicator] = None,
                nbytes: Optional[int] = None) -> Generator:
        result = yield Op(OpKind.SCATTER, comm=comm or self._runtime.world,
                          payload=chunks, root=root, nbytes=nbytes)
        return result

    def alltoall(self, blocks: Any,
                 comm: Optional[Communicator] = None,
                 nbytes: Optional[int] = None) -> Generator:
        result = yield Op(OpKind.ALLTOALL, comm=comm or self._runtime.world,
                          payload=blocks, nbytes=nbytes)
        return result

    def scan(self, payload: Any, op,
             comm: Optional[Communicator] = None,
             nbytes: Optional[int] = None) -> Generator:
        result = yield Op(OpKind.SCAN, comm=comm or self._runtime.world,
                          payload=payload, reduce_op=op, nbytes=nbytes)
        return result

    # -- storage ----------------------------------------------------------------
    def store_write(self, store, path: str, data: bytes) -> Generator:
        """Write bytes to a storage tier, charging its I/O time locally."""
        duration = yield Op(OpKind.STORE_WRITE, store=store, path=path,
                            payload=data, nbytes=len(data))
        return duration

    def store_read(self, store, path: str) -> Generator:
        data = yield Op(OpKind.STORE_READ, store=store, path=path)
        return data

    # -- ULFM extensions ----------------------------------------------------------
    def comm_revoke(self, comm: Communicator) -> Generator:
        """``MPIX_Comm_revoke``: interrupt all pending ops on ``comm``."""
        yield Op(OpKind.REVOKE, comm=comm)

    def comm_shrink(self, comm: Communicator) -> Generator:
        """``MPIX_Comm_shrink``: survivors build a failure-free comm."""
        shrunk = yield Op(OpKind.SHRINK, comm=comm)
        return shrunk

    def comm_spawn(self, comm: Communicator) -> Generator:
        """``MPI_Comm_spawn``: replace every failed rank; returns their ids."""
        spawned = yield Op(OpKind.SPAWN, comm=comm)
        return spawned

    def intercomm_merge(self, comm: Optional[Communicator]) -> Generator:
        """``MPI_Intercomm_merge``: survivors + replacements, world order.

        Survivors pass the shrunk communicator; a freshly spawned
        replacement passes ``None`` (it joins through the runtime's
        pending spawn rendezvous, the analogue of the parent intercomm).
        """
        merged = yield Op(OpKind.MERGE, comm=comm)
        return merged

    def set_world(self, comm: Communicator) -> None:
        """Swap the world communicator after a repair.

        This is the paper's ``worldc[worldi]`` global-variable swap
        (Fig. 3, lines 2-6): FTI and the application must see the
        repaired world immediately. Idempotent across ranks. Cached
        communicators from the pre-repair epoch that can no longer be
        used (revoked, or referencing ranks outside the new world) are
        evicted so repeated recoveries do not accumulate state.
        """
        self._runtime.world = comm
        self._runtime.prune_stale_comms()

    def comm_agree(self, comm: Communicator, flag: int = 1) -> Generator:
        """``MPIX_Comm_agree``: fault-tolerant bitwise-AND agreement."""
        agreed = yield Op(OpKind.AGREE, comm=comm, payload=int(flag), nbytes=8)
        return agreed

    def abort(self) -> Generator:
        """``MPI_Abort``: kill the whole job."""
        yield Op(OpKind.ABORT)
