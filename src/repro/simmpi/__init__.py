"""Simulated MPI: deterministic SPMD runtime with fail-stop failures."""

from . import reduceops as ops
from .api import MpiApi
from .communicator import Communicator
from .datatypes import Message, Op, OpKind, Status, payload_nbytes
from .errhandler import ErrHandler
from .failures import DetectorSpec, FailureDetector, FailureLog
from .overhead import OverheadModel, UlfmOverheadModel
from .runtime import Runtime, StartState

__all__ = [
    "Communicator",
    "DetectorSpec",
    "ErrHandler",
    "FailureDetector",
    "FailureLog",
    "Message",
    "MpiApi",
    "Op",
    "OpKind",
    "OverheadModel",
    "Runtime",
    "StartState",
    "Status",
    "UlfmOverheadModel",
    "ops",
    "payload_nbytes",
]
