"""Communicators for the simulated runtime.

A communicator is an ordered group of *world* ranks plus failure/revocation
state. ULFM's ``shrink`` produces a new communicator of survivors; the
paper's non-shrinking recovery then spawns replacements and merges them
back, restoring the original size.
"""

from __future__ import annotations

import itertools

from .errhandler import DEFAULT_ERRHANDLER, ErrHandler
from ..errors import ConfigurationError

_comm_ids = itertools.count(0)


class Communicator:
    """An ordered process group (compare ``MPI_Comm``)."""

    def __init__(self, world_ranks, name: str = "comm",
                 errhandler: ErrHandler = DEFAULT_ERRHANDLER):
        world_ranks = list(world_ranks)
        if not world_ranks:
            raise ConfigurationError("communicator needs at least one rank")
        if len(set(world_ranks)) != len(world_ranks):
            raise ConfigurationError("duplicate ranks in communicator")
        self.comm_id = next(_comm_ids)
        self.name = name
        self._world_ranks = world_ranks
        self._rank_of = {w: i for i, w in enumerate(world_ranks)}
        self.errhandler = errhandler
        self.revoked = False

    # -- group accessors ----------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._world_ranks)

    @property
    def world_ranks(self) -> tuple:
        return tuple(self._world_ranks)

    def rank_of(self, world_rank: int) -> int:
        """Communicator-local rank of a world rank."""
        return self._rank_of[world_rank]

    def world_rank(self, local_rank: int) -> int:
        """World rank of a communicator-local rank."""
        return self._world_ranks[local_rank]

    def contains(self, world_rank: int) -> bool:
        return world_rank in self._rank_of

    # -- derived communicators ----------------------------------------------
    def dup(self, name: str | None = None) -> "Communicator":
        """A fresh communicator with the same group (``MPI_Comm_dup``)."""
        return Communicator(self._world_ranks, name or self.name + ".dup",
                            errhandler=self.errhandler)

    def split(self, colors: dict, name: str = "split") -> dict:
        """Split by color (``MPI_Comm_split``); keys are world ranks."""
        groups: dict = {}
        for w in self._world_ranks:
            color = colors[w]
            if color is None:
                continue
            groups.setdefault(color, []).append(w)
        return {
            color: Communicator(ranks, "%s[%s]" % (name, color),
                                errhandler=self.errhandler)
            for color, ranks in groups.items()
        }

    def without(self, dead_ranks, name: str | None = None) -> "Communicator":
        """Survivor communicator (what ``MPIX_Comm_shrink`` builds)."""
        dead = set(dead_ranks)
        survivors = [w for w in self._world_ranks if w not in dead]
        return Communicator(survivors, name or self.name + ".shrunk",
                            errhandler=self.errhandler)

    def merged_with(self, new_ranks, name: str | None = None) -> "Communicator":
        """Union communicator (``MPI_Intercomm_merge`` of spawn result).

        New ranks are placed at the world-rank positions they replace, so
        the merged communicator is ordered by world rank — matching the
        paper's non-shrinking recovery where the repaired world has the
        same rank layout as the original.
        """
        combined = sorted(set(self._world_ranks) | set(new_ranks))
        return Communicator(combined, name or self.name + ".merged",
                            errhandler=self.errhandler)

    # -- failure state -------------------------------------------------------
    def revoke(self) -> None:
        """Mark revoked; every subsequent op on this comm raises."""
        self.revoked = True

    def set_errhandler(self, handler: ErrHandler) -> None:
        self.errhandler = handler

    def __repr__(self):
        return "<Communicator %s id=%d size=%d%s>" % (
            self.name, self.comm_id, self.size,
            " REVOKED" if self.revoked else "")
