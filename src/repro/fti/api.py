"""The FTI programming interface (per rank), mirroring Figure 1 of the paper.

Lifecycle inside a rank's main::

    fti = Fti(mpi, cluster, registry, config)
    yield from fti.init()
    fti.protect(0, iteration_cell)
    fti.protect(1, state_array)
    while iterating:
        if fti.status() != 0:
            it = yield from fti.recover()
        if it % cfg.ckpt_stride == 0:
            yield from fti.checkpoint(it)
    yield from fti.finalize()

All timing (serialization, storage writes, the completion collective) is
charged on the calling rank's virtual clock; the per-rank totals are kept
in :attr:`Fti.stats` for the harness's execution-time breakdown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import MEMCPY_BANDWIDTH_SHARE, FtiConfig
from .levels import LEVELS
from .metadata import CheckpointRegistry
from .serializer import ProtectedSet, ScalarRef
from ..errors import NoCheckpointError
from ..obs.metrics import REGISTRY as OBS_REGISTRY
from ..simmpi import ops
from ..simmpi.communicator import Communicator  # noqa: F401  (re-exported type)

#: telemetry counters (docs/OBSERVABILITY.md); pure observation — they
#: never touch virtual time, so the DET-WALLCLOCK discipline of this
#: subtree is intact. In spawn-pool workers these accumulate in the
#: worker's registry and ride the result pipe back to the campaign.
_CKPT_WRITES = OBS_REGISTRY.counter(
    "match_fti_ckpt_writes_total",
    "Completed collective checkpoint writes, by FTI level")
_CKPT_READS = OBS_REGISTRY.counter(
    "match_fti_ckpt_reads_total",
    "Per-rank checkpoint restores (FTI_Recover), by FTI level")


@dataclass
class FtiStats:
    """Per-rank timing/volume accounting for the breakdown figures."""

    ckpt_seconds: float = 0.0
    recover_seconds: float = 0.0
    ckpt_count: int = 0
    recover_count: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class Fti:
    """One rank's FTI instance."""

    #: coordination overhead of FTI's internal collectives per log2(P)
    COORD_ALPHA = 0.02

    def __init__(self, mpi, cluster, registry: CheckpointRegistry,
                 config: FtiConfig | None = None,
                 stats: FtiStats | None = None):
        self.mpi = mpi
        self.cluster = cluster
        self.registry = registry
        self.config = config or FtiConfig()
        self.protected = ProtectedSet()
        #: accepts an external stats object so accounting survives the
        #: re-instantiation that Restart/Reinit/ULFM recovery causes
        self.stats = stats if stats is not None else FtiStats()
        self.rank = mpi.rank
        self.nprocs = mpi.size
        self.node_id = cluster.node_of(mpi.rank)
        self._level = LEVELS[self.config.level]()
        self._status = 0
        self._initialized = False
        self._nominal_bytes = 0
        self.group_comm = self._build_group_comm()

    def _build_group_comm(self) -> Communicator:
        """Contiguous encoding groups of ``group_size`` ranks (L3)."""
        size = self.config.group_size
        start = (self.rank // size) * size
        members = [r for r in range(start, min(start + size, self.nprocs))]
        if len(members) < 2:  # tail group too small to encode: fold back
            members = list(range(max(0, self.nprocs - size), self.nprocs))
            start = members[0]
        return self.mpi.cached_comm(members, "fti.group%d" % start)

    # -- lifecycle -----------------------------------------------------------
    def init(self):
        """``FTI_Init``: detect restart state; small coordination bcast."""
        has_ckpt = self.registry.has_checkpoint()
        agreed = yield from self.mpi.bcast(1 if has_ckpt else 0, root=0,
                                           nbytes=8)
        self._status = 1 if agreed else 0
        self._initialized = True

    def status(self) -> int:
        """``FTI_Status``: 0 on a fresh start, 1 when recovery is needed."""
        return self._status

    def protect(self, var_id: int, obj, name: str = "") -> None:
        """``FTI_Protect``: register a data object for checkpointing."""
        self.protected.protect(var_id, obj, name)

    def set_nominal_bytes(self, nbytes: int) -> None:
        """Declare the nominal checkpoint volume of this rank.

        Applications execute on capped arrays but their real counterparts
        checkpoint far more data; I/O time is inflated to the nominal
        volume (DESIGN.md substitution #4). Zero disables inflation.
        """
        self._nominal_bytes = int(nbytes)

    def _inflation_factor(self, actual_len: int) -> float:
        if self._nominal_bytes <= 0 or actual_len <= 0:
            return 1.0
        return max(1.0, self._nominal_bytes / actual_len)

    def _memory_contention(self) -> float:
        """RAMFS writes are memcpy: once the ranks sharing a node demand
        more than the node's memory bandwidth, writes slow down — the
        paper's "modest increase with more processes" (§V-C)."""
        node = self.cluster.node_spec
        rpn = max(1, -(-self.nprocs // self.cluster.nnodes))
        share = node.memory_bandwidth * MEMCPY_BANDWIDTH_SHARE / rpn
        return max(1.0, node.ramfs_bandwidth / share)

    def unprotect(self, var_id: int) -> None:
        self.protected.unprotect(var_id)

    # -- checkpoint ---------------------------------------------------------------
    def checkpoint(self, iteration: int):
        """``FTI_Checkpoint``: persist every protected object.

        Charges serialization compute, level-specific storage/network time
        and FTI's completion collective on this rank's clock.
        """
        self._require_init()
        t0 = self.mpi.now()
        blob = self.protected.serialize()
        factor = self._inflation_factor(len(blob))
        # serialization cost: one read of the data + one write of the blob,
        # at the nominal data volume
        yield from self.mpi.compute(bytes_moved=2.0 * len(blob) * factor)
        record = self.registry.open_checkpoint(iteration, self.config.level,
                                               self.nprocs)
        anchor = "ckpt.L%d.write" % self.config.level
        self.mpi.phase_enter(anchor)
        t_io = self.mpi.now()
        entry = yield from self._level.write(self, self.mpi, blob, record)
        io_seconds = self.mpi.now() - t_io
        # top up measured I/O time to the modeled nominal-volume cost
        if self._nominal_bytes > 0:
            nominal_io = self._level.nominal_write_seconds(
                self, self._nominal_bytes)
            if nominal_io > io_seconds:
                yield from self.mpi.sleep(nominal_io - io_seconds)
        self.mpi.phase_exit(anchor)
        record.commit_rank(entry)
        # FTI's internal coordination: metadata agreement + group collectives
        yield from self.mpi.compute(
            seconds=self.COORD_ALPHA * math.log2(max(2, self.nprocs)))
        yield from self.mpi.allreduce(1, op=ops.SUM, nbytes=8)
        if record.complete:
            _CKPT_WRITES.inc(level=str(self.config.level))
            for victim in self.registry.garbage_collect(self.config.keep_last):
                self._level.delete(self, victim)
        self.stats.ckpt_count += 1
        self.stats.bytes_written += int(len(blob) * factor)
        self.stats.ckpt_seconds += self.mpi.now() - t0

    # -- recovery --------------------------------------------------------------------
    def recover(self):
        """``FTI_Recover``: restore protected objects from the newest
        complete checkpoint; returns its iteration number.

        The paper measures this in milliseconds (reads come from RAMFS),
        which is why the figures omit it; we charge it anyway.
        """
        self._require_init()
        t0 = self.mpi.now()
        record = self.registry.latest_complete()
        if record is None:
            raise NoCheckpointError("no complete checkpoint to recover from")
        anchor = "ckpt.L%d.read" % self.config.level
        self.mpi.phase_enter(anchor)
        t_io = self.mpi.now()
        blob = yield from self._level.read(self, self.mpi, record)
        io_seconds = self.mpi.now() - t_io
        factor = self._inflation_factor(len(blob))
        if self._nominal_bytes > 0:
            nominal_io = self._level.nominal_read_seconds(
                self, self._nominal_bytes)
            if nominal_io > io_seconds:
                yield from self.mpi.sleep(nominal_io - io_seconds)
        self.mpi.phase_exit(anchor)
        self.protected.deserialize_into(blob)
        yield from self.mpi.compute(bytes_moved=2.0 * len(blob) * factor)
        self._status = 0
        _CKPT_READS.inc(level=str(self.config.level))
        self.stats.recover_count += 1
        self.stats.bytes_read += int(len(blob) * factor)
        self.stats.recover_seconds += self.mpi.now() - t0
        return record.iteration

    def finalize(self):
        """``FTI_Finalize``: final synchronisation (keeps checkpoints)."""
        self._require_init()
        yield from self.mpi.barrier()
        self._initialized = False

    # -- helpers --------------------------------------------------------------------
    def checkpoint_due(self, iteration: int) -> bool:
        """True when the paper's ``iter % stride == 0`` policy fires."""
        return iteration > 0 and iteration % self.config.ckpt_stride == 0

    def protected_bytes(self) -> int:
        return self.protected.total_bytes()

    def _require_init(self) -> None:
        if not self._initialized:
            raise NoCheckpointError(
                "FTI_Init was not called (or finalize already ran)")


__all__ = ["Fti", "FtiConfig", "FtiStats", "ScalarRef"]
