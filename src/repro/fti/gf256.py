"""GF(2^8) arithmetic for Reed-Solomon erasure coding (FTI's L3 level).

Field elements are bytes; addition is XOR; multiplication uses exp/log
tables over the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D),
the standard choice for storage RS codes. The bulk paths are fully
table-driven numpy: a precomputed 256x256 product table turns matrix
kernels into fancy-indexing plus XOR reductions with no Python-level
inner loops, which keeps encoding of megabyte checkpoints fast.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

_PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256

# -- table construction (module import time, ~microseconds) -----------------
_EXP = np.zeros(512, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int32)
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _PRIMITIVE_POLY
_EXP[255:510] = _EXP[:255]  # wraparound so exp lookups never need a modulo

#: full product table: _MUL_TABLE[a, b] == a*b in GF(256) (64 KiB)
_MUL_TABLE = _EXP[_LOG[:, None] + _LOG[None, :]].astype(np.uint8)
_MUL_TABLE[0, :] = 0
_MUL_TABLE[:, 0] = 0

#: element cap per (rows x k x cols) lookup block in gf_mat_vec; bounds
#: transient memory to ~16 MiB while keeping full vectorisation
_MAT_VEC_CHUNK = 1 << 24


def gf_add(a: int, b: int) -> int:
    """Field addition (and subtraction): XOR."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Field multiplication via the product table."""
    return int(_MUL_TABLE[a, b])


def gf_div(a: int, b: int) -> int:
    """Field division; raises on division by zero."""
    if b == 0:
        raise ZeroDivisionError("GF(256) division by zero")
    if a == 0:
        return 0
    return int(_EXP[(int(_LOG[a]) - int(_LOG[b])) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return int(_EXP[255 - int(_LOG[a])])


def gf_pow(a: int, n: int) -> int:
    """``a**n`` in the field."""
    if a == 0:
        return 0 if n > 0 else 1
    return int(_EXP[(int(_LOG[a]) * n) % 255])


def gf_mul_vector(scalar: int, vec: np.ndarray) -> np.ndarray:
    """Multiply a uint8 vector by a scalar, element-wise in GF(256)."""
    return _MUL_TABLE[scalar][vec]


def gf_mat_vec(matrix: np.ndarray, shards: np.ndarray) -> np.ndarray:
    """GF(256) matrix (r x k) times shard block (k x n) -> (r x n).

    ``shards`` rows are uint8 vectors; the result row ``i`` is
    ``sum_j matrix[i, j] * shards[j]`` with field arithmetic. The whole
    product is one table gather plus an XOR reduction, processed in
    column chunks so transient memory stays bounded.
    """
    r, k = matrix.shape
    if shards.shape[0] != k:
        raise ConfigurationError(
            "matrix/shard shape mismatch: %s vs %s"
            % (matrix.shape, shards.shape))
    n = shards.shape[1]
    mat = np.ascontiguousarray(matrix, dtype=np.uint8)
    out = np.empty((r, n), dtype=np.uint8)
    step = max(1, _MAT_VEC_CHUNK // max(1, r * k))
    for start in range(0, n, step):
        chunk = shards[:, start:start + step]
        prods = _MUL_TABLE[mat[:, :, None], chunk[None, :, :]]
        np.bitwise_xor.reduce(prods, axis=1, out=out[:, start:start + step])
    return out


def gf_mat_inv(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix by Gauss-Jordan elimination.

    Row updates are whole-matrix table gathers (no per-row Python loop).
    Raises :class:`numpy.linalg.LinAlgError` if singular.
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ConfigurationError("matrix must be square")
    aug = np.concatenate(
        [matrix.astype(np.uint8), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        nonzero = np.nonzero(aug[col:, col])[0]
        if nonzero.size == 0:
            raise np.linalg.LinAlgError("singular GF(256) matrix")
        pivot = col + int(nonzero[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        inv_p = gf_inv(int(aug[col, col]))
        aug[col] = _MUL_TABLE[inv_p][aug[col]]
        # eliminate the pivot column from every other row at once
        factors = aug[:, col].copy()
        factors[col] = 0
        aug ^= _MUL_TABLE[factors[:, None], aug[col][None, :]]
    return aug[:, n:].copy()


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Vandermonde matrix V[i, j] = (i+1)^j over GF(256).

    Any ``cols`` rows of it are linearly independent for rows < 255,
    which is the property erasure codes need.
    """
    if rows >= FIELD_SIZE:
        raise ConfigurationError("at most 255 rows in GF(256) Vandermonde")
    logs = _LOG[np.arange(1, rows + 1)]
    powers = (logs[:, None] * np.arange(cols)[None, :]) % 255
    v = _EXP[powers].astype(np.uint8)
    # a^0 == 1 for every a, including the table's log(1) == 0 row
    v[:, 0] = 1
    return v
