"""GF(2^8) arithmetic for Reed-Solomon erasure coding (FTI's L3 level).

Field elements are bytes; addition is XOR; multiplication uses exp/log
tables over the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D),
the standard choice for storage RS codes. Vectorised numpy paths keep
encoding of megabyte checkpoints fast.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

_PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256

# -- table construction (module import time, ~microseconds) -----------------
_EXP = np.zeros(512, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int32)
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _PRIMITIVE_POLY
_EXP[255:510] = _EXP[:255]  # wraparound so exp lookups never need a modulo


def gf_add(a: int, b: int) -> int:
    """Field addition (and subtraction): XOR."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Field multiplication via log/exp tables."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[int(_LOG[a]) + int(_LOG[b])])


def gf_div(a: int, b: int) -> int:
    """Field division; raises on division by zero."""
    if b == 0:
        raise ZeroDivisionError("GF(256) division by zero")
    if a == 0:
        return 0
    return int(_EXP[(int(_LOG[a]) - int(_LOG[b])) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return int(_EXP[255 - int(_LOG[a])])


def gf_pow(a: int, n: int) -> int:
    """``a**n`` in the field."""
    if a == 0:
        return 0 if n > 0 else 1
    return int(_EXP[(int(_LOG[a]) * n) % 255])


def gf_mul_vector(scalar: int, vec: np.ndarray) -> np.ndarray:
    """Multiply a uint8 vector by a scalar, element-wise in GF(256)."""
    if scalar == 0:
        return np.zeros_like(vec)
    if scalar == 1:
        return vec.copy()
    log_s = int(_LOG[scalar])
    out = np.zeros_like(vec)
    nz = vec != 0
    out[nz] = _EXP[log_s + _LOG[vec[nz].astype(np.int32)]]
    return out


def gf_mat_vec(matrix: np.ndarray, shards: np.ndarray) -> np.ndarray:
    """GF(256) matrix (r x k) times shard block (k x n) -> (r x n).

    ``shards`` rows are uint8 vectors; the result row ``i`` is
    ``sum_j matrix[i, j] * shards[j]`` with field arithmetic.
    """
    r, k = matrix.shape
    if shards.shape[0] != k:
        raise ConfigurationError(
            "matrix/shard shape mismatch: %s vs %s"
            % (matrix.shape, shards.shape))
    out = np.zeros((r, shards.shape[1]), dtype=np.uint8)
    for i in range(r):
        acc = np.zeros(shards.shape[1], dtype=np.uint8)
        for j in range(k):
            coeff = int(matrix[i, j])
            if coeff:
                acc ^= gf_mul_vector(coeff, shards[j])
        out[i] = acc
    return out


def gf_mat_inv(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix by Gauss-Jordan elimination.

    Raises :class:`numpy.linalg.LinAlgError` if singular.
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ConfigurationError("matrix must be square")
    aug = np.concatenate(
        [matrix.astype(np.uint8), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        pivot = None
        for row in range(col, n):
            if aug[row, col] != 0:
                pivot = row
                break
        if pivot is None:
            raise np.linalg.LinAlgError("singular GF(256) matrix")
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        inv_p = gf_inv(int(aug[col, col]))
        aug[col] = gf_mul_vector(inv_p, aug[col])
        for row in range(n):
            if row != col and aug[row, col] != 0:
                aug[row] ^= gf_mul_vector(int(aug[row, col]), aug[col])
    return aug[:, n:].copy()


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Vandermonde matrix V[i, j] = (i+1)^j over GF(256).

    Any ``cols`` rows of it are linearly independent for rows < 255,
    which is the property erasure codes need.
    """
    if rows >= FIELD_SIZE:
        raise ConfigurationError("at most 255 rows in GF(256) Vandermonde")
    v = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            v[i, j] = gf_pow(i + 1, j)
    return v
