"""FTI configuration (the analogue of ``config.fti``).

The paper's experiments use L1 with RAMFS via ``/dev/shm`` and a
checkpoint every ten iterations (§V-B); those are the defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

VALID_LEVELS = (1, 2, 3, 4)

#: fraction of a node's memory bandwidth checkpoint memcpy can use —
#: the single source for the simulator's contention arithmetic
#: (``Fti._memory_contention``, the L3 encode path) and the analytic
#: model's mirror of it (``repro.modeling.costs.CostParams``)
MEMCPY_BANDWIDTH_SHARE = 0.75


@dataclass(frozen=True)
class FtiConfig:
    """Checkpoint policy for one job."""

    #: reliability level: 1 local, 2 partner copy, 3 Reed-Solomon, 4 PFS
    level: int = 1
    #: checkpoint every N iterations of the main loop
    ckpt_stride: int = 10
    #: ranks per RS encoding group (L3)
    group_size: int = 4
    #: write L1 checkpoints to the local SSD instead of RAMFS
    use_ssd: bool = False
    #: block size for L4 differential checkpointing
    diff_block_bytes: int = 64 * 1024
    #: enable differential (incremental) L4 checkpoints
    differential: bool = True
    #: how many complete checkpoints to retain before garbage collection
    keep_last: int = 1

    def __post_init__(self):
        if self.level not in VALID_LEVELS:
            raise ConfigurationError("FTI level must be one of %s"
                                     % (VALID_LEVELS,))
        if self.ckpt_stride < 1:
            raise ConfigurationError("ckpt_stride must be >= 1")
        if self.group_size < 2:
            raise ConfigurationError("group_size must be >= 2 for encoding")
        if self.diff_block_bytes < 1:
            raise ConfigurationError("diff_block_bytes must be positive")
        if self.keep_last < 1:
            raise ConfigurationError("keep_last must be >= 1")
