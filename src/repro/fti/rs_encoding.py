"""Systematic Reed-Solomon erasure coding across a checkpoint group.

FTI's L3 (§II-C): the checkpoints of a group of ``k`` ranks are encoded
with RS so that the group survives the loss of *half its nodes* — i.e.
``k`` data shards plus ``k`` parity shards, any ``k`` of which rebuild
everything. Shard ``i`` (data) and parity shard ``i`` both live on rank
``i``'s node, so losing a node destroys exactly two of ``2k`` shards.

The code is systematic: data shards are stored verbatim, so the failure-
free read path never pays a decode.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .gf256 import gf_mat_inv, gf_mat_vec, vandermonde
from ..errors import ConfigurationError, InsufficientRedundancyError


@lru_cache(maxsize=64)
def rs_code(k: int, m: int) -> "ReedSolomonCode":
    """Shared :class:`ReedSolomonCode` instance for ``(k, m)``.

    Building the systematic generator costs a Vandermonde build plus a
    GF matrix inversion; checkpoint groups reuse the same geometry for
    every checkpoint of a job, so the code object is cached process-wide
    (it is immutable after construction).
    """
    return ReedSolomonCode(k, m)


class ReedSolomonCode:
    """RS(k data, m parity) over GF(256), systematic form."""

    def __init__(self, k: int, m: int):
        if k < 1 or m < 0 or k + m > 255:
            raise ConfigurationError(
                "need 1 <= k, 0 <= m, k+m <= 255; got k=%d m=%d" % (k, m))
        self.k = k
        self.m = m
        # Build a (k+m) x k generator whose top k x k block is identity:
        # start from Vandermonde (any k rows independent), then normalise.
        v = vandermonde(k + m, k)
        top_inv = gf_mat_inv(v[:k, :])
        self.generator = gf_mat_vec(v, top_inv)  # (k+m) x k, systematic
        self.parity_matrix = self.generator[k:, :]

    # -- encoding -----------------------------------------------------------
    def encode(self, data_shards: list) -> list:
        """Compute ``m`` parity shards from ``k`` equal-length data shards.

        Returns the parity shards as ``bytes``; data shards are unchanged
        (systematic code).
        """
        block = self._as_block(data_shards)
        parity = gf_mat_vec(self.parity_matrix, block)
        return [parity[i].tobytes() for i in range(self.m)]

    # -- decoding -------------------------------------------------------------
    def decode(self, shards: dict, shard_len: int) -> list:
        """Rebuild all ``k`` data shards from any ``k`` surviving shards.

        ``shards`` maps shard index (0..k+m-1; <k are data, >=k parity) to
        bytes. Raises :class:`InsufficientRedundancyError` with fewer than
        ``k`` survivors.
        """
        available = sorted(shards)
        if len(available) < self.k:
            raise InsufficientRedundancyError(
                "need %d shards to decode, have %d" % (self.k, len(available)))
        if all(i < self.k for i in available[:self.k]) and all(
                i in shards for i in range(self.k)):
            return [bytes(shards[i]) for i in range(self.k)]
        use = available[:self.k]
        inv = self._decode_matrix(tuple(use))
        block = np.zeros((self.k, shard_len), dtype=np.uint8)
        for row, idx in enumerate(use):
            shard = np.frombuffer(shards[idx], dtype=np.uint8)
            if shard.size != shard_len:
                raise ConfigurationError(
                    "shard %d has length %d, expected %d"
                    % (idx, shard.size, shard_len))
            block[row] = shard
        data = gf_mat_vec(inv, block)
        return [data[i].tobytes() for i in range(self.k)]

    # -- helpers -----------------------------------------------------------------
    def _decode_matrix(self, use: tuple) -> np.ndarray:
        """Inverse of the generator rows for one survivor set, cached:
        repeated recoveries from the same loss pattern skip the
        Gauss-Jordan elimination."""
        cache = getattr(self, "_decode_cache", None)
        if cache is None:
            cache = self._decode_cache = {}
        inv = cache.get(use)
        if inv is None:
            if len(cache) >= 128:
                cache.clear()
            inv = cache[use] = gf_mat_inv(self.generator[list(use), :])
        return inv

    def _as_block(self, data_shards: list) -> np.ndarray:
        if len(data_shards) != self.k:
            raise ConfigurationError(
                "expected %d data shards, got %d" % (self.k, len(data_shards)))
        lengths = {len(s) for s in data_shards}
        if len(lengths) != 1:
            raise ConfigurationError(
                "data shards must be equal length, got %s" % sorted(lengths))
        block = np.zeros((self.k, lengths.pop()), dtype=np.uint8)
        for i, shard in enumerate(data_shards):
            block[i] = np.frombuffer(shard, dtype=np.uint8)
        return block


def pad_to_equal_length(blobs: list) -> tuple:
    """Pad byte blobs to a common length; returns (padded, original_lengths).

    The common length is the max plus a 0x80 terminator-style pad so that
    all-zero tails cannot be confused with data (lengths are stored in
    metadata anyway; the pad byte is belt and braces).
    """
    lengths = [len(b) for b in blobs]
    target = max(lengths) + 1
    padded = [b + b"\x80" + b"\x00" * (target - len(b) - 1) for b in blobs]
    return padded, lengths
