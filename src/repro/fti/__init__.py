"""FTI-style multi-level application checkpointing (paper §II-C, §IV-A)."""

from .api import Fti, FtiStats
from .config import FtiConfig
from .gf256 import gf_add, gf_div, gf_inv, gf_mul, gf_pow
from .levels import L1Local, L2Partner, L3ReedSolomon, L4Pfs, LEVELS
from .metadata import CheckpointRecord, CheckpointRegistry, RankEntry
from .rs_encoding import ReedSolomonCode, pad_to_equal_length
from .serializer import ProtectedSet, ScalarRef

__all__ = [
    "CheckpointRecord",
    "CheckpointRegistry",
    "Fti",
    "FtiConfig",
    "FtiStats",
    "L1Local",
    "L2Partner",
    "L3ReedSolomon",
    "L4Pfs",
    "LEVELS",
    "ProtectedSet",
    "RankEntry",
    "ReedSolomonCode",
    "ScalarRef",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "gf_pow",
    "pad_to_equal_length",
]
