"""Checkpoint metadata: FTI's stable bookkeeping.

The registry is the analogue of FTI's metadata files on reliable storage:
it survives job restarts (the harness keeps it alive across `Runtime`
instances) and records, per checkpoint, where every rank's blob lives and
how to rebuild it. Entries become *complete* — and therefore usable for
recovery — only once every rank has committed, so a failure mid-checkpoint
can never yield a torn restart point.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class RankEntry:
    """One rank's slice of a checkpoint."""

    rank: int
    node_id: int
    path: str
    nbytes: int
    crc32: int
    #: L2: node holding the partner copy
    partner_node: Optional[int] = None
    partner_path: Optional[str] = None
    #: L3: parity shard location and group geometry
    parity_path: Optional[str] = None
    group_index: Optional[int] = None
    group_ranks: tuple = ()
    padded_len: Optional[int] = None
    #: L4: path on the parallel file system
    pfs_path: Optional[str] = None


@dataclass
class CheckpointRecord:
    """One checkpoint generation across all ranks."""

    ckpt_id: int
    iteration: int
    level: int
    nprocs: int
    entries: dict = field(default_factory=dict)

    def commit_rank(self, entry: RankEntry) -> None:
        self.entries[entry.rank] = entry

    @property
    def complete(self) -> bool:
        return len(self.entries) == self.nprocs

    def entry(self, rank: int) -> RankEntry:
        return self.entries[rank]

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self.entries.values())


class CheckpointRegistry:
    """Job-spanning metadata service (FTI's stable metadata)."""

    def __init__(self):
        self._records: dict[int, CheckpointRecord] = {}
        self._ids = itertools.count(1)
        #: L4 differential state: rank -> {block index -> digest}
        self.diff_hashes: dict[int, dict] = {}

    # -- lifecycle ----------------------------------------------------------
    def open_checkpoint(self, iteration: int, level: int,
                        nprocs: int) -> CheckpointRecord:
        """Begin a new checkpoint generation; idempotent per iteration.

        All ranks of a BSP app call this at the same iteration; the first
        caller allocates the record, the rest join it.
        """
        for record in self._records.values():
            if (record.iteration == iteration and record.level == level
                    and not record.complete):
                return record
        record = CheckpointRecord(next(self._ids), iteration, level, nprocs)
        self._records[record.ckpt_id] = record
        return record

    def latest_complete(self) -> Optional[CheckpointRecord]:
        complete = [r for r in self._records.values() if r.complete]
        if not complete:
            return None
        return max(complete, key=lambda r: r.ckpt_id)

    def all_complete(self) -> list:
        return sorted((r for r in self._records.values() if r.complete),
                      key=lambda r: r.ckpt_id)

    def has_checkpoint(self) -> bool:
        return self.latest_complete() is not None

    def discard(self, ckpt_id: int) -> None:
        self._records.pop(ckpt_id, None)

    def garbage_collect(self, keep_last: int) -> list:
        """Drop all but the newest ``keep_last`` complete checkpoints.

        Returns the discarded records so the caller can delete their blobs
        from storage.
        """
        complete = self.all_complete()
        victims = complete[:-keep_last] if keep_last else complete
        for record in victims:
            self._records.pop(record.ckpt_id, None)
        return victims

    @staticmethod
    def checksum(blob: bytes) -> int:
        return zlib.crc32(blob) & 0xFFFFFFFF
