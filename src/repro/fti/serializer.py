"""Serialization of protected data objects into checkpoint blobs.

FTI's ``FTI_Protect`` registers (address, size) pairs; the Python
equivalent registers *cells* — either numpy arrays (recovered in place)
or boxed scalars. Serialization produces a self-describing blob with a
CRC32 so torn or bit-flipped checkpoints are detected on read, mirroring
FTI's per-file checksums.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ConfigurationError, CorruptCheckpointError

_MAGIC = b"FTIB"
_VERSION = 1

_KIND_ARRAY = 0
_KIND_SCALAR_F = 1
_KIND_SCALAR_I = 2
_KIND_BYTES = 3


@dataclass
class ScalarRef:
    """A boxed scalar so checkpoint recovery can write back through it."""

    value: Any = 0

    def set(self, value):
        self.value = value
        return value


class ProtectedSet:
    """The ordered registry of data objects one rank protects."""

    def __init__(self):
        self._items: dict[int, tuple] = {}

    def protect(self, var_id: int, obj: Any, name: str = "") -> None:
        """Register ``obj`` under ``var_id`` (compare ``FTI_Protect``).

        ``obj`` must be a numpy array (restored in place), a
        :class:`ScalarRef`, or a ``bytearray``. Re-protecting an existing
        id replaces the registration — FTI's semantics for an application
        that reallocated a buffer between checkpoints; later recoveries
        restore into the *new* object.
        """
        if not isinstance(obj, (np.ndarray, ScalarRef, bytearray)):
            raise ConfigurationError(
                "cannot protect %r: use ndarray, ScalarRef or bytearray"
                % type(obj).__name__)
        self._items[var_id] = (obj, name or "var%d" % var_id)

    def unprotect(self, var_id: int) -> None:
        self._items.pop(var_id, None)

    def ids(self) -> list:
        return sorted(self._items)

    def get(self, var_id: int):
        return self._items[var_id][0]

    def name_of(self, var_id: int) -> str:
        return self._items[var_id][1]

    def total_bytes(self) -> int:
        """Payload size of one checkpoint of this set (without headers)."""
        total = 0
        for obj, _ in self._items.values():
            if isinstance(obj, np.ndarray):
                total += obj.nbytes
            elif isinstance(obj, ScalarRef):
                total += 8
            else:
                total += len(obj)
        return total

    def __len__(self):
        return len(self._items)

    # -- encode ---------------------------------------------------------------
    def serialize(self) -> bytes:
        """All protected objects -> one checksummed blob.

        The blob is assembled in a single preallocated buffer: a sizing
        pass computes the total, then every cell packs straight into its
        slice (array payloads are copied buffer-to-buffer, never through
        an intermediate ``tobytes``).
        """
        items = [(var_id,) + self._items[var_id] for var_id in self.ids()]
        total = 10 + sum(self._encoded_size(obj) for _, obj, _ in items)
        buf = bytearray(total + 4)
        struct.pack_into("<4sHI", buf, 0, _MAGIC, _VERSION, len(items))
        offset = 10
        for var_id, obj, _ in items:
            offset = self._encode_into(buf, offset, var_id, obj)
        crc = zlib.crc32(memoryview(buf)[:total]) & 0xFFFFFFFF
        struct.pack_into("<I", buf, total, crc)
        return bytes(buf)

    @staticmethod
    def _encoded_size(obj: Any) -> int:
        if isinstance(obj, np.ndarray):
            dtype_len = len(obj.dtype.str)
            return 5 + 2 + dtype_len + 1 + 8 * obj.ndim + 8 + obj.nbytes
        if isinstance(obj, ScalarRef):
            return 5 + 8
        return 5 + 8 + len(obj)  # bytearray

    @staticmethod
    def _encode_into(buf: bytearray, offset: int, var_id: int,
                     obj: Any) -> int:
        if isinstance(obj, np.ndarray):
            dtype_name = obj.dtype.str.encode("ascii")
            shape = obj.shape
            struct.pack_into("<IBH", buf, offset, var_id, _KIND_ARRAY,
                             len(dtype_name))
            offset += 7
            buf[offset:offset + len(dtype_name)] = dtype_name
            offset += len(dtype_name)
            struct.pack_into("<B%dqQ" % len(shape), buf, offset,
                             len(shape), *shape, obj.nbytes)
            offset += 1 + 8 * len(shape) + 8
            buf[offset:offset + obj.nbytes] = \
                memoryview(np.ascontiguousarray(obj)).cast("B")
            return offset + obj.nbytes
        if isinstance(obj, ScalarRef):
            if isinstance(obj.value, (int, np.integer)):
                struct.pack_into("<IBq", buf, offset, var_id,
                                 _KIND_SCALAR_I, int(obj.value))
            else:
                struct.pack_into("<IBd", buf, offset, var_id,
                                 _KIND_SCALAR_F, float(obj.value))
            return offset + 13
        # bytearray
        struct.pack_into("<IBQ", buf, offset, var_id, _KIND_BYTES, len(obj))
        offset += 13
        buf[offset:offset + len(obj)] = obj
        return offset + len(obj)

    # -- decode ------------------------------------------------------------------
    def deserialize_into(self, blob: bytes) -> list:
        """Restore protected objects in place from ``blob``.

        Returns the list of restored var ids. Raises
        :class:`CorruptCheckpointError` on checksum or format mismatch.
        """
        if len(blob) < 14:
            raise CorruptCheckpointError("blob too short to be a checkpoint")
        view = memoryview(blob)
        body, crc_bytes = view[:-4], view[-4:]
        (expected_crc,) = struct.unpack("<I", crc_bytes)
        if (zlib.crc32(body) & 0xFFFFFFFF) != expected_crc:
            raise CorruptCheckpointError("checkpoint CRC mismatch")
        magic, version, count = struct.unpack_from("<4sHI", body, 0)
        if magic != _MAGIC or version != _VERSION:
            raise CorruptCheckpointError("bad checkpoint header")
        offset = 10
        restored = []
        for _ in range(count):
            var_id, offset = self._decode_one(body, offset)
            restored.append(var_id)
        return restored

    def _decode_one(self, body, offset: int) -> tuple:
        var_id, kind = struct.unpack_from("<IB", body, offset)
        offset += 5
        if var_id not in self._items:
            raise CorruptCheckpointError(
                "checkpoint contains unprotected var id %d" % var_id)
        obj = self._items[var_id][0]
        if kind == _KIND_ARRAY:
            (dtype_len,) = struct.unpack_from("<H", body, offset)
            offset += 2
            dtype = np.dtype(
                bytes(body[offset:offset + dtype_len]).decode("ascii"))
            offset += dtype_len
            (ndim,) = struct.unpack_from("<B", body, offset)
            offset += 1
            shape = struct.unpack_from("<%dq" % ndim, body, offset)
            offset += 8 * ndim
            (nbytes,) = struct.unpack_from("<Q", body, offset)
            offset += 8
            data = np.frombuffer(body[offset:offset + nbytes], dtype=dtype)
            offset += nbytes
            if not isinstance(obj, np.ndarray):
                raise CorruptCheckpointError(
                    "var %d kind mismatch (array vs %s)"
                    % (var_id, type(obj).__name__))
            if tuple(shape) != obj.shape or dtype != obj.dtype:
                raise CorruptCheckpointError(
                    "var %d layout changed since checkpoint "
                    "(%s %s -> %s %s)" % (var_id, shape, dtype,
                                          obj.shape, obj.dtype))
            obj[...] = data.reshape(shape)
        elif kind == _KIND_SCALAR_I:
            (value,) = struct.unpack_from("<q", body, offset)
            offset += 8
            self._expect_scalar(var_id, obj).value = value
        elif kind == _KIND_SCALAR_F:
            (value,) = struct.unpack_from("<d", body, offset)
            offset += 8
            self._expect_scalar(var_id, obj).value = value
        elif kind == _KIND_BYTES:
            (nbytes,) = struct.unpack_from("<Q", body, offset)
            offset += 8
            data = body[offset:offset + nbytes]
            offset += nbytes
            if not isinstance(obj, bytearray):
                raise CorruptCheckpointError("var %d expected bytearray"
                                             % var_id)
            obj[:] = data
        else:
            raise CorruptCheckpointError("unknown kind byte %d" % kind)
        return var_id, offset

    @staticmethod
    def _expect_scalar(var_id: int, obj) -> ScalarRef:
        if not isinstance(obj, ScalarRef):
            raise CorruptCheckpointError(
                "var %d kind mismatch (scalar vs %s)"
                % (var_id, type(obj).__name__))
        return obj
