"""The four FTI reliability levels as write/read strategies.

Each strategy is a pair of generator methods driven by the per-rank FTI
instance: ``write`` persists one rank's blob (charging storage and network
time on that rank's virtual clock) and ``read`` retrieves it at recovery,
falling back to redundancy when the primary copy is gone.

* **L1** — blob on the local node's RAMFS (or SSD). Dies with the node.
* **L2** — L1 plus a full copy on the ring-neighbour node.
* **L3** — L1 plus Reed-Solomon parity across a group of ranks: the group
  survives the loss of half its nodes.
* **L4** — flush to the parallel file system, optionally differential.
"""

from __future__ import annotations

import hashlib

from .config import MEMCPY_BANDWIDTH_SHARE
from .metadata import CheckpointRegistry, RankEntry
from .rs_encoding import pad_to_equal_length, rs_code
from ..errors import (
    CorruptCheckpointError,
    InsufficientRedundancyError,
    NoCheckpointError,
)


def _local_store(fti):
    storage = fti.cluster.node_storage[fti.node_id]
    return storage.ssd if fti.config.use_ssd else storage.ramfs


def _blob_path(fti, ckpt_id: int, rank: int) -> str:
    return "fti/ckpt%06d/rank%05d.fti" % (ckpt_id, rank)


class L1Local:
    """Level 1: node-local checkpoint (the paper's evaluated mode)."""

    level = 1

    # -- nominal-volume cost models (capped-execution inflation) ---------
    def _local_bandwidth(self, fti) -> float:
        spec = fti.cluster.node_spec
        return spec.ssd_bandwidth if fti.config.use_ssd \
            else spec.ramfs_bandwidth

    def nominal_write_seconds(self, fti, nbytes: int) -> float:
        """Modeled write time for a nominal-size blob at this level."""
        return nbytes / self._local_bandwidth(fti) * fti._memory_contention()

    def nominal_read_seconds(self, fti, nbytes: int) -> float:
        return nbytes / self._local_bandwidth(fti) * fti._memory_contention()

    def write(self, fti, mpi, blob: bytes, record):
        store = _local_store(fti)
        path = _blob_path(fti, record.ckpt_id, mpi.rank)
        yield from mpi.store_write(store, path, blob)
        entry = RankEntry(rank=mpi.rank, node_id=fti.node_id, path=path,
                          nbytes=len(blob),
                          crc32=CheckpointRegistry.checksum(blob))
        return entry

    def read(self, fti, mpi, record):
        entry = record.entry(mpi.rank)
        store = fti.cluster.node_storage[entry.node_id]
        store = store.ssd if fti.config.use_ssd else store.ramfs
        if not store.exists(entry.path):
            raise NoCheckpointError(
                "L1 blob of rank %d lost with node %d"
                % (mpi.rank, entry.node_id))
        blob = yield from mpi.store_read(store, entry.path)
        _verify(blob, entry)
        return blob

    def delete(self, fti, record):
        entry = record.entries.get(fti.rank)
        if entry is None:
            return
        store = fti.cluster.node_storage[entry.node_id]
        store = store.ssd if fti.config.use_ssd else store.ramfs
        store.delete(entry.path)


class L2Partner(L1Local):
    """Level 2: L1 plus a copy on the partner (ring neighbour) node."""

    level = 2

    def nominal_write_seconds(self, fti, nbytes: int) -> float:
        base = L1Local.nominal_write_seconds(self, fti, nbytes)
        transfer = nbytes / fti.cluster.network.spec.beta_inter
        partner_write = nbytes / fti.cluster.node_spec.ramfs_bandwidth
        return base + transfer + partner_write

    def write(self, fti, mpi, blob: bytes, record):
        entry = yield from L1Local.write(self, fti, mpi, blob, record)
        partner = fti.cluster.partner_node(fti.node_id)
        partner_store = fti.cluster.node_storage[partner].ramfs
        partner_path = entry.path + ".partner"
        transfer = fti.cluster.network.ptp_time(len(blob), intra_node=False)
        yield from mpi.sleep(transfer)
        yield from mpi.store_write(partner_store, partner_path, blob)
        entry.partner_node = partner
        entry.partner_path = partner_path
        return entry

    def read(self, fti, mpi, record):
        try:
            blob = yield from L1Local.read(self, fti, mpi, record)
            return blob
        except (NoCheckpointError, CorruptCheckpointError):
            pass
        entry = record.entry(mpi.rank)
        partner_store = fti.cluster.node_storage[entry.partner_node].ramfs
        if not partner_store.exists(entry.partner_path):
            raise InsufficientRedundancyError(
                "both L2 copies of rank %d are gone" % mpi.rank)
        transfer = fti.cluster.network.ptp_time(entry.nbytes,
                                                intra_node=False)
        yield from mpi.sleep(transfer)
        blob = yield from mpi.store_read(partner_store, entry.partner_path)
        _verify(blob, entry)
        return blob

    def delete(self, fti, record):
        L1Local.delete(self, fti, record)
        entry = record.entries.get(fti.rank)
        if entry is not None and entry.partner_node is not None:
            self_store = fti.cluster.node_storage[entry.partner_node].ramfs
            self_store.delete(entry.partner_path)


class L3ReedSolomon(L1Local):
    """Level 3: RS(k, k) parity across a checkpoint group.

    Group ``g`` of size ``k`` holds ``k`` data shards (the blobs) and
    ``k`` parity shards, one of each per member node. Any ``k`` surviving
    shards rebuild all blobs — i.e. the group survives losing half its
    nodes, as the paper describes.
    """

    level = 3

    def nominal_write_seconds(self, fti, nbytes: int) -> float:
        base = L1Local.nominal_write_seconds(self, fti, nbytes)
        k = fti.group_comm.size
        allgather = fti.cluster.network.allgather_time(k, nbytes)
        node = fti.cluster.node_spec
        rpn = max(1, -(-fti.nprocs // fti.cluster.nnodes))
        encode = 2.0 * k * nbytes / (
            node.memory_bandwidth * MEMCPY_BANDWIDTH_SHARE / rpn)
        parity_write = nbytes / self._local_bandwidth(fti)
        return base + allgather + encode + parity_write

    def write(self, fti, mpi, blob: bytes, record):
        entry = yield from L1Local.write(self, fti, mpi, blob, record)
        group_comm = fti.group_comm
        group_ranks = group_comm.world_ranks
        k = len(group_ranks)
        blobs = yield from mpi.allgather(blob, comm=group_comm,
                                         nbytes=len(blob))
        padded, _lengths = pad_to_equal_length(blobs)
        # encode cost: touching k shards twice per parity row, vectorised
        yield from mpi.compute(bytes_moved=2.0 * k * len(padded[0]))
        code = rs_code(k, k)
        parity = code.encode(padded)
        my_index = group_comm.rank_of(mpi.rank)
        store = _local_store(fti)
        parity_path = entry.path + ".rs"
        yield from mpi.store_write(store, parity_path, parity[my_index])
        entry.parity_path = parity_path
        entry.group_index = my_index
        entry.group_ranks = tuple(group_ranks)
        entry.padded_len = len(padded[0])
        return entry

    def read(self, fti, mpi, record):
        try:
            blob = yield from L1Local.read(self, fti, mpi, record)
            return blob
        except (NoCheckpointError, CorruptCheckpointError):
            pass
        entry = record.entry(mpi.rank)
        group_ranks = entry.group_ranks
        k = len(group_ranks)
        shards: dict[int, bytes] = {}
        bytes_pulled = 0
        for member in group_ranks:
            member_entry = record.entry(member)
            idx = member_entry.group_index
            store = fti.cluster.node_storage[member_entry.node_id]
            store = store.ssd if fti.config.use_ssd else store.ramfs
            if store.exists(member_entry.path):
                raw, _ = store.read(member_entry.path)
                padded, _ = pad_to_equal_length([raw])
                shard = padded[0][:entry.padded_len]
                shard += b"\x00" * (entry.padded_len - len(shard))
                shards[idx] = shard
                bytes_pulled += len(shard)
            if (member_entry.parity_path
                    and store.exists(member_entry.parity_path)):
                raw, _ = store.read(member_entry.parity_path)
                shards[k + idx] = raw
                bytes_pulled += len(raw)
            if len(shards) >= k:
                break
        if len(shards) < k:
            raise InsufficientRedundancyError(
                "group of rank %d lost more than half its shards"
                % mpi.rank)
        transfer = fti.cluster.network.ptp_time(bytes_pulled,
                                                intra_node=False)
        yield from mpi.sleep(transfer)
        yield from mpi.compute(bytes_moved=2.0 * k * entry.padded_len)
        code = rs_code(k, k)
        data = code.decode(shards, entry.padded_len)
        mine = data[entry.group_index]
        blob = _strip_pad(mine)
        _verify(blob, entry)
        return blob

    def delete(self, fti, record):
        L1Local.delete(self, fti, record)
        entry = record.entries.get(fti.rank)
        if entry is not None and entry.parity_path is not None:
            store = fti.cluster.node_storage[entry.node_id]
            store = store.ssd if fti.config.use_ssd else store.ramfs
            store.delete(entry.parity_path)


class L4Pfs(L1Local):
    """Level 4: flush to the parallel file system; differential option.

    Differential checkpointing hashes fixed-size blocks of the blob and
    rewrites only the blocks that changed since the previous L4
    checkpoint, charging PFS time for the changed fraction only.
    """

    level = 4

    def nominal_write_seconds(self, fti, nbytes: int) -> float:
        base = L1Local.nominal_write_seconds(self, fti, nbytes)
        pfs = fti.cluster.pfs
        share = pfs.bandwidth / max(1, fti.nprocs)
        return base + nbytes / share

    def write(self, fti, mpi, blob: bytes, record):
        entry = yield from L1Local.write(self, fti, mpi, blob, record)
        pfs = fti.cluster.pfs
        pfs_path = entry.path + ".pfs"
        changed_bytes = len(blob)
        if fti.config.differential:
            changed_bytes = self._changed_bytes(fti, blob)
        pfs.write(pfs_path, blob, now=mpi.now())
        share = pfs.bandwidth / max(1, fti.nprocs)
        yield from mpi.sleep(pfs.latency + changed_bytes / share)
        entry.pfs_path = pfs_path
        return entry

    def _changed_bytes(self, fti, blob: bytes) -> int:
        block = fti.config.diff_block_bytes
        old_hashes = fti.registry.diff_hashes.setdefault(fti.rank, {})
        new_hashes, changed = {}, 0
        for index in range(0, len(blob), block):
            chunk = blob[index:index + block]
            digest = hashlib.blake2b(chunk, digest_size=16).digest()
            new_hashes[index // block] = digest
            if old_hashes.get(index // block) != digest:
                changed += len(chunk)
        fti.registry.diff_hashes[fti.rank] = new_hashes
        return changed

    def read(self, fti, mpi, record):
        try:
            blob = yield from L1Local.read(self, fti, mpi, record)
            return blob
        except (NoCheckpointError, CorruptCheckpointError):
            pass
        entry = record.entry(mpi.rank)
        pfs = fti.cluster.pfs
        if entry.pfs_path is None or not pfs.exists(entry.pfs_path):
            raise InsufficientRedundancyError(
                "rank %d has neither local nor PFS checkpoint" % mpi.rank)
        blob, duration = pfs.read_shared(entry.pfs_path, fti.nprocs)
        yield from mpi.sleep(duration)
        _verify(blob, entry)
        return blob

    def delete(self, fti, record):
        L1Local.delete(self, fti, record)
        entry = record.entries.get(fti.rank)
        if entry is not None and entry.pfs_path is not None:
            fti.cluster.pfs.delete(entry.pfs_path)


def _verify(blob: bytes, entry) -> None:
    if CheckpointRegistry.checksum(blob) != entry.crc32:
        raise CorruptCheckpointError(
            "rank %d checkpoint failed CRC verification" % entry.rank)


def _strip_pad(padded: bytes) -> bytes:
    """Undo :func:`pad_to_equal_length`: drop trailing zeros and the 0x80."""
    end = len(padded) - 1
    while end >= 0 and padded[end] == 0:
        end -= 1
    if end < 0 or padded[end] != 0x80:
        raise CorruptCheckpointError("RS-decoded blob has a corrupt pad")
    return padded[:end]


LEVELS = {1: L1Local, 2: L2Partner, 3: L3ReedSolomon, 4: L4Pfs}
