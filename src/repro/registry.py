"""Uniform registry framework: the repo's extension points.

Every pluggable axis of the benchmark suite — proxy applications,
recovery designs, fault-scenario kinds, result-store backends and
report renderers — is a named :class:`Registry`. A new workload or
scenario kind is a self-registering module: import it (directly, or via
``Campaign.plugins()``) and its ``@register(...)`` decorations make it
available everywhere a built-in would be, with no core edits.

Quick tour::

    from repro.registry import register, registry

    @register("app", "toy")            # by kind name ...
    class Toy(ProxyApp): ...

    from repro.faults.scenarios import SCENARIOS

    @SCENARIOS.register("stride")      # ... or on the registry object
    class StrideKind(ScenarioKind): ...

    registry("app").names()            # ('amg', ..., 'toy')

The eight built-in registries live in their natural modules (importing
a registry never drags in unrelated subsystems):

=========== ================================= ===========================
kind         module                            registry object
=========== ================================= ===========================
app          :mod:`repro.apps`                 ``APP_REGISTRY``
design       :mod:`repro.core.designs`         ``DESIGNS``
scenario     :mod:`repro.faults.scenarios`     ``SCENARIOS``
store        :mod:`repro.core.store`           ``STORES``
renderer     :mod:`repro.core.report`          ``RENDERERS``
model        :mod:`repro.modeling.costs`       ``MODELS``
lint-rule    :mod:`repro.analysis.rules`       ``LINT_RULES``
strategy     :mod:`repro.explore.strategies`   ``STRATEGIES``
=========== ================================= ===========================

Registrations are per-process. Parallel campaign workers are fresh
``spawn`` interpreters, so plugin modules must be importable by name and
passed via :meth:`repro.api.Campaign.plugins` (the engine re-imports
them in every worker). See docs/API.md for the end-to-end recipe.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Callable

from .errors import ConfigurationError

#: where each built-in registry kind is defined; importing the module
#: (lazily, in :func:`registry`) creates and populates the registry
_BUILTIN_MODULES = {
    "app": "repro.apps",
    "design": "repro.core.designs",
    "scenario": "repro.faults.scenarios",
    "store": "repro.core.store",
    "renderer": "repro.core.report",
    "model": "repro.modeling.costs",
    "lint-rule": "repro.analysis.rules",
    "strategy": "repro.explore.strategies",
}

#: kind -> Registry, populated as Registry instances are constructed
_CATALOG: dict = {}


class Registry(Mapping):
    """A named mapping of string keys to registered extension objects.

    Behaves as a read-only :class:`~collections.abc.Mapping` (so legacy
    idioms like ``name in APP_REGISTRY``, ``sorted(APP_REGISTRY)`` and
    ``APP_REGISTRY[name]`` keep working verbatim), plus:

    * :meth:`register` — decorator (or direct call via :meth:`add`)
      that adds an entry; duplicate names raise unless ``replace=True``.
    * :meth:`resolve` (and ``[]`` indexing) — lookup raising
      :class:`ConfigurationError` that names the known entries, so a
      typo'd CLI flag or config field produces an actionable message
      instead of a ``KeyError``. (:meth:`get` keeps the standard
      ``Mapping.get`` return-a-default semantics.)

    ``instantiate=True`` stores ``cls()`` when a class is registered —
    used for scenario kinds, whose hooks are instance methods.
    ``validate`` is an optional ``(name, obj) -> None`` protocol check
    run at registration time, so a plugin missing a required hook fails
    at import, not mid-campaign.
    """

    def __init__(self, kind: str, instantiate: bool = False,
                 validate: "Callable[[str, Any], None] | None" = None,
                 noun: str | None = None) -> None:
        if kind in _CATALOG:
            # silently replacing the catalog entry would hijack
            # register()/registry() away from the registry the rest of
            # the code validates against
            raise ConfigurationError(
                "a registry of kind %r already exists; use "
                "repro.registry.registry(%r) to get it" % (kind, kind))
        self.kind = kind
        #: how entries are described in error messages ("store backend"
        #: reads better than "store"); defaults to the kind itself
        self.noun = noun or kind
        self._instantiate = instantiate
        self._validate = validate
        self._entries: dict = {}
        _CATALOG[kind] = self

    # -- registration -------------------------------------------------------
    def register(self, name: str | None = None, *,
                 replace: bool = False) -> "Callable[[Any], Any]":
        """Decorator form: ``@REG.register("name")`` (or bare
        ``@REG.register()`` to use the object's ``name`` attribute)."""
        def decorate(obj):
            self.add(self._derive_name(name, obj), obj, replace=replace)
            return obj
        return decorate

    def add(self, name: str, obj, *, replace: bool = False) -> None:
        """Direct registration (the decorator's workhorse)."""
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                "%s registration needs a non-empty string name (got %r)"
                % (self.noun, name))
        if name in self._entries and not replace:
            raise ConfigurationError(
                "%s %r is already registered; pass replace=True to "
                "override it deliberately" % (self.noun, name))
        value = obj() if self._instantiate and isinstance(obj, type) \
            else obj
        if self._validate is not None:
            self._validate(name, value)
        self._entries[name] = value

    def unregister(self, name: str) -> None:
        """Remove an entry (primarily for test teardown)."""
        if name not in self._entries:
            raise ConfigurationError(
                "cannot unregister unknown %s %r" % (self.noun, name))
        del self._entries[name]

    @staticmethod
    def _derive_name(name, obj):
        if name is not None:
            return name
        derived = getattr(obj, "name", None)
        if isinstance(derived, str) and derived:
            return derived
        return getattr(obj, "__name__", "").lower()

    # -- lookup -------------------------------------------------------------
    def resolve(self, name: str) -> Any:
        """The entry for ``name``; unknown names raise a
        :class:`ConfigurationError` listing what is registered.

        (``[]`` indexing does the same; :meth:`get` keeps the standard
        ``Mapping.get`` return-a-default semantics.)
        """
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                "unknown %s %r (have %s)"
                % (self.noun, name, sorted(self._entries))) from None

    def get(self, name: str, default: Any = None) -> Any:
        """Standard ``Mapping.get``: the entry, or ``default`` when
        ``name`` is not registered (never raises)."""
        return self._entries.get(name, default)

    def names(self) -> tuple[str, ...]:
        """Registered names in registration order."""
        return tuple(self._entries)

    # -- Mapping protocol ---------------------------------------------------
    def __getitem__(self, name):
        return self.resolve(name)

    def __contains__(self, name):
        # Mapping's default __contains__ expects KeyError from
        # __getitem__; ours raises ConfigurationError, so membership
        # must consult the entries directly
        return name in self._entries

    def __iter__(self):
        return iter(self._entries)

    def __len__(self):
        return len(self._entries)

    def __repr__(self):
        return "Registry(%r, %d entries)" % (self.kind, len(self._entries))


def registry(kind: str) -> Registry:
    """The registry for ``kind``, importing its owning module on first
    use so ``repro.registry`` stays dependency-free."""
    if kind not in _CATALOG and kind in _BUILTIN_MODULES:
        import importlib

        importlib.import_module(_BUILTIN_MODULES[kind])
    try:
        return _CATALOG[kind]
    except KeyError:
        raise ConfigurationError(
            "unknown registry kind %r (have %s)"
            % (kind, sorted(set(_CATALOG) | set(_BUILTIN_MODULES)))) \
            from None


def register(kind: str, name: str | None = None, *,
             replace: bool = False) -> "Callable[[Any], Any]":
    """Top-level decorator: ``@register("app", "toy")`` == looking up
    the ``app`` registry and calling its :meth:`Registry.register`."""
    return registry(kind).register(name, replace=replace)


def registry_kinds() -> tuple[str, ...]:
    """Every known registry kind (built-in or plugin-created)."""
    return tuple(sorted(set(_CATALOG) | set(_BUILTIN_MODULES)))


__all__ = [
    "Registry",
    "register",
    "registry",
    "registry_kinds",
]
