"""Plain Restart recovery: the baseline design (RESTART-FTI).

On a process failure the default FATAL error handler aborts the job; the
batch system then redeploys the whole thing with ``mpirun`` and the
application resumes from its last FTI checkpoint. The recovery cost is
the launcher's full redeployment time — which is why the paper finds
Restart ~16x slower to recover than Reinit (§V-C).
"""

from __future__ import annotations

from .base import RecoveryStrategy
from ..cluster.machine import Cluster


class RestartRecovery(RecoveryStrategy):
    """Job teardown + full redeployment."""

    name = "restart"

    def __init__(self, cluster: Cluster):
        super().__init__()
        self.cluster = cluster

    def redeploy_time(self, nprocs: int) -> float:
        """Seconds to relaunch the job after an abort."""
        return self.cluster.launcher.launch_time(nprocs, self.cluster.nnodes)

    def on_abort(self, nprocs: int) -> float:
        """Record one restart episode; returns its duration."""
        duration = self.redeploy_time(nprocs)
        self.cluster.launcher.record_launch()
        self.stats.record(duration)
        return duration
