"""MPI recovery frameworks: Restart, Reinit and ULFM (paper §II-D)."""

from .base import RecoveryStats, RecoveryStrategy
from .heartbeat import HeartbeatTradeoff, heartbeat_tradeoff
from .reinit import ReinitRecovery, ReinitSpec
from .restart import RestartRecovery
from .ulfm import RECOVERY_TRIGGERS, UlfmRecovery

__all__ = [
    "HeartbeatTradeoff",
    "RECOVERY_TRIGGERS",
    "RecoveryStats",
    "RecoveryStrategy",
    "ReinitRecovery",
    "ReinitSpec",
    "RestartRecovery",
    "UlfmRecovery",
    "heartbeat_tradeoff",
]
