"""Reinit recovery: runtime-level global restart (REINIT-FTI).

Reinit (Georgakoudis et al., ISC 2020) repairs MPI state *inside the
runtime*: when a failure is detected, every surviving process is rolled
back to the registered restart point (``resilient_main``), the failed
process is re-forked by the local daemon, and the world communicator is
rebuilt — no job teardown, no application-level protocol. Its cost is a
small constant (daemon-local respawn plus a log-depth runtime barrier),
which is exactly why the paper finds it independent of both scaling size
and input size (Figs. 7, 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import RecoveryStrategy
from ..cluster.machine import Cluster


@dataclass(frozen=True)
class ReinitSpec:
    """Cost parameters of the in-runtime global-restart protocol."""

    #: local daemon re-forks the failed process
    respawn_seconds: float = 0.7
    #: runtime-internal barrier/reset wave across daemons (per tree level)
    reset_per_level: float = 0.018

    def cost(self, nnodes: int) -> float:
        levels = math.ceil(math.log2(max(2, nnodes)))
        return self.respawn_seconds + levels * self.reset_per_level


class ReinitRecovery(RecoveryStrategy):
    """Installs an ``on_global_failure`` hook on the runtime."""

    name = "reinit"

    def __init__(self, cluster: Cluster, spec: ReinitSpec | None = None):
        super().__init__()
        self.cluster = cluster
        self.spec = spec or ReinitSpec()

    def recovery_time(self) -> float:
        return self.spec.cost(self.cluster.nnodes)

    def install(self, runtime) -> None:
        """Attach this strategy to a runtime as its global-failure hook."""
        runtime.on_global_failure = self.on_global_failure

    def on_global_failure(self, runtime, when: float, failed_ranks) -> None:
        """The OMPI_Reinit reaction: roll every rank back to the restart
        point at ``detection time + protocol cost``."""
        cost = self.recovery_time()
        # survivors that were still computing are interrupted at their next
        # MPI call; the restart wave completes after the slowest of them
        restart_at = max(when, runtime.clock.global_now()) + cost
        self.stats.record(restart_at - when)
        hook = runtime.phase_hook
        if hook is not None:
            hook.span(-1, "reinit.rollback", when, restart_at)
        runtime.global_restart(restart_at)
