"""Reference implementation of log-tree fault-tolerant agreement.

``MPIX_Comm_agree`` performs a bitwise-AND agreement that must terminate
even across failures (Herault et al., SC'15). The runtime prices the
operation with a closed-form cost; this module implements the actual
two-phase tree algorithm over point-to-point messages so tests can check
the runtime's semantics (result equivalence) and the cost model's shape
(message count) against a concrete protocol.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError


def tree_children(rank: int, size: int) -> list:
    """Children of ``rank`` in a binary reduction tree of ``size``."""
    if not 0 <= rank < size:
        raise ConfigurationError("rank %d outside tree of %d" % (rank, size))
    kids = [2 * rank + 1, 2 * rank + 2]
    return [k for k in kids if k < size]


def tree_parent(rank: int) -> int:
    """Parent of ``rank``; the root (0) is its own parent."""
    return 0 if rank == 0 else (rank - 1) // 2


def agreement_message_count(size: int) -> int:
    """Messages a two-phase (reduce + bcast) tree agreement sends."""
    return 2 * (size - 1)


def agreement_rounds(size: int) -> int:
    """Critical-path rounds: up the tree and back down."""
    return 2 * math.ceil(math.log2(max(2, size)))


def simulate_agreement(flags: dict) -> int:
    """Run the two-phase AND-agreement over an explicit message table.

    ``flags`` maps rank -> contributed flag. Returns the agreed value,
    computed exactly as the tree protocol would: reduce towards the
    root, then broadcast the result.
    """
    size = len(flags)
    if size == 0:
        raise ConfigurationError("agreement needs at least one rank")
    reduced = dict(flags)
    # post-order reduction: process ranks from the highest downwards so
    # children fold into parents before parents fold upwards
    for rank in range(size - 1, 0, -1):
        parent = tree_parent(rank)
        reduced[parent] &= reduced[rank]
    return reduced[0]


def agree(mpi, comm, flag: int):
    """Generator: a real tree agreement over p2p messages (for tests).

    Functionally equivalent to ``mpi.comm_agree`` but exercises the
    point-to-point layer; useful to validate the built-in op and to
    measure protocol message counts.
    """
    my = comm.rank_of(mpi.rank)
    size = comm.size
    value = int(flag)
    for child in tree_children(my, size):
        payload, _ = yield from mpi.recv(comm.world_rank(child), tag=0xA6EE)
        value &= payload
    if my != 0:
        parent_world = comm.world_rank(tree_parent(my))
        yield from mpi.send(parent_world, value, tag=0xA6EE)
        agreed, _ = yield from mpi.recv(parent_world, tag=0xA6EF)
    else:
        agreed = value
    for child in tree_children(my, size):
        yield from mpi.send(comm.world_rank(child), agreed, tag=0xA6EF)
    return agreed
