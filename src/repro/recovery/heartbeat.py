"""ULFM's background failure detector (heartbeats) and its costs.

ULFM ships an always-on heartbeat-ring detector (Bosilca et al., IJHPCA
2018). Two observable consequences, both reproduced here:

* **detection latency** — a failure is observed only after a timeout of
  missed beats plus a log-depth propagation wave; modelled by
  :class:`~repro.simmpi.failures.FailureDetector`.
* **steady-state overhead** — servicing beats and running interposed,
  revocation-aware communication calls taxes every application operation;
  modelled by :class:`~repro.simmpi.overhead.UlfmOverheadModel` and
  applied by the runtime to compute and communication pricing.

This module re-exports both so recovery-level code has one import point,
and provides the ablation helper used by the heartbeat benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simmpi.failures import DetectorSpec, FailureDetector
from ..simmpi.overhead import UlfmOverheadModel


@dataclass(frozen=True)
class HeartbeatTradeoff:
    """One point in the detector's overhead-vs-latency design space."""

    heartbeat_period: float
    detection_latency: float
    compute_overhead_factor: float


def heartbeat_tradeoff(period: float, nprocs: int,
                       timeout_beats: int = 3) -> HeartbeatTradeoff:
    """Evaluate a heartbeat period: faster beats detect failures sooner
    but tax the application more (inverse scaling with the period)."""
    spec = DetectorSpec(heartbeat_period=period, timeout_beats=timeout_beats)
    detector = FailureDetector(spec)
    # overhead scales inversely with the beat period, anchored at 100 ms
    base = UlfmOverheadModel()
    scale = 0.1 / period
    model = UlfmOverheadModel(
        compute_tax_per_log2p=base.compute_tax_per_log2p * scale)
    return HeartbeatTradeoff(
        heartbeat_period=period,
        detection_latency=detector.detection_latency(nprocs),
        compute_overhead_factor=model.compute_factor(nprocs),
    )


__all__ = ["DetectorSpec", "FailureDetector", "HeartbeatTradeoff",
           "UlfmOverheadModel", "heartbeat_tradeoff"]
