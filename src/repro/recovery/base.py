"""Common interface for the three MPI recovery strategies.

A recovery strategy owns the job-level control flow: how a job reacts to
a process failure (teardown + redeploy, runtime-level global restart, or
application-level communicator repair) and how much virtual time each
reaction costs. Per-rank protocol code lives in the strategy's
``rank_*`` helpers and is driven from the design wrappers in
:mod:`repro.core.designs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RecoveryStats:
    """Accounting of every recovery episode in one experiment run."""

    #: total seconds spent repairing MPI state (the paper's "Recovery" bar)
    recovery_seconds: float = 0.0
    #: number of recovery episodes (one per injected failure)
    episodes: int = 0
    #: per-episode durations for distribution-style analysis
    durations: list = field(default_factory=list)

    def record(self, seconds: float) -> None:
        self.recovery_seconds += seconds
        self.episodes += 1
        self.durations.append(seconds)


class RecoveryStrategy:
    """Base class; concrete strategies override the hooks they need."""

    name = "base"

    def __init__(self):
        self.stats = RecoveryStats()

    def reset_stats(self) -> None:
        self.stats = RecoveryStats()
