"""ULFM global non-shrinking recovery (ULFM-FTI), the paper's Figure 3.

The per-rank protocol, executed at application level by every survivor
when a failure surfaces as an exception:

1. ``MPIX_Comm_revoke(world)`` — interrupt all pending communication;
2. ``MPIX_Comm_shrink(world)`` — survivors agree on a failure-free comm;
3. ``MPI_Comm_spawn`` — replace every failed process;
4. ``MPI_Intercomm_merge`` — splice replacements back in, world order;
5. ``MPIX_Comm_agree`` — all ranks agree recovery succeeded.

A freshly spawned replacement joins at step 4 (through the parent
intercomm) and participates in step 5. The repaired communicator is then
swapped in as the world — the paper's ``worldc[worldi]`` global swap —
so FTI immediately uses it.

Every step is a collective whose cost grows with the process count,
which is the mechanistic reason ULFM recovery does not scale (Fig. 7).
"""

from __future__ import annotations

from .base import RecoveryStrategy
from ..errors import CommRevokedError, MPIError, ProcessFailedError
from ..simmpi.errhandler import ErrHandler
from ..simmpi.overhead import UlfmOverheadModel

#: exception types that route a rank into the recovery protocol
RECOVERY_TRIGGERS = (ProcessFailedError, CommRevokedError)


class UlfmRecovery(RecoveryStrategy):
    """Application-level revoke/shrink/spawn/merge/agree recovery."""

    name = "ulfm"
    errhandler = ErrHandler.RETURN

    def __init__(self, overhead: UlfmOverheadModel | None = None):
        super().__init__()
        self.overhead = overhead or UlfmOverheadModel()
        #: (start, end, is_replacement) per participating rank; used to
        #: compute the episode's critical-path protocol time
        self.intervals: list = []

    def episode_list(self) -> list:
        """Per-failure recovery durations, from the recorded intervals.

        Intervals are clustered into episodes by overlap (two repair
        waves never overlap in time: the job only resumes once a repair
        completes). Each episode's duration runs from the moment its
        *last survivor* enters repair until its last rank finishes.

        Survivors that detect the failure early (e.g. the victim's halo
        neighbours) spend extra time *waiting* inside the shrink
        rendezvous for peers still computing; that wait is interrupted
        application work, not recovery — excluding it reproduces the
        paper's observation that recovery time is input-size independent
        (Fig. 10).
        """
        if not self.intervals:
            return []
        items = sorted(self.intervals)
        clusters, current = [], [items[0]]
        cluster_end = items[0][1]
        for interval in items[1:]:
            if interval[0] > cluster_end:
                clusters.append(current)
                current = [interval]
            else:
                current.append(interval)
            cluster_end = max(cluster_end, interval[1])
        clusters.append(current)
        durations = []
        for cluster in clusters:
            survivor_starts = [s for s, _, is_replacement in cluster
                               if not is_replacement]
            starts = survivor_starts or [s for s, _, _ in cluster]
            end = max(e for _, e, _ in cluster)
            durations.append(end - max(starts))
        return durations

    def episode_seconds(self) -> float:
        """Total recovery seconds across all episodes."""
        return sum(self.episode_list())

    def clear_intervals(self) -> None:
        self.intervals = []

    # -- per-rank protocol -------------------------------------------------
    def survivor_repair(self, mpi):
        """Steps 1-5 for a survivor; returns the repaired world comm."""
        t0 = mpi.now()
        world = mpi.world
        mpi.phase_enter("ulfm.revoke")
        if not world.revoked:
            yield from mpi.comm_revoke(world)
        mpi.phase_exit("ulfm.revoke")
        mpi.phase_enter("ulfm.shrink")
        shrunk = yield from mpi.comm_shrink(world)
        mpi.phase_exit("ulfm.shrink")
        mpi.phase_enter("ulfm.spawn")
        yield from mpi.comm_spawn(shrunk)
        mpi.phase_exit("ulfm.spawn")
        mpi.phase_enter("ulfm.merge")
        merged = yield from mpi.intercomm_merge(shrunk)
        mpi.phase_exit("ulfm.merge")
        mpi.phase_enter("ulfm.agree")
        agreed = yield from mpi.comm_agree(merged, 1)
        mpi.phase_exit("ulfm.agree")
        if not agreed:
            raise MPIError("ULFM agreement failed after repair")
        mpi.set_world(merged)
        self.stats.record(mpi.now() - t0)
        self.intervals.append((t0, mpi.now(), False))
        return merged

    def shrinking_repair(self, mpi):
        """ULFM *shrinking* recovery: continue with the survivors only.

        The paper evaluates non-shrinking recovery (it fits BSP apps) and
        names shrinking recovery as the natural extension (§V-E). Steps:
        revoke, shrink, agree — no spawn/merge, so it is cheaper, but the
        application must redistribute the dead ranks' work itself.
        Returns the shrunk communicator, installed as the new world.
        """
        t0 = mpi.now()
        world = mpi.world
        if not world.revoked:
            yield from mpi.comm_revoke(world)
        shrunk = yield from mpi.comm_shrink(world)
        agreed = yield from mpi.comm_agree(shrunk, 1)
        if not agreed:
            raise MPIError("ULFM agreement failed after shrink")
        mpi.set_world(shrunk)
        self.stats.record(mpi.now() - t0)
        self.intervals.append((t0, mpi.now(), False))
        return shrunk

    def replacement_join(self, mpi):
        """Steps 4-5 for a freshly spawned replacement process."""
        t0 = mpi.now()
        mpi.phase_enter("ulfm.merge")
        merged = yield from mpi.intercomm_merge(None)
        mpi.phase_exit("ulfm.merge")
        mpi.phase_enter("ulfm.agree")
        agreed = yield from mpi.comm_agree(merged, 1)
        mpi.phase_exit("ulfm.agree")
        if not agreed:
            raise MPIError("ULFM agreement failed after respawn")
        mpi.set_world(merged)
        self.stats.record(mpi.now() - t0)
        self.intervals.append((t0, mpi.now(), True))
        return merged
