"""Command-line entry point: run MATCH experiments from a shell.

Examples::

    match-bench table1
    match-bench run --app hpccg --design reinit-fti --nprocs 64 --fault
    match-bench figure --id 7 --app hpccg
"""

from __future__ import annotations

import argparse
import sys

from .core.configs import (
    DESIGN_NAMES,
    INPUT_SIZES,
    ExperimentConfig,
    valid_proc_counts,
)
from .core.harness import run_experiment_averaged
from .core.report import (
    format_breakdown_series,
    format_recovery_series,
    format_table1,
)


def _cmd_table1(_args) -> int:
    print(format_table1())
    return 0


def _cmd_run(args) -> int:
    config = ExperimentConfig(
        app=args.app, design=args.design, nprocs=args.nprocs,
        input_size=args.input, inject_fault=args.fault, seed=args.seed)
    result = run_experiment_averaged(config, repetitions=args.reps)
    print(config.label())
    print("  " + str(result.breakdown))
    print("  verified: %s over %d repetition(s)"
          % (result.verified, result.repetitions))
    return 0


def _cmd_figure(args) -> int:
    fig = args.id
    app = args.app
    if fig in (5, 6, 7):
        xs = valid_proc_counts(app)
        rows = []
        for nprocs in xs:
            for design in DESIGN_NAMES:
                config = ExperimentConfig(
                    app=app, design=design, nprocs=nprocs,
                    inject_fault=fig in (6, 7))
                res = run_experiment_averaged(config, repetitions=args.reps)
                rows.append((nprocs, design,
                             res.breakdown.recovery_seconds if fig == 7
                             else res.breakdown))
        if fig == 7:
            print(format_recovery_series("Figure 7 (%s)" % app, rows))
        else:
            print(format_breakdown_series("Figure %d (%s)" % (fig, app),
                                          rows))
    elif fig in (8, 9, 10):
        rows = []
        for input_size in INPUT_SIZES:
            for design in DESIGN_NAMES:
                config = ExperimentConfig(
                    app=app, design=design, nprocs=64,
                    input_size=input_size, inject_fault=fig in (9, 10))
                res = run_experiment_averaged(config, repetitions=args.reps)
                rows.append((input_size, design,
                             res.breakdown.recovery_seconds if fig == 10
                             else res.breakdown))
        if fig == 10:
            print(format_recovery_series("Figure 10 (%s)" % app, rows,
                                         x_label="Input"))
        else:
            print(format_breakdown_series("Figure %d (%s)" % (fig, app),
                                          rows, x_label="Input"))
    else:
        print("unknown figure id %d (have 5-10)" % fig, file=sys.stderr)
        return 2
    return 0


def _cmd_campaign(args) -> int:
    from .core.campaign import run_campaign

    config = ExperimentConfig(
        app=args.app, design=args.design, nprocs=args.nprocs,
        input_size=args.input, inject_fault=True, seed=args.seed)
    campaign = run_campaign(config, runs=args.runs)
    print(campaign.report())
    return 0


def _cmd_chart(args) -> int:
    from .core.charts import figure_chart

    cells = []
    for nprocs in valid_proc_counts(args.app):
        for design in DESIGN_NAMES:
            config = ExperimentConfig(app=args.app, design=design,
                                      nprocs=nprocs,
                                      inject_fault=args.fault)
            res = run_experiment_averaged(config, repetitions=args.reps)
            cells.append((nprocs, design, res.breakdown))
    print(figure_chart("%s: breakdown by scaling size%s"
                       % (args.app, " (with failure)" if args.fault else ""),
                       cells))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="match-bench",
        description="MATCH MPI fault-tolerance benchmark suite "
                    "(IISWC 2020 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I").set_defaults(
        func=_cmd_table1)

    run_p = sub.add_parser("run", help="run one configuration")
    run_p.add_argument("--app", required=True)
    run_p.add_argument("--design", required=True, choices=DESIGN_NAMES)
    run_p.add_argument("--nprocs", type=int, default=64)
    run_p.add_argument("--input", default="small", choices=INPUT_SIZES)
    run_p.add_argument("--fault", action="store_true")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--reps", type=int, default=None)
    run_p.set_defaults(func=_cmd_run)

    fig_p = sub.add_parser("figure", help="regenerate one figure's series")
    fig_p.add_argument("--id", type=int, required=True)
    fig_p.add_argument("--app", default="hpccg")
    fig_p.add_argument("--reps", type=int, default=None)
    fig_p.set_defaults(func=_cmd_figure)

    camp_p = sub.add_parser("campaign",
                            help="fault-injection campaign statistics")
    camp_p.add_argument("--app", required=True)
    camp_p.add_argument("--design", required=True, choices=DESIGN_NAMES)
    camp_p.add_argument("--nprocs", type=int, default=64)
    camp_p.add_argument("--input", default="small", choices=INPUT_SIZES)
    camp_p.add_argument("--runs", type=int, default=10)
    camp_p.add_argument("--seed", type=int, default=0)
    camp_p.set_defaults(func=_cmd_campaign)

    chart_p = sub.add_parser("chart",
                             help="ASCII stacked-bar chart of a figure")
    chart_p.add_argument("--app", default="hpccg")
    chart_p.add_argument("--fault", action="store_true")
    chart_p.add_argument("--reps", type=int, default=None)
    chart_p.set_defaults(func=_cmd_chart)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
