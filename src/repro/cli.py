"""Command-line entry point: run MATCH experiments from a shell.

Every command is a thin adapter over the :mod:`repro.api` facade: it
parses flags into a :class:`repro.api.Campaign`, executes through a
:class:`repro.api.Session` (consuming the typed event stream — pass
``--progress`` to ``campaign`` to watch it live), and renders with the
registered report renderers.

Examples::

    match-bench table1
    match-bench run --app hpccg --design reinit-fti --nprocs 64 \
        --faults single
    match-bench campaign --app minivite,hpccg --design all --nprocs 8 \
        --nnodes 4 --runs 10 --jobs 4 --progress
    match-bench figure --id 7 --app hpccg
    match-bench advise --app hpccg --nprocs 512 --mtbf 4h
    match-bench model-validate --app hpccg --nprocs 64,256
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings

from .core.configs import (
    DESIGN_NAMES,
    INPUT_SIZES,
    NNODES,
    valid_proc_counts,
)
from .core.report import (
    format_breakdown_series,
    format_recovery_series,
    format_table1,
)
from .errors import ConfigurationError


def _cmd_table1(_args) -> int:
    print(format_table1())
    return 0


def _base_campaign(args):
    """The Campaign fields shared by every experiment-running command."""
    from .api import Campaign

    campaign = Campaign()
    if getattr(args, "fti_level", None) is not None:
        campaign = campaign.fti(level=args.fti_level)
    if getattr(args, "seed", None) is not None:
        campaign = campaign.seed(args.seed)
    if getattr(args, "nnodes", None) is not None:
        campaign = campaign.nnodes(args.nnodes)
    if getattr(args, "interval", None) is not None:
        campaign = campaign.interval(_parse_interval(args.interval))
    return campaign


def _parse_interval(value):
    """CLI ``--interval`` values: an int stride or the string 'auto'."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise ConfigurationError(
            "--interval takes an integer stride or 'auto' (got %r)"
            % (value,))


def _run_config(args):
    """The single config the ``run`` command describes.

    ``--fault`` is the deprecated alias for ``--faults single`` — it is
    routed through the scenario spec so the CLI has exactly one
    fault-spec path, and contradictions (``--fault --faults none``)
    still fail loudly.
    """
    faults = args.faults
    if args.fault:
        # stderr print for real CLI users (default warning filters
        # suppress DeprecationWarning outside __main__); warnings.warn
        # for programmatic callers and tests
        print("warning: --fault is deprecated; use --faults single",
              file=sys.stderr)
        warnings.warn(
            "--fault is deprecated; use --faults single",
            DeprecationWarning, stacklevel=2)
        if faults is None:
            faults = "single"
    campaign = (_base_campaign(args).apps(args.app).designs(args.design)
                .nprocs(args.nprocs).inputs(args.input).faults(faults))
    config = campaign.configs()[0]
    if args.fault and not config.inject_fault:
        raise ConfigurationError(
            "--fault contradicts the non-injecting --faults %r scenario; "
            "drop one of the two" % (args.faults,))
    return config


def _cmd_run(args) -> int:
    from .api import run_averaged

    config = _run_config(args)
    result = run_averaged(config, args.reps)
    print(config.label())
    print("  " + str(result.breakdown))
    print("  verified: %s over %d repetition(s)"
          % (result.verified, result.repetitions))
    if config.inject_fault:
        for run in result.runs:
            print("  faults: %s"
                  % (", ".join("r%d@i%d%s"
                               % (e.rank, e.iteration,
                                  "(node)" if e.kind == "node" else "")
                               for e in run.fault_events) or "none drawn"))
    return 0


def _figure_session(args, nprocs_list, input_list, inject_fault):
    """One Session covering a whole figure's (x, design) cells."""
    from .api import Campaign

    campaign = (Campaign().apps(args.app).designs(*DESIGN_NAMES)
                .nprocs(*nprocs_list).inputs(*input_list)
                .faults("single" if inject_fault else None)
                .reps(args.reps))
    return campaign.run()


def _figure_cell(session, **cell):
    # look the cell's config up in the session rather than re-deriving
    # it from ExperimentConfig defaults, so the builder's defaults are
    # the single source of truth
    config = next(c for c in session.configs
                  if all(getattr(c, name) == value
                         for name, value in cell.items()))
    return session.averaged(config)


def _cmd_figure(args) -> int:
    fig = args.id
    app = args.app
    if fig in (5, 6, 7):
        xs = valid_proc_counts(app)
        session = _figure_session(args, xs, ("small",), fig in (6, 7))
        rows = []
        for nprocs in xs:
            for design in DESIGN_NAMES:
                res = _figure_cell(session, design=design,
                                   nprocs=nprocs)
                rows.append((nprocs, design,
                             res.breakdown.recovery_seconds if fig == 7
                             else res.breakdown))
        if fig == 7:
            print(format_recovery_series("Figure 7 (%s)" % app, rows))
        else:
            print(format_breakdown_series("Figure %d (%s)" % (fig, app),
                                          rows))
    elif fig in (8, 9, 10):
        session = _figure_session(args, (64,), INPUT_SIZES, fig in (9, 10))
        rows = []
        for input_size in INPUT_SIZES:
            for design in DESIGN_NAMES:
                res = _figure_cell(session, design=design, nprocs=64,
                                   input_size=input_size)
                rows.append((input_size, design,
                             res.breakdown.recovery_seconds if fig == 10
                             else res.breakdown))
        if fig == 10:
            print(format_recovery_series("Figure 10 (%s)" % app, rows,
                                         x_label="Input"))
        else:
            print(format_breakdown_series("Figure %d (%s)" % (fig, app),
                                          rows, x_label="Input"))
    else:
        print("unknown figure id %d (have 5-10)" % fig, file=sys.stderr)
        return 2
    return 0


def _parse_designs(value: str):
    designs = tuple(DESIGN_NAMES) if value == "all" \
        else tuple(value.split(","))
    for design in designs:
        if design not in DESIGN_NAMES:
            raise ConfigurationError(
                "unknown design %r (have %s or 'all')"
                % (design, DESIGN_NAMES))
    return designs


def _matrix_campaign(args):
    """The Campaign a ``campaign``-shaped flag set describes."""
    campaign = (_base_campaign(args)
                .apps(*args.app.split(","))
                .designs(*_parse_designs(args.design))
                .faults(args.faults if args.faults is not None
                        else "single"))
    if args.nprocs is not None:
        campaign = campaign.nprocs(args.nprocs)
    if args.input is not None:
        campaign = campaign.inputs(args.input)
    return campaign


def _parse_timeout(value):
    if value is None or value == "auto":
        return value
    try:
        return float(value)
    except ValueError:
        raise ConfigurationError(
            "--timeout takes seconds or 'auto' (got %r)" % (value,))


def _format_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return "%dh%02dm" % (seconds // 3600, (seconds % 3600) // 60)
    if seconds >= 60:
        return "%dm%02ds" % (seconds // 60, seconds % 60)
    return "%.1fs" % seconds


def _progress_clock(started: float, completed: int, total: int) -> str:
    """`` [elapsed 12.3s, ETA 1m04s]`` for a --progress line.

    The ETA extrapolates mean time-per-unit over the completed count —
    resumed (skipped) units count too, which deliberately *shortens*
    the estimate: they cost nothing and the remaining work shrinks.
    """
    elapsed = time.perf_counter() - started
    text = " [elapsed %s" % _format_seconds(elapsed)
    remaining = total - completed
    if completed > 0 and remaining > 0:
        eta = elapsed / completed * remaining
        text += ", ETA %s" % _format_seconds(eta)
    return text + "]"


def _cmd_campaign(args) -> int:
    from .api import (
        UnitCompleted,
        UnitFailed,
        UnitRetrying,
        UnitSkipped,
        check_campaign,
    )
    from .core.report import format_campaign_matrix

    from .obs import env as obs_env
    from .obs.metrics import REGISTRY as obs_registry

    campaign = (_matrix_campaign(args).reps(args.runs).jobs(args.jobs)
                .store(args.store).resume(args.resume).shard(args.shard)
                .on_error(args.on_error).retries(args.retries)
                .timeout(_parse_timeout(args.timeout)))
    if args.sim_watchdog is not None:
        campaign = campaign.sim_watchdog(args.sim_watchdog)
    # telemetry: CLI flags win over the MATCH_TRACE/MATCH_OBS defaults
    trace_path = args.trace or obs_env.trace_path_from_env()
    metrics_path = args.metrics_out or obs_env.metrics_snapshot_path()
    if obs_env.metrics_disabled_by_env():
        obs_registry.set_enabled(False)
    if trace_path:
        campaign = campaign.trace()
    if args.profile:
        campaign = campaign.profile(args.profile)
    check_campaign(campaign.configs(), args.runs)
    if args.estimate:
        total = 0.0
        print("pre-flight estimate (analytic model, %d rep(s)/cell):"
              % args.runs)
        for config, prediction in campaign.predict():
            total += prediction.total_seconds * args.runs
            print("  %-44s E[T]=%8.2fs  eff=%5.1f%%"
                  % (config.label(), prediction.total_seconds,
                     100.0 * prediction.efficiency))
        print("  predicted virtual cost of the sweep: %.2f sim-seconds"
              % total)
    session = campaign.session()
    started = time.perf_counter()
    for event in session.stream():
        if not args.progress:
            continue
        if isinstance(event, (UnitCompleted, UnitSkipped)):
            tag = "skip" if isinstance(event, UnitSkipped) else "done"
            print("[%d/%d] %s %s rep %d%s"
                  % (event.completed, event.total, tag,
                     event.unit.config.label(), event.unit.rep,
                     _progress_clock(started, event.completed,
                                     event.total)))
        elif isinstance(event, UnitRetrying):
            print("[%d/%d] retry %s rep %d (attempt %d failed: %s; "
                  "backing off %.1fs)"
                  % (event.completed, event.total,
                     event.unit.config.label(), event.unit.rep,
                     event.attempt, event.error.summary(), event.delay))
        elif isinstance(event, UnitFailed):
            print("[%d/%d] FAIL %s rep %d: %s"
                  % (event.completed, event.total,
                     event.unit.config.label(), event.unit.rep,
                     event.error))
    summaries = session.campaigns()
    for result in summaries.values():
        print(result.report())
    if len(summaries) > 1:
        print()
        print(format_campaign_matrix(summaries))
    print("engine: executed %d run(s), skipped %d already-stored "
          "run(s), %d failure(s)"
          % (session.executed, session.skipped, session.failed))
    # telemetry artifacts land even when the sweep had contained
    # failures — that is exactly when a trace is most wanted
    if trace_path:
        print("trace: %d event(s) written to %s (open in Perfetto / "
              "chrome://tracing)"
              % (len(session.trace()["traceEvents"]),
                 session.write_trace(trace_path)))
    if metrics_path:
        obs_env.write_metrics_snapshot(metrics_path,
                                       obs_registry.snapshot())
        print("metrics: registry snapshot written to %s" % metrics_path)
    if args.profile:
        print("profile: per-unit dumps in %s (rank with: match-bench "
              "profile %s)" % (args.profile, args.profile))
    if session.failed:
        print("failed runs (recorded in the store; a --resume after a "
              "fix re-runs them):", file=sys.stderr)
        for key, record in sorted(session.failures().items()):
            print("  %s: %s" % (key, record.summary()), file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args) -> int:
    from .obs.profiling import (
        aggregate_profiles,
        format_hotspots,
        hotspot_rows,
    )

    stats, n_dumps = aggregate_profiles(args.dir)
    print(format_hotspots(
        hotspot_rows(stats, top=args.top, sort=args.sort), n_dumps))
    return 0


def _cmd_campaign_report(args) -> int:
    from .core.breakdown import try_run_result_from_dict
    from .core.campaign import campaign_results_from_records
    from .core.engine import campaign_units
    from .core.report import render_campaign
    from .core.store import merge_store_paths

    records = merge_store_paths(args.store)
    print(render_campaign(campaign_results_from_records(records),
                          fmt=args.format, title="Merged campaign stores"))
    if args.check_complete:
        # run keys hash the full config: a completeness check against
        # the wrong matrix silently reports INCOMPLETE (or worse,
        # complete), so the identifying flags must be explicit and the
        # assumed defaults are echoed
        if None in (args.app, args.design, args.nprocs, args.runs):
            print("--check-complete needs the sweep's matrix flags: "
                  "--app --design --nprocs --runs (plus --input/--seed/"
                  "--nnodes/--faults/--fti-level if the sweep used "
                  "non-defaults — all of them enter the run key)",
                  file=sys.stderr)
            return 2
        args.input = "small" if args.input is None else args.input
        args.seed = 0 if args.seed is None else args.seed
        args.nnodes = NNODES if args.nnodes is None else args.nnodes
        print("checking completeness for: app=%s design=%s nprocs=%d "
              "input=%s seed=%d nnodes=%d runs=%d faults=%s fti-level=%s"
              % (args.app, args.design, args.nprocs, args.input,
                 args.seed, args.nnodes, args.runs,
                 args.faults if args.faults is not None else "single",
                 args.fti_level if args.fti_level is not None else 1))
        # key presence is not enough: a record the summary had to skip
        # (undecodable payload) must count as a hole, or an incomplete
        # sweep ships as green
        usable = {key for key, record in records.items()
                  if try_run_result_from_dict(record["result"])
                  is not None}
        expected = campaign_units(_matrix_campaign(args).configs(),
                                  args.runs)
        missing = [u for u in expected if u.key not in usable]
        if missing:
            print("INCOMPLETE: %d of %d runs missing from the merged "
                  "stores:" % (len(missing), len(expected)),
                  file=sys.stderr)
            for unit in missing[:20]:
                print("  %s rep %d (%s)" % (unit.config.label(), unit.rep,
                                            unit.key), file=sys.stderr)
            return 1
        print("complete: all %d matrix runs present" % len(expected))
    return 0


def _cmd_explore(args) -> int:
    from .core.events import ExploreStarted, ScheduleProbed

    campaign = (_base_campaign(args).apps(args.app).designs(args.design)
                .nprocs(args.nprocs).inputs(args.input).faults("none"))
    if args.store:
        campaign = campaign.store(args.store).resume()
    config = campaign.configs()[0]
    session = campaign.session()

    def render(event):
        if isinstance(event, ExploreStarted):
            print("exploring %s with %s over %d candidate schedule(s)"
                  % (event.config_label, event.strategy, event.candidates))
            print("  anchors: %s" % (", ".join(event.anchors) or "none"))
        elif args.progress and isinstance(event, ScheduleProbed):
            print("  [%3d] %-40s %10.3f s  (worst so far: %s)"
                  % (event.probes, event.spec, event.makespan,
                     event.best_spec))

    outcome = session.explore(config, strategy=args.strategy,
                              budget=args.budget, seed=args.seed,
                              progress=render)
    print("worst case: at-phase:%s" % outcome.best_spec)
    print("  makespan %.3f s vs %.3f s fault-free (%.2fx slowdown), "
          "%d schedule(s) probed"
          % (outcome.best, outcome.baseline, outcome.slowdown,
             outcome.probes))
    return 0


def _cmd_advise(args) -> int:
    import time

    from .modeling import MODELS  # noqa: F401  (imports the registry)
    from .modeling.advisor import advise, render_advice

    levels = tuple(int(v) for v in args.levels.split(","))
    t0 = time.perf_counter()
    rows = advise(args.app, args.nprocs, args.mtbf,
                  input_size=args.input, nnodes=args.nnodes,
                  designs=_parse_designs(args.design), levels=levels,
                  objective=args.objective, model=args.model)
    model_ms = (time.perf_counter() - t0) * 1e3
    print(render_advice(
        rows, fmt=args.format,
        title="Advice for %s at %d ranks, MTBF %s (objective: %s)"
        % (args.app, args.nprocs, args.mtbf, args.objective)))
    if args.format == "table":
        print("model time: %.2f ms (%d cells)" % (model_ms, len(rows)))
    return 0


def _cmd_serve(args) -> int:
    from .service import AdviceQuery, AdvisorServer, AdvisorService

    service = AdvisorService(model=args.model,
                             query_cache_size=args.query_cache)
    if args.calibrate_store:
        version = service.recalibrate(args.calibrate_store)
        print("calibrated from %d store(s): %s"
              % (len(args.calibrate_store), version), file=sys.stderr)
    if args.warm:
        workloads = []
        for spec in args.warm:
            app, _, nprocs = spec.partition(":")
            try:
                nprocs = int(nprocs) if nprocs else 64
            except ValueError:
                raise ConfigurationError(
                    "--warm takes app or app:nprocs (got %r)" % (spec,))
            workloads.append(AdviceQuery.make(app, nprocs, "1h"))
        entries = service.warm(workloads)
        print("warmed %d workload(s): %d precomputed entries"
              % (len(workloads), entries), file=sys.stderr)
    server = AdvisorServer(service, host=args.host, port=args.port)
    print("advisor service (calibration %s) listening on "
          "http://%s:%d — endpoints: /advise /advise/batch /predict "
          "/healthz /metrics /metrics.json" % (service.calibration,
                                               args.host, args.port),
          file=sys.stderr)
    server.run()
    return 0


def _cmd_model_validate(args) -> int:
    from .modeling.validate import validate_model

    report = validate_model(
        app=args.app, nprocs=tuple(int(p) for p in
                                   args.nprocs.split(",")),
        designs=_parse_designs(args.design), faults=args.faults,
        reps=args.runs, input_size=args.input, nnodes=args.nnodes,
        model=args.model, error_budget=args.budget, jobs=args.jobs,
        seed=args.seed, calibrate=args.calibrate)
    print(report.report())
    return 0 if report.within_budget else 1


def _cmd_chart(args) -> int:
    from .api import Campaign
    from .core.charts import figure_chart

    xs = valid_proc_counts(args.app)
    session = (Campaign().apps(args.app).designs(*DESIGN_NAMES)
               .nprocs(*xs).faults("single" if args.fault else None)
               .reps(args.reps).run())
    cells = []
    for nprocs in xs:
        for design in DESIGN_NAMES:
            cells.append((nprocs, design,
                          _figure_cell(session, design=design,
                                       nprocs=nprocs).breakdown))
    print(figure_chart("%s: breakdown by scaling size%s"
                       % (args.app, " (with failure)" if args.fault else ""),
                       cells))
    return 0


def _cmd_lint(args) -> int:
    # delegate to the match-lint CLI so `match-bench lint` and
    # `python -m repro.analysis` stay flag-for-flag identical
    from .analysis.cli import main as lint_main

    argv = list(args.paths) + ["--format", args.format]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.select is not None:
        argv += ["--select", args.select]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv, prog="match-bench lint")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="match-bench",
        description="MATCH MPI fault-tolerance benchmark suite "
                    "(IISWC 2020 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I").set_defaults(
        func=_cmd_table1)

    def add_fault_args(p):
        p.add_argument("--faults", "--scenario", dest="faults",
                       default=None, metavar="SPEC",
                       help="fault scenario spec: none | single | "
                            "independent:K[:node=N] | "
                            "correlated:K[:window=W] | poisson:MTBF | "
                            "at-phase:SCHEDULE | worst-of:BUDGET "
                            "(see docs/FAULTS.md, docs/EXPLORE.md)")
        p.add_argument("--fti-level", dest="fti_level", type=int,
                       default=None, choices=(1, 2, 3, 4),
                       help="FTI reliability level (node-failure "
                            "scenarios need >= 2)")
        p.add_argument("--interval", default=None, metavar="N|auto",
                       help="checkpoint interval in iterations, or "
                            "'auto' for the Daly optimum under the "
                            "configured fault scenario (docs/MODELING.md)")

    run_p = sub.add_parser("run", help="run one configuration")
    run_p.add_argument("--app", required=True)
    run_p.add_argument("--design", required=True, choices=DESIGN_NAMES)
    run_p.add_argument("--nprocs", type=int, default=64)
    run_p.add_argument("--input", default="small", choices=INPUT_SIZES)
    run_p.add_argument("--fault", action="store_true",
                       help="deprecated: routed through --faults single")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--reps", type=int, default=None)
    add_fault_args(run_p)
    run_p.set_defaults(func=_cmd_run)

    fig_p = sub.add_parser("figure", help="regenerate one figure's series")
    fig_p.add_argument("--id", type=int, required=True)
    fig_p.add_argument("--app", default="hpccg")
    fig_p.add_argument("--reps", type=int, default=None)
    fig_p.set_defaults(func=_cmd_figure)

    def add_matrix_args(p, required, with_defaults=True):
        # with_defaults=False leaves every flag None so commands that
        # must reconstruct a sweep's exact run keys can tell an omitted
        # flag from an explicitly-passed default
        p.add_argument("--app", required=required,
                       help="app or comma-separated list of apps")
        p.add_argument("--design", required=required,
                       help="design, comma-separated list, or 'all'")
        p.add_argument("--nprocs", type=int,
                       default=64 if with_defaults else None)
        p.add_argument("--nnodes", type=int,
                       default=NNODES if with_defaults else None)
        p.add_argument("--input", choices=INPUT_SIZES,
                       default="small" if with_defaults else None)
        p.add_argument("--runs", type=int,
                       default=10 if with_defaults else None,
                       help="repetitions per matrix cell")
        p.add_argument("--seed", type=int,
                       default=0 if with_defaults else None)
        # scenario flags: None means "the paper's single kill at FTI
        # defaults", identically on both the sweep and report sides, so
        # an omitted flag reconstructs the same run keys either way
        add_fault_args(p)

    camp_p = sub.add_parser("campaign",
                            help="fault-injection campaign statistics "
                                 "(parallel, resumable, shardable)")
    add_matrix_args(camp_p, required=True)
    camp_p.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial in-process)")
    camp_p.add_argument("--store", default=None,
                        help="result store for resume/merge: a JSONL "
                             "path or backend:location spec")
    camp_p.add_argument("--resume", action="store_true",
                        help="skip runs already present in --store")
    camp_p.add_argument("--shard", default=None, metavar="K/N",
                        help="run only shard K of N of the matrix")
    camp_p.add_argument("--progress", action="store_true",
                        help="print one line per completed run (the "
                             "session's live event stream)")
    camp_p.add_argument("--estimate", action="store_true",
                        help="print the analytic pre-flight cost "
                             "estimate (predicted makespan per cell) "
                             "before launching")
    camp_p.add_argument("--on-error", default="abort", metavar="POLICY",
                        help="failure policy: abort (default, first "
                             "failure re-raises), continue (record a "
                             "failure record, finish the sweep; exit "
                             "code 1 if anything failed) or retry:N "
                             "(continue plus N transient retries)")
    camp_p.add_argument("--retries", type=int, default=0,
                        help="transient-failure retries per run (dead "
                             "worker, blown timeout — never "
                             "deterministic simulation errors)")
    camp_p.add_argument("--timeout", default=None, metavar="SECONDS|auto",
                        help="per-run wall-clock timeout; 'auto' derives "
                             "one from the modeled makespan of this "
                             "matrix (suggest_timeout: slowest cell x 5, "
                             "floor 30s)")
    camp_p.add_argument("--sim-watchdog", type=int, default=None,
                        metavar="STEPS",
                        help="per-run simulator livelock guard: abort a "
                             "run past this many scheduler steps")
    camp_p.add_argument("--trace", default=None, metavar="OUT.json",
                        help="collect campaign→unit→phase spans and "
                             "write Chrome trace-event JSON there "
                             "(Perfetto-viewable; $MATCH_TRACE sets a "
                             "default path)")
    camp_p.add_argument("--profile", default=None, metavar="DIR",
                        help="cProfile every run unit into DIR "
                             "(aggregate with: match-bench profile DIR)")
    camp_p.add_argument("--metrics-out", default=None, metavar="OUT.json",
                        help="dump the campaign's metrics-registry "
                             "snapshot there at the end ($MATCH_OBS sets "
                             "a default path; MATCH_OBS=off disables "
                             "metrics entirely)")
    camp_p.set_defaults(func=_cmd_campaign)

    prof_p = sub.add_parser("profile",
                            help="aggregate per-unit cProfile dumps "
                                 "from a --profile campaign into a "
                                 "ranked hotspot table")
    prof_p.add_argument("dir", help="the --profile directory")
    prof_p.add_argument("--top", type=int, default=20,
                        help="rows to show (default 20)")
    prof_p.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "internal"),
                        help="ranking: cumulative (incl. callees, "
                             "default) or internal (own time)")
    prof_p.set_defaults(func=_cmd_profile)

    exp_p = sub.add_parser("explore",
                           help="adversarial fault-timing search: find "
                                "the worst-case fault schedule for one "
                                "configuration (docs/EXPLORE.md)")
    exp_p.add_argument("--app", required=True)
    exp_p.add_argument("--design", required=True, choices=DESIGN_NAMES)
    exp_p.add_argument("--nprocs", type=int, default=64)
    exp_p.add_argument("--input", default="small", choices=INPUT_SIZES)
    exp_p.add_argument("--nnodes", type=int, default=None)
    exp_p.add_argument("--seed", type=int, default=0)
    exp_p.add_argument("--strategy", default="exhaustive",
                       help="search strategy registry entry: exhaustive "
                            "(default), random, bisect, or a plugin")
    exp_p.add_argument("--budget", type=int, default=None,
                       help="max candidate schedules to evaluate "
                            "(default: the strategy's own)")
    exp_p.add_argument("--store", default=None,
                       help="result store: candidate runs are memoized "
                            "there under ordinary at-phase run keys, so "
                            "a repeated search resumes")
    exp_p.add_argument("--progress", action="store_true",
                       help="print one line per probed schedule")
    exp_p.add_argument("--fti-level", dest="fti_level", type=int,
                       default=None, choices=(1, 2, 3, 4),
                       help="FTI reliability level of the explored "
                            "configuration")
    exp_p.add_argument("--interval", default=None, metavar="N|auto",
                       help="checkpoint interval of the explored "
                            "configuration")
    exp_p.set_defaults(func=_cmd_explore)

    adv_p = sub.add_parser("advise",
                           help="rank (design, FTI level, interval) "
                                "combinations analytically for a "
                                "workload and MTBF")
    adv_p.add_argument("--app", required=True)
    adv_p.add_argument("--nprocs", type=int, default=64)
    adv_p.add_argument("--mtbf", required=True,
                       help="machine MTBF: seconds or a suffixed value "
                            "like 30m / 4h / 1d (or 'inf')")
    adv_p.add_argument("--input", default="small", choices=INPUT_SIZES)
    adv_p.add_argument("--nnodes", type=int, default=NNODES)
    adv_p.add_argument("--design", default="all",
                       help="design, comma-separated list, or 'all'")
    adv_p.add_argument("--levels", default="1,2,3,4",
                       help="comma-separated FTI levels to consider")
    adv_p.add_argument("--objective", default="makespan",
                       choices=("makespan", "efficiency", "recovery"))
    adv_p.add_argument("--model", default="analytic",
                       help="cost model (any registered 'model' entry)")
    adv_p.add_argument("--format", default="table",
                       help="output renderer: table | json | csv (or "
                            "any registered renderer)")
    adv_p.set_defaults(func=_cmd_advise)

    srv_p = sub.add_parser("serve",
                           help="run the advisor as a long-running "
                                "HTTP/JSON service")
    srv_p.add_argument("--host", default="127.0.0.1")
    srv_p.add_argument("--port", type=int, default=8347)
    srv_p.add_argument("--model", default="analytic",
                       help="cost model (any registered 'model' entry)")
    srv_p.add_argument("--calibrate-store", nargs="+", default=None,
                       metavar="STORE",
                       help="fit a calibrated model from these result "
                            "stores before serving")
    srv_p.add_argument("--warm", nargs="+", default=None,
                       metavar="APP[:NPROCS]",
                       help="precompute advice grids for these "
                            "workloads at the canonical MTBF buckets")
    srv_p.add_argument("--query-cache", type=int, default=4096,
                       help="LRU query-cache entries (default 4096)")
    srv_p.set_defaults(func=_cmd_serve)

    val_p = sub.add_parser("model-validate",
                           help="run a small campaign and check the "
                                "analytic predictions against it")
    val_p.add_argument("--app", default="hpccg")
    val_p.add_argument("--nprocs", default="64,256",
                       help="comma-separated scaling sizes")
    val_p.add_argument("--design", default="all",
                       help="design, comma-separated list, or 'all'")
    val_p.add_argument("--faults", default="poisson:20", metavar="SPEC",
                       help="fault scenario the campaign runs under")
    val_p.add_argument("--input", default="small", choices=INPUT_SIZES)
    val_p.add_argument("--nnodes", type=int, default=NNODES)
    val_p.add_argument("--runs", type=int, default=2,
                       help="repetitions per cell")
    val_p.add_argument("--seed", type=int, default=0)
    val_p.add_argument("--jobs", type=int, default=1)
    val_p.add_argument("--budget", type=float, default=0.25,
                       help="max per-cell relative error (default 0.25)")
    val_p.add_argument("--model", default="analytic",
                       help="cost model (any registered 'model' entry)")
    val_p.add_argument("--calibrate", action="store_true",
                       help="fit a calibrated model on the campaign "
                            "first and validate that instead")
    val_p.set_defaults(func=_cmd_model_validate)

    rep_p = sub.add_parser("campaign-report",
                           help="merge result stores and print the "
                                "campaign matrix")
    rep_p.add_argument("--store", nargs="+", required=True,
                       help="one or more JSONL result stores (shards)")
    rep_p.add_argument("--format", default="matrix",
                       help="report renderer: matrix | report | csv "
                            "(or any registered renderer)")
    rep_p.add_argument("--check-complete", action="store_true",
                       help="fail unless the merged stores cover the "
                            "matrix given by --app/--design/--nprocs/"
                            "--runs (and --input/--seed/--nnodes/"
                            "--faults/--fti-level when the sweep used "
                            "non-defaults)")
    add_matrix_args(rep_p, required=False, with_defaults=False)
    rep_p.set_defaults(func=_cmd_campaign_report)

    chart_p = sub.add_parser("chart",
                             help="ASCII stacked-bar chart of a figure")
    chart_p.add_argument("--app", default="hpccg")
    chart_p.add_argument("--fault", action="store_true")
    chart_p.add_argument("--reps", type=int, default=None)
    chart_p.set_defaults(func=_cmd_chart)

    lint_p = sub.add_parser("lint",
                            help="run match-lint (determinism & "
                                 "contract static analysis)")
    lint_p.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    lint_p.add_argument("--format", default="text",
                        choices=("text", "json"))
    lint_p.add_argument("--baseline", default=None, metavar="PATH")
    lint_p.add_argument("--no-baseline", action="store_true")
    lint_p.add_argument("--write-baseline", action="store_true")
    lint_p.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids")
    lint_p.add_argument("--list-rules", action="store_true")
    lint_p.set_defaults(func=_cmd_lint)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # the engine already drained in-flight results and flushed the
        # store (CampaignAborted); --resume continues where this stopped
        print("interrupted; completed runs are in the store",
              file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
