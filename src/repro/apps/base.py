"""Common machinery for the six MATCH proxy applications.

Each proxy app is an SPMD program against :class:`repro.simmpi.MpiApi`:
``make_state`` allocates the rank-local data, ``iterate`` runs one
main-loop iteration (communication + numerics), ``verify`` checks the
physics/maths stayed sane.

**Capped execution, nominal charging** (DESIGN.md substitution #4): apps
run real numerics on local arrays capped at a modest size so 512-rank
experiments stay fast, while the *virtual* time they charge reflects the
nominal Table I problem size. The per-cell work constants are calibration
values chosen so the 64-process small-input execution times land in the
same magnitude band as the paper's figures; they absorb everything the
real apps do per "iteration" (inner sweeps, setup amortisation) that the
capped kernels do not.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..fti.serializer import ScalarRef


@dataclass
class AppState:
    """One rank's mutable application state."""

    rank: int
    nprocs: int
    #: the main-loop counter, checkpointed so recovery resumes correctly
    iteration: ScalarRef = field(default_factory=lambda: ScalarRef(0))
    #: named numpy arrays restored in place by FTI recovery
    arrays: dict = field(default_factory=dict)
    #: named checkpointed scalars
    scalars: dict = field(default_factory=dict)
    #: transient (not checkpointed) helpers
    extras: dict = field(default_factory=dict)
    #: bytes one nominal-size checkpoint of this rank would occupy
    nominal_ckpt_bytes: int = 0
    #: record of per-iteration diagnostics for verification
    history: list = field(default_factory=list)

    def protect_with(self, fti) -> None:
        """Register the checkpointable state with an FTI instance.

        Ids are assigned deterministically (iteration first, then arrays
        and scalars in name order) so a recovering rank registers the
        exact same layout it checkpointed.
        """
        fti.protect(0, self.iteration, "iteration")
        var_id = 1
        for name in sorted(self.arrays):
            fti.protect(var_id, self.arrays[name], name)
            var_id += 1
        for name in sorted(self.scalars):
            fti.protect(var_id, self.scalars[name], name)
            var_id += 1


class ProxyApp(abc.ABC):
    """Base class for the six MATCH workloads."""

    #: short identifier used in configs and reports
    name: str = "app"
    #: "weak" (per-rank problem) or "strong" (global problem) scaling
    scaling: str = "weak"

    def __init__(self, nprocs: int, niters: int):
        if nprocs < 1:
            raise ConfigurationError("need at least one process")
        if niters < 2:
            raise ConfigurationError("need at least two iterations")
        self.nprocs = nprocs
        self.niters = niters

    # -- mandatory hooks -----------------------------------------------------
    @abc.abstractmethod
    def make_state(self, mpi) -> AppState:
        """Allocate rank-local state (generator: may charge setup time)."""

    @abc.abstractmethod
    def iterate(self, mpi, state: AppState, i: int):
        """Run main-loop iteration ``i`` (generator)."""

    @abc.abstractmethod
    def verify(self, state: AppState) -> bool:
        """Cheap internal-consistency check of the final state."""

    # -- shared helpers -----------------------------------------------------------
    @staticmethod
    def capped(nominal: int, cap: int) -> int:
        """Actual allocation size for a nominal element count."""
        if nominal < 1 or cap < 1:
            raise ConfigurationError("sizes must be positive")
        return min(nominal, cap)

    @staticmethod
    def cube_root(n: int) -> int:
        root = round(n ** (1.0 / 3.0))
        return max(1, root)

    def neighbors_1d(self, rank: int) -> tuple:
        """Left/right neighbours of a 1-D (slab) domain decomposition;
        ``None`` at the boundary."""
        left = rank - 1 if rank > 0 else None
        right = rank + 1 if rank < self.nprocs - 1 else None
        return left, right


def halo_exchange_1d(mpi, left, right, send_left, send_right,
                     nominal_nbytes: int, tag: int = 1):
    """Exchange slab faces with 1-D neighbours (generator).

    Payloads are the real (capped) face arrays; the wire size charged is
    the nominal face size. Returns ``(from_left, from_right)`` with
    ``None`` at physical boundaries. The protocol is deadlock-free under
    the runtime's eager sends: everyone sends both faces first, then
    receives.
    """
    if left is not None:
        yield from mpi.send(left, send_left, tag=tag, nbytes=nominal_nbytes)
    if right is not None:
        yield from mpi.send(right, send_right, tag=tag + 1,
                            nbytes=nominal_nbytes)
    from_left = from_right = None
    if left is not None:
        from_left, _ = yield from mpi.recv(left, tag=tag + 1)
    if right is not None:
        from_right, _ = yield from mpi.recv(right, tag=tag)
    return from_left, from_right


def deterministic_rng(app_name: str, rank: int, salt: int = 0):
    """Seeded per-rank RNG so every repetition sees identical numerics.

    Seeds derive from CRC32 (not ``hash()``, which is salted per
    interpreter run) so results are stable across processes too.
    """
    import zlib

    key = ("%s/%d/%d" % (app_name, rank, salt)).encode("ascii")
    seed = (zlib.crc32(key) & 0x7FFFFFFF) or 1
    return np.random.default_rng(seed)
