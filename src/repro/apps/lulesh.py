"""LULESH: Sedov blast hydrodynamics on an unstructured hex mesh.

Table I: per-domain edge ``-s 30/40/50`` (weak scaling); LULESH requires
a cube number of domains, so the paper runs it only at 64 and 512
processes. One main-loop iteration is a Lagrangian timestep: the global
CFL reduction (``MPI_Allreduce(MIN)``, LULESH's signature collective),
face halo exchange, and the stress/hourglass/EOS update sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import AppState, ProxyApp, halo_exchange_1d
from .kernels.hydro import init_sedov, lagrange_step, stable_dt
from ..errors import ConfigurationError
from ..simmpi import ops


@dataclass(frozen=True)
class LuleshParams:
    """``-s edge -p`` — per-domain element edge."""

    edge: int

    @property
    def local_cells(self) -> int:
        return self.edge ** 3


LULESH_INPUTS = {
    "small": LuleshParams(30),
    "medium": LuleshParams(40),
    "large": LuleshParams(50),
}

#: process counts LULESH accepts (cubes), per Table I
LULESH_PROC_COUNTS = (64, 512)


def is_cube(n: int) -> bool:
    root = round(n ** (1.0 / 3.0))
    return root ** 3 == n


class Lulesh(ProxyApp):
    """The LULESH proxy: Lagrangian shock hydrodynamics."""

    name = "lulesh"
    scaling = "weak"
    CAP_EDGE = 10
    FLOPS_PER_CELL = 4.67e6
    BYTES_PER_CELL = 3.2e4
    INPUT_EXPONENT = 1.1
    CKPT_BYTES_PER_RANK_SMALL = int(80e9)

    def __init__(self, nprocs: int, params: LuleshParams | None = None,
                 niters: int = 40):
        if not is_cube(nprocs):
            raise ConfigurationError(
                "LULESH needs a cube number of processes, got %d" % nprocs)
        super().__init__(nprocs, niters)
        self.params = params or LULESH_INPUTS["small"]

    @classmethod
    def from_input(cls, nprocs: int, input_size: str) -> "Lulesh":
        if input_size not in LULESH_INPUTS:
            raise ConfigurationError("unknown LULESH input %r" % input_size)
        return cls(nprocs, LULESH_INPUTS[input_size])

    # -- nominal work ----------------------------------------------------------
    def nominal_local_cells(self) -> int:
        return self.params.local_cells

    def _input_ratio(self) -> float:
        small = LULESH_INPUTS["small"].local_cells
        return (self.params.local_cells / small) ** self.INPUT_EXPONENT

    def work_per_iter(self) -> tuple:
        cells = LULESH_INPUTS["small"].local_cells * self._input_ratio()
        return cells * self.FLOPS_PER_CELL, cells * self.BYTES_PER_CELL

    def nominal_ckpt_bytes(self) -> int:
        return int(self.CKPT_BYTES_PER_RANK_SMALL * self._input_ratio())

    def halo_nbytes(self) -> int:
        # 6 face fields x edge^2 doubles
        return 6 * self.params.edge * self.params.edge * 8

    # -- state ---------------------------------------------------------------------
    def make_state(self, mpi):
        edge = self.capped(self.params.edge, self.CAP_EDGE)
        # the blast deposits energy in domain 0's origin corner
        fields = init_sedov(edge, deposit_energy=(mpi.rank == 0))
        state = AppState(rank=mpi.rank, nprocs=self.nprocs)
        for key, value in fields.items():
            state.arrays["hy_" + key] = value
        state.extras["energies"] = []
        state.extras["dts"] = []
        state.nominal_ckpt_bytes = self.nominal_ckpt_bytes()
        yield from mpi.compute(bytes_moved=self.nominal_local_cells() * 64.0)
        return state

    def rebind(self, state: AppState) -> None:
        """Arrays are protected in place; nothing to re-point."""

    def _fields(self, state: AppState) -> dict:
        return {key[3:]: arr for key, arr in state.arrays.items()
                if key.startswith("hy_")}

    # -- one Lagrangian step -----------------------------------------------------------
    def iterate(self, mpi, state: AppState, i: int):
        fields = self._fields(state)
        local_dt = stable_dt(fields)
        dt = yield from mpi.allreduce(local_dt, op=ops.MIN)
        left, right = self.neighbors_1d(mpi.rank)
        pressure_face = fields["energy"][0, :, :].copy()
        yield from halo_exchange_1d(
            mpi, left, right,
            send_left=pressure_face,
            send_right=fields["energy"][-1, :, :].copy(),
            nominal_nbytes=self.halo_nbytes(), tag=40)
        flops, bytes_moved = self.work_per_iter()
        yield from mpi.compute(flops=flops, bytes_moved=bytes_moved)
        local_e = lagrange_step(fields, dt)
        total_e = yield from mpi.allreduce(local_e, op=ops.SUM)
        state.extras["energies"].append(total_e)
        state.extras["dts"].append(dt)
        state.history.append(total_e)

    def verify(self, state: AppState) -> bool:
        """Energy finite/positive and every global dt positive."""
        energies = state.extras["energies"]
        dts = state.extras["dts"]
        if len(energies) < 2:
            return False
        return (all(np.isfinite(e) and e > 0 for e in energies)
                and all(d > 0 for d in dts))
