"""HPCCG: preconditioned conjugate-gradient solver on a 3-D chimney domain.

Table I: local grid ``nx ny nz`` per process (weak scaling) of
64/128/192 cubed for small/medium/large. The main loop is one CG
iteration: a face halo exchange with the z-neighbours (HPCCG's 1-D slab
decomposition), the 27-point matvec, and two global dot products.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import AppState, ProxyApp, deterministic_rng, halo_exchange_1d
from .kernels.cg import CgWorkspace, cg_step
from .kernels.stencil import apply_27pt
from ..errors import ConfigurationError


@dataclass(frozen=True)
class HpccgParams:
    """``nx ny nz`` — the per-process grid dimensions."""

    nx: int
    ny: int
    nz: int

    @property
    def local_cells(self) -> int:
        return self.nx * self.ny * self.nz


#: Table I inputs
HPCCG_INPUTS = {
    "small": HpccgParams(64, 64, 64),
    "medium": HpccgParams(128, 128, 128),
    "large": HpccgParams(192, 192, 192),
}


class Hpccg(ProxyApp):
    """The HPCCG proxy: CG on the 27-point operator."""

    name = "hpccg"
    scaling = "weak"
    #: actual per-axis cap on local execution (real numerics stay fast)
    CAP_EDGE = 10
    #: calibrated work constants (see DESIGN.md substitution #4)
    FLOPS_PER_CELL = 2100.0
    BYTES_PER_CELL = 240.0
    INPUT_EXPONENT = 0.5
    CKPT_BYTES_PER_RANK_SMALL = int(0.6e9)

    def __init__(self, nprocs: int, params: HpccgParams | None = None,
                 niters: int = 60):
        super().__init__(nprocs, niters)
        self.params = params or HPCCG_INPUTS["small"]

    @classmethod
    def from_input(cls, nprocs: int, input_size: str) -> "Hpccg":
        if input_size not in HPCCG_INPUTS:
            raise ConfigurationError("unknown HPCCG input %r" % input_size)
        return cls(nprocs, HPCCG_INPUTS[input_size])

    # -- nominal work -----------------------------------------------------
    def nominal_local_cells(self) -> int:
        return self.params.local_cells  # weak scaling: independent of P

    def _input_ratio(self) -> float:
        small = HPCCG_INPUTS["small"].local_cells
        return (self.params.local_cells / small) ** self.INPUT_EXPONENT

    def work_per_iter(self) -> tuple:
        cells = HPCCG_INPUTS["small"].local_cells * self._input_ratio()
        return cells * self.FLOPS_PER_CELL, cells * self.BYTES_PER_CELL

    def nominal_ckpt_bytes(self) -> int:
        return int(self.CKPT_BYTES_PER_RANK_SMALL * self._input_ratio())

    def halo_nbytes(self) -> int:
        return self.params.nx * self.params.ny * 8  # one z-face of doubles

    # -- state ---------------------------------------------------------------
    def make_state(self, mpi):
        edge = self.capped(self.params.nx, self.CAP_EDGE)
        rng = deterministic_rng(self.name, mpi.rank)
        b = rng.random((edge, edge, edge))
        ws = CgWorkspace(b, apply_27pt)
        state = AppState(rank=mpi.rank, nprocs=self.nprocs)
        state.arrays.update(ws.arrays())
        state.arrays["cg_b"] = b
        state.extras["ws"] = ws
        state.extras["residuals"] = []
        state.nominal_ckpt_bytes = self.nominal_ckpt_bytes()
        # setup cost: generating the problem touches the grid once
        yield from mpi.compute(bytes_moved=self.nominal_local_cells() * 8.0)
        return state

    def rebind(self, state: AppState) -> None:
        """Re-point the workspace at the (recovered) protected arrays."""
        ws = state.extras["ws"]
        ws.x = state.arrays["cg_x"]
        ws.r = state.arrays["cg_r"]
        ws.p = state.arrays["cg_p"]
        ws.rho = float(np.dot(ws.r.ravel(), ws.r.ravel()))

    # -- one CG iteration -------------------------------------------------------
    def iterate(self, mpi, state: AppState, i: int):
        ws = state.extras["ws"]
        left, right = self.neighbors_1d(mpi.rank)
        nominal = self.halo_nbytes()
        yield from halo_exchange_1d(
            mpi, left, right,
            send_left=ws.p[0, :, :].copy(), send_right=ws.p[-1, :, :].copy(),
            nominal_nbytes=nominal, tag=10)
        flops, bytes_moved = self.work_per_iter()
        yield from mpi.compute(flops=flops, bytes_moved=bytes_moved)
        rho = yield from cg_step(mpi, ws)
        state.extras["residuals"].append(rho)
        state.history.append(rho)

    def verify(self, state: AppState) -> bool:
        """CG on an SPD operator must reduce the residual overall."""
        residuals = state.extras["residuals"]
        if len(residuals) < 2:
            return False
        if not np.isfinite(residuals[-1]):
            return False
        return residuals[-1] < residuals[0] or residuals[-1] == 0.0
