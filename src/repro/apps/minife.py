"""miniFE: implicit unstructured finite-element solver (strong scaling).

Table I: global mesh ``-nx/-ny/-nz`` of 20/40/60 cubed. The app
assembles the FE stiffness matrix (a real CSR matrix here) and runs CG
on it. One main-loop iteration is one CG step: row-partitioned sparse
matvec, boundary-row exchange with slab neighbours, and the usual two
global dot products.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import AppState, ProxyApp, halo_exchange_1d
from .kernels.cg import CgWorkspace, cg_step
from .kernels.sparse import assemble_poisson_27pt, rhs_for
from ..errors import ConfigurationError


@dataclass(frozen=True)
class MinifeParams:
    """``-nx nx -ny ny -nz nz`` — global FE mesh dimensions."""

    nx: int
    ny: int
    nz: int

    @property
    def global_rows(self) -> int:
        return self.nx * self.ny * self.nz


MINIFE_INPUTS = {
    "small": MinifeParams(20, 20, 20),
    "medium": MinifeParams(40, 40, 40),
    "large": MinifeParams(60, 60, 60),
}


class Minife(ProxyApp):
    """The miniFE proxy: FE assembly + CG solve."""

    name = "minife"
    scaling = "strong"
    CAP_ROWS = 1000
    FLOPS_PER_ROW = 5.1e6
    BYTES_PER_ROW = 5.0e4
    INPUT_EXPONENT = 0.3
    CKPT_BYTES_PER_RANK_SMALL = int(1.2e9)

    def __init__(self, nprocs: int, params: MinifeParams | None = None,
                 niters: int = 60):
        super().__init__(nprocs, niters)
        self.params = params or MINIFE_INPUTS["small"]

    @classmethod
    def from_input(cls, nprocs: int, input_size: str) -> "Minife":
        if input_size not in MINIFE_INPUTS:
            raise ConfigurationError("unknown miniFE input %r" % input_size)
        return cls(nprocs, MINIFE_INPUTS[input_size])

    # -- nominal work --------------------------------------------------------
    def nominal_local_rows(self) -> float:
        return self.params.global_rows / self.nprocs

    def _input_ratio(self) -> float:
        small = MINIFE_INPUTS["small"].global_rows
        return (self.params.global_rows / small) ** self.INPUT_EXPONENT

    def work_per_iter(self) -> tuple:
        rows = (MINIFE_INPUTS["small"].global_rows / self.nprocs
                * self._input_ratio())
        return rows * self.FLOPS_PER_ROW, rows * self.BYTES_PER_ROW

    def nominal_ckpt_bytes(self) -> int:
        per_rank = self.CKPT_BYTES_PER_RANK_SMALL * 64.0 / self.nprocs
        return int(per_rank * self._input_ratio())

    def halo_nbytes(self) -> int:
        # one plane of boundary rows
        return self.params.ny * self.params.nz * 8

    # -- state ------------------------------------------------------------------
    def make_state(self, mpi):
        rows = self.capped(max(8, int(self.nominal_local_rows())),
                           self.CAP_ROWS)
        edge = max(2, self.cube_root(rows))
        matrix = assemble_poisson_27pt(edge, edge, edge)
        b = rhs_for(edge, edge, edge)
        ws = CgWorkspace(b, lambda v: matrix.dot(v))
        state = AppState(rank=mpi.rank, nprocs=self.nprocs)
        state.arrays.update(ws.arrays())
        state.extras["ws"] = ws
        state.extras["matrix"] = matrix
        state.extras["residuals"] = []
        state.nominal_ckpt_bytes = self.nominal_ckpt_bytes()
        # assembly cost: ~27 nonzeros per row, several passes
        yield from mpi.compute(
            bytes_moved=self.nominal_local_rows() * 27 * 16.0)
        return state

    def rebind(self, state: AppState) -> None:
        ws = state.extras["ws"]
        ws.x = state.arrays["cg_x"]
        ws.r = state.arrays["cg_r"]
        ws.p = state.arrays["cg_p"]
        ws.rho = float(np.dot(ws.r, ws.r))

    # -- one CG iteration ------------------------------------------------------------
    def iterate(self, mpi, state: AppState, i: int):
        ws = state.extras["ws"]
        left, right = self.neighbors_1d(mpi.rank)
        boundary = ws.p[: max(1, ws.p.size // 10)].copy()
        yield from halo_exchange_1d(
            mpi, left, right, send_left=boundary, send_right=boundary,
            nominal_nbytes=self.halo_nbytes(), tag=50)
        flops, bytes_moved = self.work_per_iter()
        yield from mpi.compute(flops=flops, bytes_moved=bytes_moved)
        rho = yield from cg_step(mpi, ws)
        state.extras["residuals"].append(rho)
        state.history.append(rho)

    def verify(self, state: AppState) -> bool:
        residuals = state.extras["residuals"]
        if len(residuals) < 2:
            return False
        if not np.isfinite(residuals[-1]):
            return False
        # tiny capped systems may converge *exactly* (residual == 0)
        # within the very first iteration
        return residuals[-1] < residuals[0] or residuals[-1] == 0.0
