"""CoMD: Lennard-Jones molecular dynamics (strong scaling).

Table I: global lattice ``-nx/-ny/-nz`` of 128/256/512 cubed unit cells
(4 atoms each, fcc), divided among the ranks. One main-loop iteration is
a velocity-Verlet step: position halo exchange with slab neighbours,
the pairwise force computation, and the global kinetic/potential energy
reduction CoMD prints each step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import AppState, ProxyApp, deterministic_rng, halo_exchange_1d
from .kernels.lennard_jones import (
    init_fcc_lattice,
    kinetic_energy,
    lj_forces,
    velocity_verlet,
)
from ..errors import ConfigurationError
from ..simmpi import ops


@dataclass(frozen=True)
class ComdParams:
    """``-nx nx -ny ny -nz nz`` — global lattice dimensions."""

    nx: int
    ny: int
    nz: int

    @property
    def global_atoms(self) -> int:
        return 4 * self.nx * self.ny * self.nz  # fcc: 4 atoms per cell


COMD_INPUTS = {
    "small": ComdParams(128, 128, 128),
    "medium": ComdParams(256, 256, 256),
    "large": ComdParams(512, 512, 512),
}


class Comd(ProxyApp):
    """The CoMD proxy: LJ molecular dynamics."""

    name = "comd"
    scaling = "strong"
    CAP_ATOMS = 64
    FLOPS_PER_ATOM = 17000.0
    BYTES_PER_ATOM = 600.0
    INPUT_EXPONENT = 1.1
    CKPT_BYTES_PER_RANK_SMALL = int(5.2e9)
    DT = 0.002

    def __init__(self, nprocs: int, params: ComdParams | None = None,
                 niters: int = 50):
        super().__init__(nprocs, niters)
        self.params = params or COMD_INPUTS["small"]

    @classmethod
    def from_input(cls, nprocs: int, input_size: str) -> "Comd":
        if input_size not in COMD_INPUTS:
            raise ConfigurationError("unknown CoMD input %r" % input_size)
        return cls(nprocs, COMD_INPUTS[input_size])

    # -- nominal work ------------------------------------------------------
    def nominal_local_atoms(self) -> float:
        return self.params.global_atoms / self.nprocs

    def _input_ratio(self) -> float:
        small = COMD_INPUTS["small"].global_atoms
        return (self.params.global_atoms / small) ** self.INPUT_EXPONENT

    def work_per_iter(self) -> tuple:
        atoms = (COMD_INPUTS["small"].global_atoms / self.nprocs
                 * self._input_ratio())
        return atoms * self.FLOPS_PER_ATOM, atoms * self.BYTES_PER_ATOM

    def nominal_ckpt_bytes(self) -> int:
        per_rank = self.CKPT_BYTES_PER_RANK_SMALL * 64.0 / self.nprocs
        return int(per_rank * self._input_ratio())

    def halo_nbytes(self) -> int:
        # skin atoms of one slab face: atoms in a one-cell-thick slice
        atoms_per_slice = 4 * self.params.ny * self.params.nz
        return int(atoms_per_slice * 3 * 8)

    # -- state ------------------------------------------------------------------
    def make_state(self, mpi):
        natoms = self.capped(int(self.nominal_local_atoms()), self.CAP_ATOMS)
        natoms = max(natoms, 8)
        rng = deterministic_rng(self.name, mpi.rank)
        positions, velocities = init_fcc_lattice(natoms, rng)
        forces, _ = lj_forces(positions)
        state = AppState(rank=mpi.rank, nprocs=self.nprocs)
        state.arrays["md_pos"] = positions
        state.arrays["md_vel"] = velocities
        state.arrays["md_force"] = forces
        state.extras["energies"] = []
        state.nominal_ckpt_bytes = self.nominal_ckpt_bytes()
        yield from mpi.compute(bytes_moved=self.nominal_local_atoms() * 48.0)
        return state

    def rebind(self, state: AppState) -> None:
        """Arrays are protected in place; nothing to re-point."""

    # -- one velocity-Verlet step --------------------------------------------------
    def iterate(self, mpi, state: AppState, i: int):
        left, right = self.neighbors_1d(mpi.rank)
        pos = state.arrays["md_pos"]
        yield from halo_exchange_1d(
            mpi, left, right,
            send_left=pos[:8].copy(), send_right=pos[-8:].copy(),
            nominal_nbytes=self.halo_nbytes(), tag=30)
        flops, bytes_moved = self.work_per_iter()
        yield from mpi.compute(flops=flops, bytes_moved=bytes_moved)
        new_pos, new_vel, new_force, pe = velocity_verlet(
            pos, state.arrays["md_vel"], state.arrays["md_force"], self.DT)
        state.arrays["md_pos"][...] = new_pos
        state.arrays["md_vel"][...] = new_vel
        state.arrays["md_force"][...] = new_force
        local_e = pe + kinetic_energy(new_vel)
        total_e = yield from mpi.allreduce(local_e, op=ops.SUM)
        state.extras["energies"].append(total_e)
        state.history.append(total_e)

    def verify(self, state: AppState) -> bool:
        """Total energy must stay finite and roughly conserved."""
        energies = state.extras["energies"]
        if len(energies) < 2:
            return False
        if not all(np.isfinite(e) for e in energies):
            return False
        spread = abs(energies[-1] - energies[0])
        scale = max(1.0, abs(energies[0]))
        return spread / scale < 0.6  # loose: capped systems drift more
