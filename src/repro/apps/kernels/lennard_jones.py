"""Lennard-Jones molecular dynamics kernels (CoMD's physics).

Real pairwise LJ forces with a cutoff plus velocity-Verlet integration
on the rank-local atom set. Sizes are small (capped), so an O(N^2)
vectorised distance computation is both simple and fast; CoMD's cell
lists exist to make this scale, which the cap makes unnecessary.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError

#: LJ parameters in reduced units (CoMD defaults are eps=sigma=1 reduced)
EPSILON = 1.0
SIGMA = 1.0
CUTOFF = 2.5 * SIGMA


def init_fcc_lattice(natoms: int, rng, box: float = 10.0) -> tuple:
    """Positions on a jittered cubic lattice and Maxwellian velocities."""
    if natoms < 2:
        raise ConfigurationError("need at least two atoms")
    side = int(np.ceil(natoms ** (1.0 / 3.0)))
    spacing = box / side
    grid = np.stack(np.meshgrid(*[np.arange(side)] * 3, indexing="ij"),
                    axis=-1).reshape(-1, 3)[:natoms]
    positions = (grid + 0.5) * spacing
    positions += rng.normal(scale=0.05 * spacing, size=positions.shape)
    velocities = rng.normal(scale=0.5, size=(natoms, 3))
    velocities -= velocities.mean(axis=0)  # zero net momentum
    return positions.astype(np.float64), velocities.astype(np.float64)


def lj_forces(positions: np.ndarray, box: float = 10.0) -> tuple:
    """Pairwise LJ forces with minimum-image convention.

    Returns ``(forces, potential_energy)``.
    """
    delta = positions[:, None, :] - positions[None, :, :]
    delta -= box * np.round(delta / box)
    r2 = np.sum(delta * delta, axis=-1)
    np.fill_diagonal(r2, np.inf)
    mask = r2 < CUTOFF * CUTOFF
    inv_r2 = np.where(mask, 1.0 / np.maximum(r2, 1e-12), 0.0)
    inv_r6 = inv_r2 ** 3
    # F = 24 eps (2 (s/r)^12 - (s/r)^6) / r^2 * dr
    coeff = 24.0 * EPSILON * (2.0 * inv_r6 * inv_r6 - inv_r6) * inv_r2
    forces = np.sum(coeff[:, :, None] * delta, axis=1)
    energy = 2.0 * EPSILON * np.sum(inv_r6 * inv_r6 - inv_r6)  # 4eps/2 pairs
    return forces, float(energy)


def velocity_verlet(positions, velocities, forces, dt: float,
                    box: float = 10.0) -> tuple:
    """One velocity-Verlet step; returns updated (pos, vel, forces, pe)."""
    velocities = velocities + 0.5 * dt * forces
    positions = (positions + dt * velocities) % box
    new_forces, pe = lj_forces(positions, box)
    velocities = velocities + 0.5 * dt * new_forces
    return positions, velocities, new_forces, pe


def kinetic_energy(velocities: np.ndarray) -> float:
    return float(0.5 * np.sum(velocities * velocities))
