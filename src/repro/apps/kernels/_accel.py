"""Optional native (C) stencil kernels, bit-identical to the numpy path.

The capped proxy-app grids are tiny (~10^3 cells), so the numpy stencil
implementations are dominated by per-call dispatch overhead — at 512
simulated ranks the 27-point stencil alone is a quarter of wall-clock.
This module compiles a small shared library with the system C compiler
at first use and drives it through :mod:`ctypes`, falling back silently
to numpy when no compiler is available (nothing is ever installed).

**Determinism contract.** The C kernels perform the *exact same
per-element floating-point operation sequence* as the numpy reference
(subtractions applied shift-by-shift in the same order) and are compiled
with ``-ffp-contract=off`` so no fused-multiply-add can change rounding.
``tests/apps/test_kernels_stencil.py`` asserts bit-identical outputs
against the pure-numpy reference; simulated makespans do not depend on
which path runs.

Set ``REPRO_NO_NATIVE=1`` to force the numpy path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

import numpy as np

_SOURCE = r"""
#include <stddef.h>
#include <string.h>

/* Both kernels work in "padded space": the input is copied into the
   interior of a zero-bordered (nx+2, ny+2, nz+2) workspace, and each
   stencil shift becomes ONE long contiguous pass over the output
   workspace (halo cells accumulate garbage that is never read back),
   which the compiler auto-vectorises. Per-element operation order is
   identical to the numpy reference: out = c*u, then one subtraction per
   shift, shifts in the reference's iteration order. */

static void pack_pad(const double *restrict u, double *restrict pad,
                     ptrdiff_t nx, ptrdiff_t ny, ptrdiff_t nz)
{
    const ptrdiff_t py = ny + 2, pz = nz + 2;
    ptrdiff_t i, j;
    for (i = 0; i < nx; i++)
        for (j = 0; j < ny; j++)
            memcpy(pad + ((i + 1) * py + j + 1) * pz + 1,
                   u + (i * ny + j) * nz, nz * sizeof(double));
}

static void unpack_pad(const double *restrict opad, double *restrict out,
                       ptrdiff_t nx, ptrdiff_t ny, ptrdiff_t nz)
{
    const ptrdiff_t py = ny + 2, pz = nz + 2;
    ptrdiff_t i, j;
    for (i = 0; i < nx; i++)
        for (j = 0; j < ny; j++)
            memcpy(out + (i * ny + j) * nz,
                   opad + ((i + 1) * py + j + 1) * pz + 1,
                   nz * sizeof(double));
}

static void scale_into(const double *restrict pad, double *restrict opad,
                       double c, ptrdiff_t total)
{
    ptrdiff_t t;
    for (t = 0; t < total; t++)
        opad[t] = c * pad[t];
}

static void sub_shift(double *restrict opad, const double *restrict pad,
                      ptrdiff_t off, ptrdiff_t first, ptrdiff_t span)
{
    double *o = opad + first;
    const double *p = pad + first + off;
    ptrdiff_t t;
    for (t = 0; t < span; t++)
        o[t] -= p[t];
}

void apply_27pt(const double *restrict u, double *restrict out,
                double *restrict pad, double *restrict opad,
                ptrdiff_t nx, ptrdiff_t ny, ptrdiff_t nz)
{
    const ptrdiff_t py = ny + 2, pz = nz + 2;
    const ptrdiff_t total = (nx + 2) * py * pz;
    const ptrdiff_t first = (py + 1) * pz + 1;
    const ptrdiff_t span = ((nx - 1) * py + (ny - 1)) * pz + nz;
    ptrdiff_t s;
    pack_pad(u, pad, nx, ny, nz);
    scale_into(pad, opad, 27.0, total);
    for (s = 0; s < 27; s++) {
        const ptrdiff_t di = s / 9, dj = (s / 3) % 3, dk = s % 3;
        sub_shift(opad, pad, ((di - 1) * py + (dj - 1)) * pz + (dk - 1),
                  first, span);
    }
    unpack_pad(opad, out, nx, ny, nz);
}

void apply_7pt(const double *restrict u, double *restrict out,
               double *restrict pad, double *restrict opad,
               ptrdiff_t nx, ptrdiff_t ny, ptrdiff_t nz)
{
    const ptrdiff_t py = ny + 2, pz = nz + 2;
    const ptrdiff_t total = (nx + 2) * py * pz;
    const ptrdiff_t first = (py + 1) * pz + 1;
    const ptrdiff_t span = ((nx - 1) * py + (ny - 1)) * pz + nz;
    /* numpy reference order: axis 0 shift -1, +1; axis 1; axis 2 */
    const ptrdiff_t offs[6] = { -(py * pz), py * pz, -pz, pz, -1, 1 };
    ptrdiff_t s;
    pack_pad(u, pad, nx, ny, nz);
    scale_into(pad, opad, 6.0, total);
    for (s = 0; s < 6; s++)
        sub_shift(opad, pad, offs[s], first, span);
    unpack_pad(opad, out, nx, ny, nz);
}
"""

_CFLAGS = ["-O3", "-fPIC", "-shared", "-ffp-contract=off"]

_lib = None
_lib_tried = False
#: (nx, ny, nz) -> (pad, opad) float64 workspaces; pad borders stay zero
_workspaces: dict = {}


def _build_library():
    """Compile the kernel source into a cached shared object; None on
    any failure (no compiler, read-only filesystem, ...)."""
    tag = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    uid = getattr(os, "getuid", lambda: 0)()
    cache_dir = os.path.join(tempfile.gettempdir(),
                             "repro-match-native-%d" % uid)
    so_path = os.path.join(cache_dir, "kernels-%s.so" % tag)
    if not os.path.exists(so_path):
        try:
            os.makedirs(cache_dir, exist_ok=True)
            src_path = os.path.join(cache_dir, "kernels-%s.c" % tag)
            with open(src_path, "w") as fh:
                fh.write(_SOURCE)
            for compiler in ("cc", "gcc", "clang"):
                proc = subprocess.run(
                    [compiler] + _CFLAGS + ["-o", so_path + ".tmp", src_path],
                    capture_output=True)
                if proc.returncode == 0:
                    os.replace(so_path + ".tmp", so_path)
                    break
            else:
                return None
        except OSError:
            return None
    try:
        lib = ctypes.CDLL(so_path)
    except OSError:
        return None
    for name in ("apply_27pt", "apply_7pt"):
        fn = getattr(lib, name)
        fn.argtypes = [ctypes.c_void_p] * 4 + [ctypes.c_ssize_t] * 3
        fn.restype = None
    return lib


def native_kernels():
    """The loaded ctypes library, or None when unavailable/disabled."""
    global _lib, _lib_tried
    if not _lib_tried:
        _lib_tried = True
        if os.environ.get("REPRO_NO_NATIVE"):
            _lib = None
        else:
            _lib = _build_library()
    return _lib


def _usable(u: np.ndarray) -> bool:
    return (u.dtype == np.float64 and u.ndim == 3
            and u.flags.c_contiguous and u.size > 0)


def _workspace(shape: tuple):
    ws = _workspaces.get(shape)
    if ws is None:
        padded = (shape[0] + 2, shape[1] + 2, shape[2] + 2)
        ws = _workspaces[shape] = (np.zeros(padded), np.empty(padded))
    return ws


def native_apply(name: str, u: np.ndarray):
    """Run kernel ``name`` natively; returns None if the native path
    cannot serve this input (caller falls back to numpy)."""
    lib = native_kernels()
    if lib is None or not _usable(u):
        return None
    pad, opad = _workspace(u.shape)
    out = np.empty_like(u)
    getattr(lib, name)(u.ctypes.data, out.ctypes.data,
                       pad.ctypes.data, opad.ctypes.data, *u.shape)
    return out
