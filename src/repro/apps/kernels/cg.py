"""Distributed conjugate-gradient iteration, shared by HPCCG and miniFE.

One CG step has the communication signature the paper's apps exhibit:
a halo exchange feeding the matvec plus two global dot products
(allreduce), which is where fault-tolerance overheads bite.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ...simmpi import ops


class CgWorkspace:
    """Rank-local CG vectors for ``A x = b`` with a callable operator."""

    def __init__(self, b: np.ndarray, matvec):
        self.matvec = matvec
        self.x = np.zeros_like(b)
        self.r = b.copy()
        self.p = b.copy()
        self.rho = float(np.dot(b.ravel(), b.ravel()))
        #: scratch for axpy updates (never checkpointed)
        self._scratch = np.empty_like(b)

    def arrays(self) -> dict:
        return {"cg_x": self.x, "cg_r": self.r, "cg_p": self.p}


def cg_step(mpi, ws: CgWorkspace, comm=None):
    """One distributed CG iteration (generator); returns the new
    global residual norm squared.

    Local reductions are combined across ranks with allreduce, exactly
    two per iteration as in HPCCG.
    """
    q = ws.matvec(ws.p)
    local_pq = float(np.dot(ws.p.ravel(), q.ravel()))
    global_pq = yield from mpi.allreduce(local_pq, op=ops.SUM, comm=comm,
                                         nbytes=8)
    if global_pq == 0.0:
        # p = 0 on every rank (SPD makes each term non-negative). If the
        # residual is globally zero too, the system is exactly solved —
        # small capped systems reach this — and further iterations are
        # consistent no-ops; otherwise it is a genuine breakdown. The
        # check is collective so all ranks branch identically.
        global_rho = yield from mpi.allreduce(ws.rho, op=ops.SUM, comm=comm,
                                              nbytes=8)
        if global_rho == 0.0:
            return 0.0
        raise ConfigurationError("CG breakdown: p.A.p == 0 with r != 0")
    global_rho = yield from mpi.allreduce(ws.rho, op=ops.SUM, comm=comm,
                                          nbytes=8)
    alpha = global_rho / global_pq
    # axpy updates through the preallocated scratch: same values as
    # `x += alpha*p` / `r -= alpha*q` without a fresh temporary each call
    scratch = ws._scratch
    np.multiply(ws.p, alpha, out=scratch)
    ws.x += scratch
    np.multiply(q, alpha, out=scratch)
    ws.r -= scratch
    new_rho = float(np.dot(ws.r.ravel(), ws.r.ravel()))
    new_global_rho = yield from mpi.allreduce(new_rho, op=ops.SUM, comm=comm,
                                              nbytes=8)
    beta = new_global_rho / global_rho if global_rho else 0.0
    # in-place so FTI's protected registration keeps pointing at p
    ws.p *= beta
    ws.p += ws.r
    ws.rho = new_rho
    return new_global_rho
