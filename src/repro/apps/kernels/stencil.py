"""Structured-grid stencil kernels shared by HPCCG, miniFE and AMG.

The 27-point stencil is the operator both HPCCG and miniFE assemble
(a hexahedral tri-linear FE discretisation of -Laplace(u) = f): diagonal
26, every neighbour -1, which is symmetric positive definite on the
interior problem.
"""

from __future__ import annotations

import numpy as np

from ._accel import native_apply
from ...errors import ConfigurationError


def apply_27pt(u: np.ndarray) -> np.ndarray:
    """27-point stencil matvec on a 3-D grid with zero (Dirichlet) halo.

    ``out[i] = 26*u[i] - sum(neighbours of i)`` — equivalent to the
    HPCCG/miniFE operator rows for interior points. Served by the native
    kernel when available (bit-identical; see :mod:`._accel`).
    """
    if u.ndim != 3:
        raise ConfigurationError("apply_27pt expects a 3-D array")
    out = native_apply("apply_27pt", u)
    if out is not None:
        return out
    return apply_27pt_reference(u)


def apply_27pt_reference(u: np.ndarray) -> np.ndarray:
    """Pure-numpy 27-point stencil: the determinism reference."""
    padded = np.zeros((u.shape[0] + 2, u.shape[1] + 2, u.shape[2] + 2),
                      dtype=u.dtype)
    padded[1:-1, 1:-1, 1:-1] = u
    out = 27.0 * u.copy()
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            for dk in (-1, 0, 1):
                out -= padded[1 + di:u.shape[0] + 1 + di,
                              1 + dj:u.shape[1] + 1 + dj,
                              1 + dk:u.shape[2] + 1 + dk]
    return out


def apply_7pt(u: np.ndarray) -> np.ndarray:
    """7-point Laplacian (AMG's fine-grid operator): 6*u - neighbours."""
    if u.ndim != 3:
        raise ConfigurationError("apply_7pt expects a 3-D array")
    out = native_apply("apply_7pt", u)
    if out is not None:
        return out
    return apply_7pt_reference(u)


def apply_7pt_reference(u: np.ndarray) -> np.ndarray:
    """Pure-numpy 7-point Laplacian: the determinism reference."""
    padded = np.zeros((u.shape[0] + 2, u.shape[1] + 2, u.shape[2] + 2),
                      dtype=u.dtype)
    padded[1:-1, 1:-1, 1:-1] = u
    out = 6.0 * u
    for axis in range(3):
        for shift in (-1, 1):
            sl = [slice(1, -1)] * 3
            sl[axis] = slice(1 + shift, u.shape[axis] + 1 + shift)
            out = out - padded[tuple(sl)]
    return out


def jacobi_smooth(u: np.ndarray, f: np.ndarray, sweeps: int = 2,
                  weight: float = 0.8) -> np.ndarray:
    """Weighted-Jacobi smoothing for the 7-point operator."""
    out = u
    for _ in range(sweeps):
        residual = f - apply_7pt(out)
        out = out + weight * residual / 6.0
    return out


def restrict_full_weight(fine: np.ndarray) -> np.ndarray:
    """Full-weighting restriction by factor-2 cell averaging."""
    nx, ny, nz = (max(1, s // 2) for s in fine.shape)
    trimmed = fine[:nx * 2, :ny * 2, :nz * 2]
    return 0.125 * (
        trimmed[0::2, 0::2, 0::2] + trimmed[1::2, 0::2, 0::2]
        + trimmed[0::2, 1::2, 0::2] + trimmed[0::2, 0::2, 1::2]
        + trimmed[1::2, 1::2, 0::2] + trimmed[1::2, 0::2, 1::2]
        + trimmed[0::2, 1::2, 1::2] + trimmed[1::2, 1::2, 1::2])


def prolong_inject(coarse: np.ndarray, fine_shape: tuple) -> np.ndarray:
    """Piecewise-constant prolongation back to the fine grid."""
    fine = np.repeat(np.repeat(np.repeat(coarse, 2, 0), 2, 1), 2, 2)
    out = np.zeros(fine_shape, dtype=coarse.dtype)
    sx = min(fine.shape[0], fine_shape[0])
    sy = min(fine.shape[1], fine_shape[1])
    sz = min(fine.shape[2], fine_shape[2])
    out[:sx, :sy, :sz] = fine[:sx, :sy, :sz]
    return out


def residual_norm(u: np.ndarray, f: np.ndarray) -> float:
    """L2 norm of the 7-point residual (AMG's convergence monitor)."""
    return float(np.linalg.norm(f - apply_7pt(u)))
