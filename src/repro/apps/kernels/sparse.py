"""Sparse finite-element assembly for miniFE.

miniFE assembles the global stiffness matrix of a tri-linear hexahedral
discretisation of the Poisson problem, then solves with CG. The assembly
here builds the same 27-point sparsity as a real CSR matrix (scipy), so
the solve exercises genuine sparse matvecs.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ...errors import ConfigurationError


def assemble_poisson_27pt(nx: int, ny: int, nz: int) -> sparse.csr_matrix:
    """CSR stiffness matrix for an nx x ny x nz structured FE mesh.

    Rows follow the 27-point pattern (diagonal 26.0 scaled, neighbours
    -1.0), symmetric positive definite with Dirichlet-style boundary.
    """
    if min(nx, ny, nz) < 2:
        raise ConfigurationError("FE mesh needs at least 2 nodes per axis")
    n = nx * ny * nz
    index = np.arange(n).reshape(nx, ny, nz)
    rows, cols, vals = [], [], []
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            for dk in (-1, 0, 1):
                src = index[max(0, -di):nx - max(0, di),
                            max(0, -dj):ny - max(0, dj),
                            max(0, -dk):nz - max(0, dk)]
                dst = index[max(0, di):nx - max(0, -di),
                            max(0, dj):ny - max(0, -dj),
                            max(0, dk):nz - max(0, -dk)]
                value = 26.0 if (di, dj, dk) == (0, 0, 0) else -1.0
                rows.append(src.ravel())
                cols.append(dst.ravel())
                vals.append(np.full(src.size, value))
    matrix = sparse.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n))
    # 27.0 on the diagonal keeps boundary rows diagonally dominant (SPD)
    matrix = matrix + sparse.eye(n, format="csr")
    return matrix


def rhs_for(nx: int, ny: int, nz: int) -> np.ndarray:
    """The unit forcing vector miniFE uses."""
    return np.ones(nx * ny * nz, dtype=np.float64)
