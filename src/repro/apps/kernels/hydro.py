"""Compact Lagrangian hydrodynamics kernels (LULESH's Sedov problem).

LULESH advances a staggered hex mesh through the Sedov blast; this is a
faithful-in-structure reduction: a structured per-domain mesh carrying
density/energy/velocity, an artificial-viscosity pressure update, a
CFL-limited timestep (the ``MPI_Allreduce(MIN)`` that dominates LULESH's
communication) and an energy deposition at the origin. The physics is a
real compressible update — energy stays finite and positive, the blast
front moves outward — which is what verification checks.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError

GAMMA = 1.4  # ideal-gas constant for the Sedov problem
Q_COEF = 2.0  # artificial viscosity coefficient
CFL = 0.3


def init_sedov(edge: int, deposit_energy: bool) -> dict:
    """A cubic domain of ``edge^3`` cells, cold except the blast corner."""
    if edge < 2:
        raise ConfigurationError("domain edge must be >= 2")
    shape = (edge, edge, edge)
    fields = {
        "density": np.ones(shape),
        "energy": np.full(shape, 1e-6),
        "velocity": np.zeros(shape),
        "volume": np.ones(shape),
    }
    if deposit_energy:
        fields["energy"][0, 0, 0] = 3.48  # LULESH's initial blast energy
    return fields


def eos_pressure(density: np.ndarray, energy: np.ndarray) -> np.ndarray:
    """Ideal-gas EOS: p = (gamma - 1) rho e."""
    return (GAMMA - 1.0) * density * energy


def sound_speed(density: np.ndarray, pressure: np.ndarray) -> np.ndarray:
    return np.sqrt(GAMMA * np.maximum(pressure, 1e-12)
                   / np.maximum(density, 1e-12))


def stable_dt(fields: dict, dx: float = 1.0) -> float:
    """CFL timestep limit of this domain (reduced globally with MIN)."""
    pressure = eos_pressure(fields["density"], fields["energy"])
    cs = sound_speed(fields["density"], pressure)
    vmax = float(np.max(np.abs(fields["velocity"])) + np.max(cs))
    return CFL * dx / max(vmax, 1e-12)


def lagrange_step(fields: dict, dt: float) -> float:
    """One Lagrangian update; returns total energy (for conservation).

    Follows LULESH's phase structure: force/acceleration from pressure
    gradients (+ artificial viscosity on compression), velocity and
    volume update, then energy update from pdV work.
    """
    rho, e, v, vol = (fields["density"], fields["energy"],
                      fields["velocity"], fields["volume"])
    p = eos_pressure(rho, e)
    grad = np.zeros_like(p)
    grad[:-1, :, :] += p[1:, :, :] - p[:-1, :, :]
    grad[1:, :, :] += p[1:, :, :] - p[:-1, :, :]
    grad *= 0.5
    # artificial viscosity where the flow compresses
    div_v = np.zeros_like(v)
    div_v[:-1, :, :] = v[1:, :, :] - v[:-1, :, :]
    q = np.where(div_v < 0.0, Q_COEF * rho * div_v * div_v, 0.0)
    accel = -(grad + q) / np.maximum(rho, 1e-12)
    v_new = v + dt * accel
    dvol = dt * 0.5 * (v_new + v)
    vol_new = np.maximum(vol + dvol, 0.1)
    rho_new = rho * vol / vol_new
    # pdV work heats/cools the gas; clamp to keep energy positive
    e_new = np.maximum(e - dt * (p + q) * dvol / np.maximum(vol, 1e-12),
                       1e-9)
    fields["density"], fields["energy"] = rho_new, e_new
    fields["velocity"], fields["volume"] = v_new, vol_new
    return float(np.sum(rho_new * e_new * vol_new)
                 + 0.5 * np.sum(rho_new * v_new * v_new * vol_new))
