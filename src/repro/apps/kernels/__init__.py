"""Shared numerical kernels behind the six proxy applications."""

from .cg import CgWorkspace, cg_step
from .graph import louvain_sweep, modularity, planted_partition
from .hydro import init_sedov, lagrange_step, stable_dt
from .lennard_jones import (
    init_fcc_lattice,
    kinetic_energy,
    lj_forces,
    velocity_verlet,
)
from .multigrid import hierarchy_depth, v_cycle
from .sparse import assemble_poisson_27pt, rhs_for
from .stencil import (
    apply_7pt,
    apply_27pt,
    jacobi_smooth,
    prolong_inject,
    residual_norm,
    restrict_full_weight,
)

__all__ = [
    "CgWorkspace",
    "apply_27pt",
    "apply_7pt",
    "assemble_poisson_27pt",
    "cg_step",
    "hierarchy_depth",
    "init_fcc_lattice",
    "init_sedov",
    "jacobi_smooth",
    "kinetic_energy",
    "lagrange_step",
    "lj_forces",
    "louvain_sweep",
    "modularity",
    "planted_partition",
    "prolong_inject",
    "residual_norm",
    "restrict_full_weight",
    "rhs_for",
    "stable_dt",
    "v_cycle",
    "velocity_verlet",
]
