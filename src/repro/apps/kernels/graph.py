"""Graph generation and Louvain kernels (miniVite's workload).

miniVite runs the first phase of distributed Louvain community
detection. Here: a planted-partition random graph (communities exist by
construction, so Louvain has signal to find) and a real local-move sweep
that greedily reassigns vertices to the neighbouring community with the
best modularity gain. Modularity is verified to be non-decreasing over
sweeps, the invariant Louvain guarantees.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError


def planted_partition(nvertices: int, ncommunities: int, rng,
                      p_in: float = 0.12, p_out: float = 0.004) -> dict:
    """Adjacency (as neighbour lists) of a planted-partition graph."""
    if nvertices < 4 or ncommunities < 2:
        raise ConfigurationError("need >=4 vertices and >=2 communities")
    membership = rng.integers(0, ncommunities, size=nvertices)
    adjacency = {v: set() for v in range(nvertices)}
    # sample edges blockwise with numpy for speed
    upper_i, upper_j = np.triu_indices(nvertices, k=1)
    same = membership[upper_i] == membership[upper_j]
    probs = np.where(same, p_in, p_out)
    chosen = rng.random(len(upper_i)) < probs
    for i, j in zip(upper_i[chosen], upper_j[chosen]):
        adjacency[int(i)].add(int(j))
        adjacency[int(j)].add(int(i))
    # ensure no isolated vertices (ring fallback)
    for v in range(nvertices):
        if not adjacency[v]:
            w = (v + 1) % nvertices
            adjacency[v].add(w)
            adjacency[w].add(v)
    return {"adjacency": adjacency, "planted": membership}


def modularity(adjacency: dict, communities: np.ndarray) -> float:
    """Newman modularity Q of a community assignment."""
    degrees = {v: len(nbrs) for v, nbrs in adjacency.items()}
    two_m = sum(degrees.values())
    if two_m == 0:
        return 0.0
    q = 0.0
    comm_degree: dict = {}
    for v, nbrs in adjacency.items():
        comm_degree[communities[v]] = (comm_degree.get(communities[v], 0)
                                       + degrees[v])
        for w in nbrs:
            if communities[v] == communities[w]:
                q += 1.0
    q /= two_m
    q -= sum(d * d for d in comm_degree.values()) / (two_m * two_m)
    return q


def louvain_sweep(adjacency: dict, communities: np.ndarray) -> int:
    """One local-move sweep; mutates ``communities``; returns #moves.

    For each vertex, move it to the neighbouring community with maximal
    modularity gain (if positive) — the first phase of Louvain.
    """
    degrees = {v: len(nbrs) for v, nbrs in adjacency.items()}
    two_m = sum(degrees.values())
    if two_m == 0:
        return 0
    comm_degree: dict = {}
    for v in adjacency:
        comm_degree[communities[v]] = (comm_degree.get(communities[v], 0.0)
                                       + degrees[v])
    moves = 0
    for v in adjacency:
        current = communities[v]
        links: dict = {}
        for w in adjacency[v]:
            links[communities[w]] = links.get(communities[w], 0) + 1
        comm_degree[current] -= degrees[v]
        best_comm, best_gain = current, 0.0
        base = links.get(current, 0)
        for candidate, k_in in links.items():
            gain = (k_in / two_m
                    - degrees[v] * comm_degree.get(candidate, 0.0)
                    / (two_m * two_m))
            ref = (base / two_m
                   - degrees[v] * comm_degree.get(current, 0.0)
                   / (two_m * two_m))
            if gain - ref > best_gain + 1e-15:
                best_gain = gain - ref
                best_comm = candidate
        comm_degree[current] += degrees[v]
        if best_comm != current:
            comm_degree[current] -= degrees[v]
            comm_degree[best_comm] = (comm_degree.get(best_comm, 0.0)
                                      + degrees[v])
            communities[v] = best_comm
            moves += 1
    return moves
