"""Geometric multigrid V-cycle (the computational heart of AMG).

The real AMG proxy uses BoomerAMG's algebraic hierarchy; a geometric
hierarchy on the structured Laplace problem exercises the same pattern —
smooth / restrict / recurse / prolong / smooth — with a real contraction
of the residual per cycle, which is what the verification checks.
"""

from __future__ import annotations

import numpy as np

from .stencil import (
    apply_7pt,
    jacobi_smooth,
    prolong_inject,
    restrict_full_weight,
)


def v_cycle(u: np.ndarray, f: np.ndarray, pre_sweeps: int = 1,
            post_sweeps: int = 1, min_dim: int = 2) -> np.ndarray:
    """One V(1,1)-cycle for the 7-point Poisson problem; returns improved u."""
    if min(u.shape) <= min_dim:
        # coarse solve: enough Jacobi sweeps to be nearly exact
        return jacobi_smooth(u, f, sweeps=12)
    u = jacobi_smooth(u, f, sweeps=pre_sweeps)
    residual = f - apply_7pt(u)
    coarse_f = restrict_full_weight(residual)
    coarse_u = np.zeros_like(coarse_f)
    coarse_u = v_cycle(coarse_u, coarse_f, pre_sweeps, post_sweeps, min_dim)
    u = u + prolong_inject(coarse_u, u.shape)
    u = jacobi_smooth(u, f, sweeps=post_sweeps)
    return u


def hierarchy_depth(shape: tuple, min_dim: int = 2) -> int:
    """Number of levels a V-cycle visits for this grid."""
    depth, dims = 1, min(shape)
    while dims > min_dim:
        dims //= 2
        depth += 1
    return depth
