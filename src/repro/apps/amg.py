"""AMG: algebraic multigrid solver on an anisotropic Laplace problem.

Table I: per-process grid ``-n 20/40/60`` cubed (weak scaling). One main
loop iteration is a V-cycle on the local grid followed by the global
residual-norm reduction BoomerAMG performs, plus a face halo exchange.

The paper's AMG runtime grows only mildly with the input size (Fig. 8a)
because BoomerAMG's convergence and operator complexity do not scale
linearly with the grid; the ``INPUT_EXPONENT`` below encodes that
observed sub-linear growth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import AppState, ProxyApp, deterministic_rng, halo_exchange_1d
from .kernels.multigrid import v_cycle
from .kernels.stencil import residual_norm
from ..errors import ConfigurationError


@dataclass(frozen=True)
class AmgParams:
    """``-problem 2 -n nx ny nz`` — per-process grid (anisotropy problem)."""

    nx: int
    ny: int
    nz: int
    problem: int = 2

    @property
    def local_cells(self) -> int:
        return self.nx * self.ny * self.nz


AMG_INPUTS = {
    "small": AmgParams(20, 20, 20),
    "medium": AmgParams(40, 40, 40),
    "large": AmgParams(60, 60, 60),
}


class Amg(ProxyApp):
    """The AMG proxy: V-cycles with global convergence checks."""

    name = "amg"
    scaling = "weak"
    CAP_EDGE = 12
    FLOPS_PER_CELL = 1.66e6
    BYTES_PER_CELL = 1.6e4
    INPUT_EXPONENT = 0.15
    CKPT_BYTES_PER_RANK_SMALL = int(28e9)

    def __init__(self, nprocs: int, params: AmgParams | None = None,
                 niters: int = 40):
        super().__init__(nprocs, niters)
        self.params = params or AMG_INPUTS["small"]

    @classmethod
    def from_input(cls, nprocs: int, input_size: str) -> "Amg":
        if input_size not in AMG_INPUTS:
            raise ConfigurationError("unknown AMG input %r" % input_size)
        return cls(nprocs, AMG_INPUTS[input_size])

    # -- nominal work ----------------------------------------------------------
    def nominal_local_cells(self) -> int:
        return self.params.local_cells

    def _input_ratio(self) -> float:
        small = AMG_INPUTS["small"].local_cells
        return (self.params.local_cells / small) ** self.INPUT_EXPONENT

    def work_per_iter(self) -> tuple:
        cells = AMG_INPUTS["small"].local_cells * self._input_ratio()
        return cells * self.FLOPS_PER_CELL, cells * self.BYTES_PER_CELL

    def nominal_ckpt_bytes(self) -> int:
        return int(self.CKPT_BYTES_PER_RANK_SMALL * self._input_ratio())

    def halo_nbytes(self) -> int:
        return self.params.nx * self.params.ny * 8

    # -- state ------------------------------------------------------------------
    def make_state(self, mpi):
        edge = self.capped(self.params.nx, self.CAP_EDGE)
        rng = deterministic_rng(self.name, mpi.rank)
        f = rng.random((edge, edge, edge))
        u = np.zeros_like(f)
        state = AppState(rank=mpi.rank, nprocs=self.nprocs)
        state.arrays["amg_u"] = u
        state.arrays["amg_f"] = f
        state.extras["residuals"] = []
        state.nominal_ckpt_bytes = self.nominal_ckpt_bytes()
        # setup: hierarchy construction touches the grid several times
        yield from mpi.compute(bytes_moved=8.0 * self.nominal_local_cells()
                               * 4.0)
        return state

    def rebind(self, state: AppState) -> None:
        """All state lives in protected arrays; nothing to re-point."""

    # -- one V-cycle -----------------------------------------------------------
    def iterate(self, mpi, state: AppState, i: int):
        u, f = state.arrays["amg_u"], state.arrays["amg_f"]
        left, right = self.neighbors_1d(mpi.rank)
        yield from halo_exchange_1d(
            mpi, left, right,
            send_left=u[0, :, :].copy(), send_right=u[-1, :, :].copy(),
            nominal_nbytes=self.halo_nbytes(), tag=20)
        flops, bytes_moved = self.work_per_iter()
        yield from mpi.compute(flops=flops, bytes_moved=bytes_moved)
        u[...] = v_cycle(u, f)
        local_res = residual_norm(u, f) ** 2
        from ..simmpi import ops
        global_res = yield from mpi.allreduce(local_res, op=ops.SUM)
        state.extras["residuals"].append(float(np.sqrt(global_res)))
        state.history.append(float(np.sqrt(global_res)))

    def verify(self, state: AppState) -> bool:
        """V-cycles on the Poisson problem must contract the residual."""
        residuals = state.extras["residuals"]
        if len(residuals) < 2:
            return False
        return (residuals[-1] < residuals[0]
                and all(np.isfinite(r) for r in residuals))
