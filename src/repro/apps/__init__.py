"""The six MATCH proxy applications (paper §II-B)."""

from .amg import AMG_INPUTS, Amg, AmgParams
from .base import AppState, ProxyApp, deterministic_rng, halo_exchange_1d
from .comd import COMD_INPUTS, Comd, ComdParams
from .hpccg import HPCCG_INPUTS, Hpccg, HpccgParams
from .lulesh import LULESH_INPUTS, LULESH_PROC_COUNTS, Lulesh, LuleshParams
from .minife import MINIFE_INPUTS, Minife, MinifeParams
from .minivite import MINIVITE_INPUTS, Minivite, MiniviteParams

#: registry used by the experiment harness
APP_REGISTRY = {
    "amg": Amg,
    "comd": Comd,
    "hpccg": Hpccg,
    "lulesh": Lulesh,
    "minife": Minife,
    "minivite": Minivite,
}

__all__ = [
    "AMG_INPUTS",
    "APP_REGISTRY",
    "Amg",
    "AmgParams",
    "AppState",
    "COMD_INPUTS",
    "Comd",
    "ComdParams",
    "HPCCG_INPUTS",
    "Hpccg",
    "HpccgParams",
    "LULESH_INPUTS",
    "LULESH_PROC_COUNTS",
    "Lulesh",
    "LuleshParams",
    "MINIFE_INPUTS",
    "Minife",
    "MinifeParams",
    "MINIVITE_INPUTS",
    "Minivite",
    "MiniviteParams",
    "ProxyApp",
    "deterministic_rng",
    "halo_exchange_1d",
]
