"""The six MATCH proxy applications (paper §II-B).

``APP_REGISTRY`` is the ``app`` :class:`repro.registry.Registry`: it
maps app names to :class:`~repro.apps.base.ProxyApp` subclasses and is
the single source the config layer validates against. Registering a new
workload takes one decorator and no core edits::

    from repro.apps import APP_REGISTRY
    from repro.apps.base import ProxyApp

    @APP_REGISTRY.register("toy")
    class Toy(ProxyApp):
        ...  # must provide from_input(nprocs, input_size)

(equivalently ``@repro.registry.register("app", "toy")``).
"""

from ..errors import ConfigurationError
from ..registry import Registry
from .amg import AMG_INPUTS, Amg, AmgParams
from .base import AppState, ProxyApp, deterministic_rng, halo_exchange_1d
from .comd import COMD_INPUTS, Comd, ComdParams
from .hpccg import HPCCG_INPUTS, Hpccg, HpccgParams
from .lulesh import LULESH_INPUTS, LULESH_PROC_COUNTS, Lulesh, LuleshParams
from .minife import MINIFE_INPUTS, Minife, MinifeParams
from .minivite import MINIVITE_INPUTS, Minivite, MiniviteParams


def _check_app(name, cls):
    # configs call from_input at matrix-build time; catching a missing
    # hook at registration keeps the failure at the plugin's import
    if not callable(getattr(cls, "from_input", None)):
        raise ConfigurationError(
            "app %r must provide a from_input(nprocs, input_size) "
            "constructor" % name)


#: registry used by the experiment harness (the ``app`` registry)
APP_REGISTRY = Registry("app", validate=_check_app)
for _cls in (Amg, Comd, Hpccg, Lulesh, Minife, Minivite):
    APP_REGISTRY.add(_cls.name, _cls)
del _cls

__all__ = [
    "AMG_INPUTS",
    "APP_REGISTRY",
    "Amg",
    "AmgParams",
    "AppState",
    "COMD_INPUTS",
    "Comd",
    "ComdParams",
    "HPCCG_INPUTS",
    "Hpccg",
    "HpccgParams",
    "LULESH_INPUTS",
    "LULESH_PROC_COUNTS",
    "Lulesh",
    "LuleshParams",
    "MINIFE_INPUTS",
    "Minife",
    "MinifeParams",
    "MINIVITE_INPUTS",
    "Minivite",
    "MiniviteParams",
    "ProxyApp",
    "deterministic_rng",
    "halo_exchange_1d",
]
