"""miniVite: distributed Louvain community detection (strong scaling).

Table I: ``-p 3 -l -n`` 128000/256000/512000 vertices. Each rank owns a
slice of a planted-partition graph; one main-loop iteration is a Louvain
local-move sweep over the owned vertices, an alltoall exchanging
community updates for ghost vertices, and the global modularity
reduction that decides convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import AppState, ProxyApp, deterministic_rng
from .kernels.graph import louvain_sweep, modularity, planted_partition
from ..errors import ConfigurationError
from ..simmpi import ops


@dataclass(frozen=True)
class MiniviteParams:
    """``-p 3 -l -n nvertices`` — a generated graph of ``nvertices``."""

    nvertices: int
    percent: int = 3


MINIVITE_INPUTS = {
    "small": MiniviteParams(128000),
    "medium": MiniviteParams(256000),
    "large": MiniviteParams(512000),
}


class Minivite(ProxyApp):
    """The miniVite proxy: first-phase Louvain."""

    name = "minivite"
    scaling = "strong"
    CAP_VERTICES = 160
    FLOPS_PER_VERTEX = 56000.0
    BYTES_PER_VERTEX = 2000.0
    INPUT_EXPONENT = 0.8
    CKPT_BYTES_PER_RANK_SMALL = int(300e6)

    def __init__(self, nprocs: int, params: MiniviteParams | None = None,
                 niters: int = 20):
        super().__init__(nprocs, niters)
        self.params = params or MINIVITE_INPUTS["small"]

    @classmethod
    def from_input(cls, nprocs: int, input_size: str) -> "Minivite":
        if input_size not in MINIVITE_INPUTS:
            raise ConfigurationError("unknown miniVite input %r" % input_size)
        return cls(nprocs, MINIVITE_INPUTS[input_size])

    # -- nominal work --------------------------------------------------------
    def nominal_local_vertices(self) -> float:
        return self.params.nvertices / self.nprocs

    def _input_ratio(self) -> float:
        small = MINIVITE_INPUTS["small"].nvertices
        return (self.params.nvertices / small) ** self.INPUT_EXPONENT

    def work_per_iter(self) -> tuple:
        vertices = (MINIVITE_INPUTS["small"].nvertices / self.nprocs
                    * self._input_ratio())
        return (vertices * self.FLOPS_PER_VERTEX,
                vertices * self.BYTES_PER_VERTEX)

    def nominal_ckpt_bytes(self) -> int:
        per_rank = self.CKPT_BYTES_PER_RANK_SMALL * 64.0 / self.nprocs
        return int(per_rank * self._input_ratio())

    def ghost_block_nbytes(self) -> int:
        # per-peer community updates for ghost vertices
        per_peer = self.nominal_local_vertices() * 0.05
        return int(max(64, per_peer * 12))

    # -- state ---------------------------------------------------------------------
    def make_state(self, mpi):
        nverts = self.capped(max(16, int(self.nominal_local_vertices())),
                             self.CAP_VERTICES)
        rng = deterministic_rng(self.name, mpi.rank)
        graph = planted_partition(nverts, ncommunities=max(2, nverts // 20),
                                  rng=rng)
        communities = np.arange(nverts, dtype=np.int64)  # singleton start
        state = AppState(rank=mpi.rank, nprocs=self.nprocs)
        state.arrays["lv_comm"] = communities
        state.extras["graph"] = graph["adjacency"]
        state.extras["modularity"] = []
        state.nominal_ckpt_bytes = self.nominal_ckpt_bytes()
        yield from mpi.compute(
            bytes_moved=self.nominal_local_vertices() * 100.0)
        return state

    def rebind(self, state: AppState) -> None:
        """Communities live in a protected array; nothing to re-point."""

    # -- one Louvain sweep -------------------------------------------------------------
    def iterate(self, mpi, state: AppState, i: int):
        adjacency = state.extras["graph"]
        communities = state.arrays["lv_comm"]
        flops, bytes_moved = self.work_per_iter()
        yield from mpi.compute(flops=flops, bytes_moved=bytes_moved)
        moves = louvain_sweep(adjacency, communities)
        # ghost community updates to every peer (miniVite's alltoallv)
        block = int(moves)
        blocks = [block] * mpi.size
        total_moves_list = yield from mpi.alltoall(
            blocks, nbytes=self.ghost_block_nbytes())
        local_q = modularity(adjacency, communities)
        global_q = yield from mpi.allreduce(local_q, op=ops.SUM)
        mean_q = global_q / mpi.size
        state.extras["modularity"].append(mean_q)
        state.history.append(mean_q)
        state.extras["last_moves"] = sum(total_moves_list)

    def verify(self, state: AppState) -> bool:
        """Louvain's invariant: modularity never decreases over sweeps."""
        series = state.extras["modularity"]
        if len(series) < 2:
            return False
        return all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
