"""Exception hierarchy shared across the MATCH reproduction.

The taxonomy mirrors the failure semantics of the paper's stack:

* fail-stop process failures surface as :class:`ProcessFailedError`
  (the analogue of ``MPIX_ERR_PROC_FAILED``),
* a revoked communicator surfaces as :class:`CommRevokedError`
  (``MPIX_ERR_REVOKED``),
* an unrecoverable condition aborts the whole job with :class:`JobAbortedError`
  (``MPI_Abort``),
* checkpoint-layer problems raise :class:`CheckpointError` subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """The simulated runtime reached an inconsistent state (a bug or misuse)."""


class DeadlockError(SimulationError):
    """No rank can make progress and no pending event can fire."""


class MPIError(ReproError):
    """Base class for errors surfaced through the simulated MPI layer."""

    #: numeric error class, mirroring MPI error classes
    error_class: int = 0


class ProcessFailedError(MPIError):
    """A peer involved in the operation failed (``MPIX_ERR_PROC_FAILED``)."""

    error_class = 75

    def __init__(self, failed_ranks, message: str | None = None):
        self.failed_ranks = tuple(sorted(failed_ranks))
        super().__init__(
            message or "process failure detected: ranks %s" % (self.failed_ranks,)
        )


class CommRevokedError(MPIError):
    """The communicator was revoked by some rank (``MPIX_ERR_REVOKED``)."""

    error_class = 76

    def __init__(self, message: str = "communicator revoked"):
        super().__init__(message)


class JobAbortedError(MPIError):
    """The whole job aborted (``MPI_Abort`` or fatal error handler)."""

    error_class = 1

    def __init__(self, message: str = "job aborted", errorcode: int = 1):
        self.errorcode = errorcode
        super().__init__(message)


class RankKilledError(ReproError):
    """Internal control-flow signal: this rank received SIGTERM.

    Raised inside the failing rank's coroutine by the fault injector; never
    observable by surviving ranks (they observe :class:`ProcessFailedError`).
    """

    def __init__(self, rank: int):
        self.rank = rank
        super().__init__("rank %d killed by fault injection" % rank)


class CheckpointError(ReproError):
    """Base class for checkpoint layer failures."""


class NoCheckpointError(CheckpointError):
    """Recovery was requested but no usable checkpoint exists."""


class CorruptCheckpointError(CheckpointError):
    """A checkpoint failed integrity verification on read."""


class InsufficientRedundancyError(CheckpointError):
    """Too many shards/copies were lost for this level to reconstruct data."""


class ConfigurationError(ReproError):
    """Invalid experiment or library configuration."""
