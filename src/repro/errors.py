"""Exception hierarchy shared across the MATCH reproduction.

The taxonomy mirrors the failure semantics of the paper's stack:

* fail-stop process failures surface as :class:`ProcessFailedError`
  (the analogue of ``MPIX_ERR_PROC_FAILED``),
* a revoked communicator surfaces as :class:`CommRevokedError`
  (``MPIX_ERR_REVOKED``),
* an unrecoverable condition aborts the whole job with :class:`JobAbortedError`
  (``MPI_Abort``),
* checkpoint-layer problems raise :class:`CheckpointError` subclasses.

Harness-level failures (the campaign engine surviving *its own* faults,
not the simulated ones) live here too: :class:`WorkerLostError`,
:class:`UnitTimeoutError`, :class:`CorruptResultError` and
:class:`WatchdogError`, plus the structured, always-picklable
:class:`ErrorRecord` payload workers ship back instead of raw exception
objects (exception classes with non-trivial ``__init__`` signatures can
fail to *unpickle* in the parent, crashing the pool far from the
culprit unit).
"""

from __future__ import annotations

import traceback as _traceback
from collections.abc import Iterable, Mapping
from dataclasses import dataclass


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """The simulated runtime reached an inconsistent state (a bug or misuse)."""


class DeadlockError(SimulationError):
    """No rank can make progress and no pending event can fire."""


#: environment variable carrying the per-run scheduler-step budget; the
#: engine exports it to (spawned) workers and
#: :class:`repro.simmpi.runtime.Runtime` reads it at construction
WATCHDOG_ENV = "MATCH_SIM_WATCHDOG"


class WatchdogError(SimulationError):
    """The simulation exceeded its per-run event budget (livelock guard).

    Deterministic by construction — the same unit replays the same
    schedule — so the engine never retries it.
    """

    def __init__(self, steps: int,
                 message: str | None = None) -> None:
        self.steps = steps
        super().__init__(
            message or "simulation exceeded its watchdog budget of %d "
                       "scheduler steps (livelock?)" % steps)


class LivelockError(SimulationError):
    """Repeated failure-during-recovery stopped the job from progressing.

    Raised by the explore progress guard (:mod:`repro.explore.guards`)
    when the same recovery phase cycle repeats without the application
    completing a new iteration — a *structured* livelock verdict, caught
    long before the blunt step-count watchdog would trip. Deterministic
    by construction (same schedule, same cycle), so the engine never
    retries it.
    """

    def __init__(self, message: str | None = None,
                 cycle: "tuple[str, ...]" = (),
                 iterations_stuck_at: int = -1) -> None:
        self.cycle = tuple(cycle)
        self.iterations_stuck_at = iterations_stuck_at
        if message is None:
            message = ("no application progress across repeated recovery"
                       " (phase cycle %s repeating, iteration stuck at %d)"
                       % (" -> ".join(self.cycle) or "?",
                          iterations_stuck_at))
        super().__init__(message)


class MPIError(ReproError):
    """Base class for errors surfaced through the simulated MPI layer."""

    #: numeric error class, mirroring MPI error classes
    error_class: int = 0


class ProcessFailedError(MPIError):
    """A peer involved in the operation failed (``MPIX_ERR_PROC_FAILED``)."""

    error_class = 75

    def __init__(self, failed_ranks: "Iterable[int]",
                 message: str | None = None) -> None:
        self.failed_ranks = tuple(sorted(failed_ranks))
        super().__init__(
            message or "process failure detected: ranks %s" % (self.failed_ranks,)
        )


class CommRevokedError(MPIError):
    """The communicator was revoked by some rank (``MPIX_ERR_REVOKED``)."""

    error_class = 76

    def __init__(self, message: str = "communicator revoked"
                 ) -> None:
        super().__init__(message)


class JobAbortedError(MPIError):
    """The whole job aborted (``MPI_Abort`` or fatal error handler)."""

    error_class = 1

    def __init__(self, message: str = "job aborted",
                 errorcode: int = 1) -> None:
        self.errorcode = errorcode
        super().__init__(message)


class RankKilledError(ReproError):
    """Internal control-flow signal: this rank received SIGTERM.

    Raised inside the failing rank's coroutine by the fault injector; never
    observable by surviving ranks (they observe :class:`ProcessFailedError`).
    """

    def __init__(self, rank: int) -> None:
        self.rank = rank
        super().__init__("rank %d killed by fault injection" % rank)


class CheckpointError(ReproError):
    """Base class for checkpoint layer failures."""


class NoCheckpointError(CheckpointError):
    """Recovery was requested but no usable checkpoint exists."""


class CorruptCheckpointError(CheckpointError):
    """A checkpoint failed integrity verification on read."""


class InsufficientRedundancyError(CheckpointError):
    """Too many shards/copies were lost for this level to reconstruct data."""


class ConfigurationError(ReproError):
    """Invalid experiment or library configuration."""


# -- harness-level (campaign execution) failures ------------------------------
class UnitExecutionError(ReproError):
    """A campaign unit failed in a worker; wraps its :class:`ErrorRecord`.

    Raised by the engine when the original exception type cannot be
    reconstructed in the parent process (unimportable module, exotic
    ``__init__`` signature); the structured record is always attached.
    """

    def __init__(self, record: "ErrorRecord") -> None:
        self.record = record
        super().__init__("%s: %s" % (record.type, record.message))


class WorkerLostError(ReproError):
    """A worker process died without delivering a result (crash, OOM
    kill, hard exit). Transient: the engine may retry the unit."""

    def __init__(self, message: str = "worker process died"
                 ) -> None:
        super().__init__(message)


class UnitTimeoutError(ReproError):
    """A unit exceeded its wall-clock timeout and its worker was killed.

    Transient: a loaded machine can blow a deadline a retry meets.
    """

    def __init__(self, seconds: float) -> None:
        self.seconds = float(seconds)
        super().__init__("unit exceeded its %.1fs wall-clock timeout"
                         % self.seconds)


class CorruptResultError(ReproError):
    """A worker returned a payload that does not deserialize into a
    :class:`~repro.core.breakdown.RunResult`. Transient: runs are
    deterministic, so a clean retry yields the real payload."""


#: exception types the engine may retry — failures of the *harness*
#: (dead worker, blown deadline, store/filesystem I/O), not of the
#: simulated experiment. Everything else is treated as deterministic:
#: the simulator is a pure function of its unit, so re-running a
#: SimulationError or an application bug would burn time to fail
#: identically (and retrying only transients preserves bit-identity of
#: successful runs).
TRANSIENT_ERRORS = (WorkerLostError, UnitTimeoutError, CorruptResultError,
                    OSError)


def is_transient(exc: BaseException) -> bool:
    """Whether the campaign engine is allowed to retry after ``exc``."""
    return isinstance(exc, TRANSIENT_ERRORS)


@dataclass(frozen=True)
class ErrorRecord:
    """Structured, picklable, JSON-safe description of one failure.

    This — never the exception object itself — is what pool workers ship
    to the parent and what failure records persist in result stores:
    plain strings always pickle and always round-trip through JSON,
    whatever the original exception class looked like.
    """

    #: qualified exception type, e.g. ``"repro.errors.WatchdogError"``
    type: str
    message: str
    #: formatted traceback text ("" when synthesized parent-side)
    traceback: str
    #: whether the engine may retry the unit
    transient: bool = False

    def to_dict(self) -> dict[str, object]:
        return {"type": self.type, "message": self.message,
                "traceback": self.traceback, "transient": self.transient}

    @classmethod
    def from_dict(cls, data: "Mapping[str, object]") -> "ErrorRecord":
        return cls(type=str(data.get("type", "Exception")),
                   message=str(data.get("message", "")),
                   traceback=str(data.get("traceback", "")),
                   transient=bool(data.get("transient", False)))

    def summary(self) -> str:
        return "%s: %s" % (self.type, self.message)


def describe_error(exc: BaseException) -> ErrorRecord:
    """The :class:`ErrorRecord` for a live exception."""
    cls = type(exc)
    qualname = cls.__name__
    module = getattr(cls, "__module__", None)
    if module and module != "builtins":
        qualname = "%s.%s" % (module, qualname)
    return ErrorRecord(
        type=qualname,
        message=str(exc),
        traceback="".join(_traceback.format_exception(cls, exc,
                                                      exc.__traceback__)),
        transient=is_transient(exc))


def resurrect_error(record: ErrorRecord) -> BaseException:
    """The closest parent-side exception for a worker's error record.

    Tries to rebuild the original type from its qualified name with the
    recorded message (so ``except SimulationError`` and
    ``pytest.raises(RuntimeError, match=...)`` keep working across the
    process boundary); anything unreconstructable — unimportable module,
    an ``__init__`` demanding extra arguments — degrades to
    :class:`UnitExecutionError` instead of crashing the engine.
    """
    module_name, _, class_name = record.type.rpartition(".")
    try:
        if module_name:
            import importlib

            module = importlib.import_module(module_name)
        else:
            import builtins as module
        cls = getattr(module, class_name)
        if not (isinstance(cls, type) and issubclass(cls, BaseException)):
            raise TypeError("%r is not an exception type" % (cls,))
        exc = cls(record.message)
    # repro: ignore[EXC-BROAD] -- deliberate catch-all degrade: any
    # rebuild failure must yield UnitExecutionError, never a crash
    except Exception:
        return UnitExecutionError(record)
    exc.error_record = record
    return exc
