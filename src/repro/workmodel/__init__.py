"""Work-to-time model for charging application compute on the virtual clock."""

from .model import WorkModel

__all__ = ["WorkModel"]
