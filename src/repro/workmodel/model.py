"""Translate application work (flops, bytes touched) into virtual seconds.

A roofline-lite model: an interval of work costs the max of its compute
time and its memory time, where memory bandwidth is shared among the ranks
co-located on a node. This is what makes packing 512 ranks onto 32 nodes
(16/node) slower per rank than 64 ranks (2/node) for memory-bound kernels,
without any per-app tuning.

Applications execute *real* numerics on (possibly capped) local arrays but
charge time for the *nominal* Table I problem size through this model, so
512-rank, large-input experiments stay laptop-cheap while the reported
virtual times reflect nominal-scale behaviour (see DESIGN.md substitution
#4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.node import NodeSpec
from ..errors import ConfigurationError


@dataclass(frozen=True)
class WorkModel:
    """Prices (flops, bytes) work intervals for one rank."""

    node: NodeSpec = NodeSpec()
    #: achieved fraction of peak flops for proxy-app kernels
    flop_efficiency: float = 0.35
    #: achieved fraction of stream bandwidth
    bandwidth_efficiency: float = 0.75

    def __post_init__(self):
        if not 0 < self.flop_efficiency <= 1:
            raise ConfigurationError("flop efficiency must be in (0, 1]")
        if not 0 < self.bandwidth_efficiency <= 1:
            raise ConfigurationError("bandwidth efficiency must be in (0, 1]")

    def seconds(self, flops: float = 0.0, bytes_moved: float = 0.0,
                ranks_per_node: int = 1) -> float:
        """Virtual seconds for one rank to do this much work."""
        if flops < 0 or bytes_moved < 0:
            raise ConfigurationError("work amounts must be non-negative")
        if ranks_per_node < 1:
            raise ConfigurationError("ranks_per_node must be >= 1")
        flop_rate = self.node.flops_per_core * self.flop_efficiency
        bw_share = (self.node.memory_bandwidth * self.bandwidth_efficiency
                    / ranks_per_node)
        compute_time = flops / flop_rate if flops else 0.0
        memory_time = bytes_moved / bw_share if bytes_moved else 0.0
        return max(compute_time, memory_time)
