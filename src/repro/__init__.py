"""MATCH: an MPI fault tolerance benchmark suite — Python reproduction.

Reproduces Guo et al., *MATCH: An MPI Fault Tolerance Benchmark Suite*
(IISWC 2020) on a fully simulated HPC substrate: a deterministic MPI
runtime, an FTI-style multi-level checkpoint library, ULFM / Reinit /
Restart recovery, six proxy applications and the paper's complete
evaluation harness.

Quickstart::

    from repro import run_experiment, ExperimentConfig

    cfg = ExperimentConfig(app="hpccg", design="reinit-fti", nprocs=64,
                           input_size="small", inject_fault=True)
    result = run_experiment(cfg)
    print(result.breakdown)

Top-level convenience names are loaded lazily (PEP 562) so that low-level
subpackages (``repro.simmpi``, ``repro.fti``, ...) can be imported without
pulling in the whole application stack.
"""

__version__ = "1.0.0"

_LAZY = {
    "ExperimentConfig": ("repro.core.configs", "ExperimentConfig"),
    "FaultScenario": ("repro.faults", "FaultScenario"),
    "TABLE1": ("repro.core.configs", "TABLE1"),
    "DESIGNS": ("repro.core.designs", "DESIGNS"),
    "run_experiment": ("repro.core.harness", "run_experiment"),
    "run_experiment_averaged": ("repro.core.harness",
                                "run_experiment_averaged"),
}

__all__ = sorted(_LAZY) + ["__version__"]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError("module %r has no attribute %r"
                             % (__name__, name)) from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)


def __dir__():
    return __all__
