"""MATCH: an MPI fault tolerance benchmark suite — Python reproduction.

Reproduces Guo et al., *MATCH: An MPI Fault Tolerance Benchmark Suite*
(IISWC 2020) on a fully simulated HPC substrate: a deterministic MPI
runtime, an FTI-style multi-level checkpoint library, ULFM / Reinit /
Restart recovery, six proxy applications and the paper's complete
evaluation harness.

Quickstart — build a campaign fluently, execute it streaming::

    from repro import Campaign

    session = (Campaign()
               .apps("hpccg")
               .designs("reinit-fti", "ulfm-fti")
               .nprocs(64)
               .faults("single")
               .reps(5)
               .session())
    for event in session.stream():
        print(event)                       # live typed progress events
    for label, summary in session.campaigns().items():
        print(summary.report())

One-off runs stay one-liners::

    from repro import Campaign, ExperimentConfig
    from repro.api import run_single

    cfg = ExperimentConfig(app="hpccg", design="reinit-fti", nprocs=64,
                           input_size="small", faults="single")
    print(run_single(cfg).breakdown)

Extension points (apps, recovery designs, fault-scenario kinds, result
stores, report renderers) are registries — see :mod:`repro.registry`
and docs/API.md for the recipe. The legacy entry points
(``run_experiment``, ``run_experiment_averaged``,
``run_campaign_matrix``) remain as deprecation shims over the facade
with bit-identical results.

Top-level convenience names are loaded lazily (PEP 562) so that low-level
subpackages (``repro.simmpi``, ``repro.fti``, ...) can be imported without
pulling in the whole application stack.
"""

__version__ = "1.1.0"

_LAZY = {
    "Campaign": ("repro.api", "Campaign"),
    "Session": ("repro.api", "Session"),
    "ExperimentConfig": ("repro.core.configs", "ExperimentConfig"),
    "FaultScenario": ("repro.faults", "FaultScenario"),
    "TABLE1": ("repro.core.configs", "TABLE1"),
    "DESIGNS": ("repro.core.designs", "DESIGNS"),
    # NOTE: the registry() accessor is deliberately NOT aliased here —
    # the `repro.registry` submodule shadows any same-named package
    # attribute once imported, so the alias would unpredictably resolve
    # to the module. Use `from repro.registry import registry`.
    "register": ("repro.registry", "register"),
    "run_experiment": ("repro.core.harness", "run_experiment"),
    "run_experiment_averaged": ("repro.core.harness",
                                "run_experiment_averaged"),
}

__all__ = sorted(_LAZY) + ["__version__"]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError("module %r has no attribute %r"
                             % (__name__, name)) from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)


def __dir__():
    return __all__
