"""The unified facade: build a campaign fluently, execute it streaming.

The paper's evaluation is one conceptual object — "run this matrix of
(app, design, scale, input, fault scenario) cells and report the
breakdowns". This module is that object's API:

* :class:`Campaign` — a fluent, validated builder for the matrix and
  its execution policy (repetitions, worker processes, result store,
  shard, plugin modules).
* :class:`Session` — executes a campaign through the engine and
  **streams** typed :mod:`repro.core.events` (unit started / completed
  / skipped, with progress counts), then answers questions about the
  results: per-config runs, paper-style five-run averages, campaign
  distribution summaries.

Quickstart::

    from repro.api import Campaign

    session = (Campaign()
               .apps("hpccg", "minife")
               .designs("reinit-fti")
               .nprocs(64, 128)
               .faults("independent:3")
               .reps(5)
               .session())
    for event in session.stream():
        print(event)                      # live progress
    for label, summary in session.campaigns().items():
        print(summary.report())

Everything the legacy entry points did routes through here:
:func:`repro.core.harness.run_experiment`,
:func:`~repro.core.harness.run_experiment_averaged` and
:func:`repro.core.campaign.run_campaign_matrix` are deprecation shims
over this facade with bit-identical results, and the CLI commands are
thin adapters. Extension points (new apps, designs, scenario kinds,
store backends, report renderers) are registries — see
:mod:`repro.registry` and docs/API.md.
"""

from __future__ import annotations

import json

from .core.breakdown import average_breakdowns
from .core.configs import (
    DEFAULT_REPETITIONS,
    DESIGN_NAMES,
    NNODES,
    ExperimentConfig,
    config_to_dict,
)
from .core.engine import CampaignEngine, RunUnit, import_plugins
from .core.events import (  # noqa: F401  (re-exported for consumers)
    CampaignAborted,
    CampaignFinished,
    CampaignStarted,
    ExploreFinished,
    ExploreStarted,
    RunEvent,
    ScheduleProbed,
    UnitCompleted,
    UnitFailed,
    UnitRetrying,
    UnitSkipped,
    UnitStarted,
)
from .errors import ConfigurationError
from .fti.config import FtiConfig


def _config_key(config: ExperimentConfig) -> str:
    """Canonical identity of a config (label() is deliberately lossy)."""
    return json.dumps(config_to_dict(config), sort_keys=True,
                      separators=(",", ":"))


class Campaign:
    """Fluent builder for an evaluation matrix plus execution policy.

    Matrix methods (:meth:`apps`, :meth:`designs`, :meth:`nprocs`,
    :meth:`inputs`) each take one or more values; :meth:`configs`
    enumerates their cross product in the documented stable order
    (apps outer, then designs, then nprocs, then inputs — the shard
    contract). Scalar methods (:meth:`faults`, :meth:`seed`,
    :meth:`nnodes`, :meth:`fti`) apply to every cell. Execution
    methods (:meth:`reps`, :meth:`jobs`, :meth:`store`,
    :meth:`resume`, :meth:`shard`, :meth:`plugins`) configure the
    engine.

    Every method returns a **new** ``Campaign`` (the builder is
    immutable), so partial matrices can be shared and forked::

        base = Campaign().apps("hpccg").designs(*DESIGN_NAMES)
        clean = base.faults("none")
        faulty = base.faults("single").reps(5)

    Validation happens at :meth:`configs` time through
    :class:`~repro.core.configs.ExperimentConfig`, so unknown names
    raise :class:`ConfigurationError` messages naming the registered
    entries.
    """

    _FIELDS = dict(apps=(), designs=(), nprocs=(64,), inputs=("small",),
                   faults=None, fti=None, seed=0, nnodes=NNODES,
                   interval=None, reps=None, jobs=1, store=None,
                   resume=False, shard=None, plugins=(),
                   on_error="abort", retries=0, timeout=None,
                   sim_watchdog=None, trace=False, profile=None,
                   explicit_configs=None)

    def __init__(self, **state):
        unknown = set(state) - set(self._FIELDS)
        if unknown:
            raise ConfigurationError(
                "unknown campaign fields %s" % sorted(unknown))
        self._state = dict(self._FIELDS)
        self._state.update(state)

    #: builder fields that shape the configs themselves; meaningless —
    #: and therefore rejected — once from_configs supplied finished ones
    _CONFIG_FIELDS = frozenset({"apps", "designs", "nprocs", "inputs",
                                "faults", "fti", "seed", "nnodes",
                                "interval"})

    def _with(self, **changes) -> "Campaign":
        if self._state["explicit_configs"] is not None:
            rejected = sorted(set(changes) & self._CONFIG_FIELDS)
            if rejected:
                raise ConfigurationError(
                    "a from_configs campaign carries finished configs; "
                    "%s cannot be changed through the builder — rebuild "
                    "the ExperimentConfigs instead (e.g. with_faults/"
                    "with_seed/dataclasses.replace)" % ", ".join(rejected))
        state = dict(self._state)
        state.update(changes)
        return Campaign(**state)

    @classmethod
    def from_configs(cls, configs) -> "Campaign":
        """A campaign over an explicit, already-built config list —
        for irregular matrices the cross product cannot express (e.g.
        per-app scaling sizes).

        Execution-policy methods (reps/jobs/store/resume/shard/plugins)
        still apply; config-shaping methods (apps/designs/nprocs/inputs/
        faults/fti/seed/nnodes) raise, because silently ignoring them
        would run a different experiment than the caller asked for.
        """
        configs = list(configs)
        for config in configs:
            if not isinstance(config, ExperimentConfig):
                raise ConfigurationError(
                    "from_configs takes ExperimentConfig objects "
                    "(got %r)" % (config,))
        return cls(explicit_configs=tuple(configs))

    # -- matrix axes --------------------------------------------------------
    def apps(self, *names) -> "Campaign":
        """The proxy applications to sweep (any ``app`` registry name)."""
        return self._with(apps=tuple(names))

    def designs(self, *names) -> "Campaign":
        """The recovery designs to sweep (any ``design`` registry
        name; default: all three paper designs)."""
        return self._with(designs=tuple(names))

    def nprocs(self, *counts) -> "Campaign":
        """The scaling sizes to sweep (default: the paper's 64)."""
        return self._with(nprocs=tuple(int(c) for c in counts))

    def inputs(self, *sizes) -> "Campaign":
        """The input problem sizes to sweep (default: small)."""
        return self._with(inputs=tuple(sizes))

    # -- per-cell scalars ---------------------------------------------------
    def faults(self, scenario) -> "Campaign":
        """The fault scenario every cell runs under: a spec string
        (``"independent:3:node=1"``), scenario dict or
        :class:`~repro.faults.scenarios.FaultScenario`. ``None`` means
        no injection."""
        return self._with(faults=scenario)

    def fti(self, config=None, *, level=None) -> "Campaign":
        """The checkpoint policy: an
        :class:`~repro.fti.config.FtiConfig`, or just ``level=N``
        (node-failure scenarios need level >= 2)."""
        if config is not None and level is not None:
            raise ConfigurationError(
                "pass fti(config) or fti(level=N), not both")
        if level is not None:
            config = FtiConfig(level=level)
        return self._with(fti=config)

    def interval(self, interval) -> "Campaign":
        """The checkpoint interval every cell runs at: an int stride or
        ``"auto"`` (the Daly optimum for each cell's own scenario and
        scale, via the ``model`` registry). ``None`` keeps the paper's
        every-ten-iterations default (or whatever :meth:`fti` set)."""
        return self._with(interval=interval)

    def seed(self, seed: int) -> "Campaign":
        """Base seed mixed into every repetition's fault draw."""
        return self._with(seed=int(seed))

    def nnodes(self, nnodes: int) -> "Campaign":
        """Cluster node count (default: the paper's 32)."""
        return self._with(nnodes=int(nnodes))

    # -- execution policy ---------------------------------------------------
    def reps(self, reps) -> "Campaign":
        """Repetitions per cell. ``None`` (the default) means the
        paper's convention per cell: five for fault-injecting configs,
        one for deterministic clean runs."""
        if reps is not None:
            reps = int(reps)
            if reps < 1:
                raise ConfigurationError(
                    "a campaign needs at least one repetition per cell")
        return self._with(reps=reps)

    #: alias matching the CLI's --runs vocabulary
    runs = reps

    def jobs(self, jobs: int) -> "Campaign":
        """Worker processes (1 = serial in-process)."""
        return self._with(jobs=int(jobs))

    def store(self, store) -> "Campaign":
        """Result store: a path, ``"backend:location"`` spec or store
        object (see :mod:`repro.core.store`)."""
        return self._with(store=store)

    def resume(self, resume: bool = True) -> "Campaign":
        """Skip runs already present in the store."""
        return self._with(resume=bool(resume))

    def shard(self, shard) -> "Campaign":
        """Run only shard K of N (``"K/N"`` or ``(K, N)``)."""
        return self._with(shard=shard)

    def plugins(self, *modules) -> "Campaign":
        """Self-registering extension modules imported before execution
        — in this process *and* in every spawned worker, so registered
        apps/designs/scenario kinds resolve under ``jobs > 1`` too."""
        return self._with(plugins=tuple(modules))

    def on_error(self, policy: str) -> "Campaign":
        """Failure policy: ``"abort"`` (default — first failure
        re-raises, historical behaviour), ``"continue"`` (record a
        structured failure record, finish the sweep) or ``"retry:N"``
        (``continue`` plus up to N retries of *transient* failures per
        unit). See :mod:`repro.core.engine`."""
        from .core.engine import parse_on_error

        parse_on_error(policy)  # fail at build time, not stream time
        return self._with(on_error=str(policy))

    def retries(self, retries: int) -> "Campaign":
        """Transient-failure retries per unit (dead worker, blown
        timeout, store I/O — never deterministic simulation errors),
        with capped exponential backoff between attempts."""
        retries = int(retries)
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        return self._with(retries=retries)

    def timeout(self, timeout) -> "Campaign":
        """Per-unit wall-clock timeout in seconds, or ``"auto"`` to
        derive one from the modeled makespan of the campaign's own
        cells (:func:`repro.modeling.makespan.suggest_timeout`). A unit
        past its deadline has its worker killed and fails with a
        *transient* :class:`~repro.errors.UnitTimeoutError` (retryable).
        ``None`` disables the deadline."""
        if timeout is not None and timeout != "auto":
            timeout = float(timeout)
            if timeout <= 0:
                raise ConfigurationError("timeout must be > 0 seconds")
        return self._with(timeout=timeout)

    def sim_watchdog(self, max_steps: int) -> "Campaign":
        """Per-run simulator livelock guard: abort any run whose
        scheduler exceeds ``max_steps`` step calls with a deterministic
        (never-retried) :class:`~repro.errors.WatchdogError`."""
        max_steps = int(max_steps)
        if max_steps < 1:
            raise ConfigurationError("sim_watchdog must be >= 1")
        return self._with(sim_watchdog=max_steps)

    # -- observability ------------------------------------------------------
    def trace(self, enabled: bool = True) -> "Campaign":
        """Collect a hierarchical trace while executing: campaign →
        unit → sim-phase spans (checkpoint writes/reads, recovery
        steps), exported as Chrome trace-event JSON via
        :meth:`Session.trace` / :meth:`Session.write_trace` (or
        ``match-bench campaign --trace``). Observation only — results
        and run keys are bit-identical with tracing on or off. See
        docs/OBSERVABILITY.md."""
        return self._with(trace=bool(enabled))

    def profile(self, directory) -> "Campaign":
        """Capture a cProfile per run unit into ``directory``
        (workers dump their own files); aggregate with ``match-bench
        profile DIR``. Heavyweight — for diagnosing hot paths, not for
        routine sweeps. ``None`` disables."""
        return self._with(profile=str(directory) if directory else None)

    # -- enumeration --------------------------------------------------------
    def configs(self) -> list:
        """The matrix cells in stable order (validated on every call)."""
        import_plugins(self._state["plugins"])
        if self._state["explicit_configs"] is not None:
            return list(self._state["explicit_configs"])
        if not self._state["apps"]:
            raise ConfigurationError(
                "campaign has no apps (call .apps(...) or "
                ".from_configs(...))")
        designs = self._state["designs"] or DESIGN_NAMES
        fti = self._state["fti"]
        cells = []
        for app in self._state["apps"]:
            for design in designs:
                for nprocs in self._state["nprocs"]:
                    for input_size in self._state["inputs"]:
                        cells.append(ExperimentConfig(
                            app=app, design=design, nprocs=nprocs,
                            input_size=input_size,
                            seed=self._state["seed"],
                            nnodes=self._state["nnodes"],
                            faults=self._state["faults"],
                            interval=self._state["interval"],
                            fti=fti if fti is not None else FtiConfig()))
        return cells

    def reps_for(self, config: ExperimentConfig) -> int:
        """Resolved repetition count for one cell (the paper's
        defaults when :meth:`reps` was not called)."""
        reps = self._state["reps"]
        if reps is not None:
            return reps
        return DEFAULT_REPETITIONS if config.inject_fault else 1

    # -- pre-flight estimation ----------------------------------------------
    def predict(self, model="analytic") -> list:
        """Pre-flight cost estimate: ``(config, MakespanPrediction)``
        per matrix cell, without simulating anything.

        Prices every cell through the ``model`` registry
        (:mod:`repro.modeling`) in microseconds — the CLI's
        ``campaign --estimate`` prints this before launching, and the
        total predicted virtual cost of the sweep is
        ``sum(p.total_seconds * reps_for(c) for c, p in ...)``.
        """
        from .modeling.makespan import predict

        return [(config, predict(config, model=model))
                for config in self.configs()]

    def predict_many(self, model="analytic") -> list:
        """:meth:`predict` through the vectorized model paths.

        Bit-identical ``(config, MakespanPrediction)`` pairs — the
        equivalence is pinned by tests — with the model-protocol calls
        memoized across cells and the makespan arithmetic done in one
        numpy pass (:func:`repro.modeling.vector.predict_configs`).
        Prefer this for large matrices; ``predict`` stays as the
        obvious scalar reference.
        """
        from .modeling.vector import predict_configs

        return predict_configs(self.configs(), model=model)

    # -- execution ----------------------------------------------------------
    def session(self, engine: CampaignEngine = None) -> "Session":
        """An executable :class:`Session` over this campaign."""
        return Session(self, engine=engine)

    def stream(self):
        """Shorthand: build a session and stream its events."""
        return self.session().stream()

    def run(self) -> "Session":
        """Shorthand: build a session, drain it, return it."""
        return self.session().run()


class Session:
    """One execution of a :class:`Campaign` plus result access.

    :meth:`stream` yields the engine's typed events while executing;
    :meth:`run` drains the stream. Both are idempotent — once finished,
    the result accessors (:meth:`run_results`, :meth:`averaged`,
    :meth:`campaigns`) answer from the collected results, and a second
    ``stream()`` replays nothing (the work is done).
    """

    def __init__(self, campaign: Campaign, engine: CampaignEngine = None):
        self.campaign = campaign
        self.configs = campaign.configs()
        state = campaign._state
        self._cells = [(config, campaign.reps_for(config))
                       for config in self.configs]
        self.units = []
        self._cell_index = {}
        for config, reps in self._cells:
            self._cell_index[_config_key(config)] = (len(self.units), reps)
            self.units.extend(RunUnit(config, rep) for rep in range(reps))
        if engine is None:
            timeout = state["timeout"]
            if timeout == "auto":
                from .modeling.makespan import suggest_timeout

                timeout = suggest_timeout(self.configs)
            engine = CampaignEngine(
                jobs=state["jobs"], store_path=state["store"],
                resume=state["resume"], shard=state["shard"],
                plugins=state["plugins"], on_error=state["on_error"],
                retries=state["retries"], timeout=timeout,
                sim_watchdog=state["sim_watchdog"],
                trace_phases=state["trace"],
                profile_dir=state["profile"])
        self.engine = engine
        self.results = None
        self._active = None
        self._failure = None
        self._tracer = None
        if state["trace"]:
            from .obs.trace import Tracer

            self._tracer = Tracer()

    # -- execution ----------------------------------------------------------
    def stream(self):
        """Execute, yielding :mod:`repro.core.events` as they happen.

        Idempotent and resumable: a consumer that stops iterating
        mid-stream has not lost the work — the next ``stream()`` (or
        ``run()``) continues the same underlying execution from where
        it paused rather than re-running completed units. A session
        whose execution raised is *failed*: further ``stream()``/
        ``run()``/accessor calls raise rather than pretending the sweep
        completed (build a new session to retry; with a store attached,
        it resumes past the finished units).
        """
        while self.results is None:
            self._check_not_failed()
            if self._active is None:
                self._active = self.engine.stream(self.units)
            try:
                event = next(self._active)
            except StopIteration:
                break
            except Exception as exc:
                self._failure = exc
                raise
            if self._tracer is not None:
                self._tracer.observe(event)
            if isinstance(event, CampaignFinished):
                self.results = event.results
            yield event

    def _check_not_failed(self) -> None:
        if self._failure is not None:
            raise ConfigurationError(
                "this session's execution failed (%r); build a new "
                "session to retry — with a result store attached it "
                "resumes past the completed units" % (self._failure,))

    def run(self) -> "Session":
        """Execute to completion (draining :meth:`stream`)."""
        for _ in self.stream():
            pass
        return self

    # -- observability ------------------------------------------------------
    def trace(self) -> dict:
        """The collected trace as a Chrome trace-event JSON object
        (``{"traceEvents": [...]}``, Perfetto-viewable). Requires the
        campaign to have been built with :meth:`Campaign.trace` and the
        stream to have run."""
        if self._tracer is None:
            raise ConfigurationError(
                "tracing is off — build the campaign with .trace() "
                "(or run: match-bench campaign --trace out.json)")
        return self._tracer.to_chrome()

    def write_trace(self, path) -> str:
        """Validate and write the collected trace to ``path``."""
        if self._tracer is None:
            raise ConfigurationError(
                "tracing is off — build the campaign with .trace() "
                "(or run: match-bench campaign --trace out.json)")
        return self._tracer.write(path)

    # -- engine bookkeeping -------------------------------------------------
    @property
    def executed(self) -> int:
        """Units actually run by the last execution."""
        return self.engine.executed

    @property
    def skipped(self) -> int:
        """Units satisfied from the resume store."""
        return self.engine.skipped

    @property
    def failed(self) -> int:
        """Units whose failures were contained by ``on_error``
        (0 under the default abort policy — a failure raises)."""
        return self.engine.failed

    def failures(self) -> dict:
        """``{run key: ErrorRecord}`` for the contained failures."""
        return dict(self.engine.failures)

    # -- result access ------------------------------------------------------
    def _require_results(self) -> dict:
        if self.results is None:
            self.run()
        if self.results is None:
            # the engine stream ended without a CampaignFinished (a
            # failure unwound it): never hand accessors a None to crash
            # on downstream
            self._check_not_failed()
            raise ConfigurationError(
                "session execution did not complete; no results "
                "available")
        return self.results

    def _cell_units(self, config: ExperimentConfig) -> list:
        try:
            offset, reps = self._cell_index[_config_key(config)]
        except KeyError:
            raise ConfigurationError(
                "config %s is not part of this session's campaign"
                % config.label()) from None
        return self.units[offset:offset + reps]

    def run_results(self, config: ExperimentConfig) -> list:
        """The config's :class:`RunResult` list in repetition order
        (possibly shorter under a shard that skipped repetitions)."""
        results = self._require_results()
        return [results[u.key] for u in self._cell_units(config)
                if u.key in results]

    def averaged(self, config: ExperimentConfig):
        """The paper's five-run average for one cell, as the legacy
        :class:`~repro.core.harness.AveragedResult` (bit-identical:
        same runs, same averaging order)."""
        from .core.harness import AveragedResult

        runs = self.run_results(config)
        if not runs:
            raise ConfigurationError(
                "no runs for %s in this session (sharded out?)"
                % config.label())
        return AveragedResult(
            config_label=config.label(),
            breakdown=average_breakdowns(r.breakdown for r in runs),
            repetitions=len(runs),
            runs=runs,
        )

    def advise(self, mtbf, *, objective: str = "makespan",
               levels=(1, 2, 3, 4), calibrate: bool = True) -> dict:
        """Design advice calibrated on this session's own results.

        Fits a :class:`~repro.modeling.fit.CalibratedModel` on the
        session's completed runs (``calibrate=False`` uses the raw
        analytic model), then ranks (design, level, interval)
        combinations for every distinct workload cell the session ran
        — one entry per (app, nprocs, input, nnodes) combination, keyed
        ``"app/pN/input"`` (plus ``"/nM"`` for a non-default node
        count), each list best-first by ``objective`` — see
        :func:`repro.modeling.advisor.advise`.
        """
        from .modeling.advisor import advise as advise_rows
        from .modeling.fit import CalibratedModel, fit_session

        self._require_results()
        model = "analytic"
        if calibrate:
            model = CalibratedModel(fit_session(self))
        advice = {}
        for config in self.configs:
            label = "%s/p%d/%s" % (config.app, config.nprocs,
                                   config.input_size)
            if config.nnodes != NNODES:
                label += "/n%d" % config.nnodes
            if label in advice:
                continue
            advice[label] = advise_rows(
                config.app, config.nprocs, mtbf,
                input_size=config.input_size, nnodes=config.nnodes,
                objective=objective, levels=levels, model=model)
        return advice

    def advise_many(self, queries, *, calibrate: bool = True) -> list:
        """Batch advice through the vectorized core, calibrated on this
        session's results.

        ``queries`` is a sequence of
        :class:`~repro.service.query.AdviceQuery` (or dicts accepted by
        its ``from_dict``); returns one ranked advice list per query,
        parallel to the input, each ``==`` to what a scalar
        :func:`repro.modeling.advisor.advise` call under the same
        calibrated model returns. This is the facade the advisor
        service builds on — a service configured with this session's
        calibration serves byte-identical answers.
        """
        from .modeling.fit import CalibratedModel, fit_session
        from .service.query import AdviceQuery
        from .service.vector import advise_batch_ranked

        self._require_results()
        model = "analytic"
        if calibrate:
            model = CalibratedModel(fit_session(self))
        queries = [query if isinstance(query, AdviceQuery)
                   else AdviceQuery.from_dict(query)
                   for query in queries]
        return advise_batch_ranked(queries, model=model)

    def explore(self, config: ExperimentConfig = None, *,
                strategy: str = "exhaustive", budget: int = None,
                seed: int = None, progress=None):
        """Worst-case fault-timing search for one of this session's
        workload cells (see :mod:`repro.explore`).

        Probes the cell's fault-free phase timeline, then drives the
        named search ``strategy`` (a ``strategy`` registry entry) over
        phase-anchored candidate schedules, sharing this session's
        result store — candidate runs land there under their ordinary
        ``at-phase`` run keys, so a repeated search resumes instead of
        re-running. ``config`` defaults to the campaign's single config
        (ambiguous campaigns must name one); ``progress`` receives every
        streamed event. Returns an
        :class:`~repro.explore.engine.ExploreOutcome` whose
        ``best_config()`` replays the certified worst case.
        """
        from .explore.engine import explore as explore_search

        if config is None:
            if len(self.configs) != 1:
                raise ConfigurationError(
                    "session has %d configs; pass the one to explore"
                    % len(self.configs))
            config = self.configs[0]
        elif _config_key(config) not in self._cell_index:
            raise ConfigurationError(
                "config %s is not part of this session's campaign"
                % config.label())
        if config.faults.injects:
            config = config.with_faults("none")
        return explore_search(config, strategy=strategy, budget=budget,
                              seed=seed, store=self.engine.store,
                              progress=progress)

    def campaigns(self) -> dict:
        """``{label: CampaignResult}`` in matrix order, exactly as the
        legacy :func:`~repro.core.campaign.run_campaign_matrix`
        summarised: runs in repetition order, configs with zero runs in
        this shard omitted. Labels must be unambiguous — two configs
        ``label()`` cannot distinguish (differing only in seed, nnodes
        or fti) raise rather than silently overwrite each other's row.
        """
        from .core.campaign import CampaignResult

        self._require_results()
        summaries = {}
        for config, _reps in self._cells:
            runs = self.run_results(config)
            if runs:
                label = config.label()
                if label in summaries:
                    raise ConfigurationError(
                        "campaign configs produce duplicate labels "
                        "(label() omits seed/nnodes/fti, so vary only "
                        "fields it shows — or summarise via "
                        "run_results() per config)")
                summaries[label] = CampaignResult(
                    config_label=label, runs=runs)
        return summaries


# -- campaign-mode validation ------------------------------------------------
def check_campaign(configs, runs: int) -> None:
    """The distribution-campaign prerequisites shared by the legacy
    :func:`~repro.core.campaign.run_campaign_matrix` and the CLI
    ``campaign`` adapter: at least two runs per cell, fault-injecting
    configs only, and unambiguous labels."""
    configs = list(configs)
    if not configs:
        raise ConfigurationError("campaign matrix is empty")
    if runs is None or runs < 2:
        raise ConfigurationError(
            "a campaign needs at least two runs per cell (distributions "
            "from one sample would report std=0.0)")
    for config in configs:
        if not config.inject_fault:
            raise ConfigurationError(
                "campaigns need a fault-injecting scenario (clean runs "
                "are deterministic; one run suffices)")
    labels = [c.label() for c in configs]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(
            "campaign configs produce duplicate labels (label() omits "
            "seed/nnodes/fti, so vary only fields it shows — or sweep "
            "the others in separate invocations)")


# -- one-config conveniences -------------------------------------------------
def run_single(config: ExperimentConfig):
    """One repetition (rep 0) of one configuration — the facade's form
    of the legacy ``run_experiment``."""
    session = Campaign.from_configs([config]).reps(1).session()
    return session.run().run_results(config)[0]


def run_averaged(config: ExperimentConfig, repetitions=None):
    """The paper's averaged repetitions for one configuration — the
    facade's form of the legacy ``run_experiment_averaged``."""
    session = Campaign.from_configs([config]).reps(repetitions).session()
    return session.run().averaged(config)


__all__ = [
    "Campaign",
    "CampaignAborted",
    "CampaignFinished",
    "CampaignStarted",
    "ExploreFinished",
    "ExploreStarted",
    "RunEvent",
    "ScheduleProbed",
    "Session",
    "UnitCompleted",
    "UnitFailed",
    "UnitRetrying",
    "UnitSkipped",
    "UnitStarted",
    "check_campaign",
    "run_averaged",
    "run_single",
]
