"""The canonical advisor query: what every cache layer keys on.

A query's identity is its *resolved* form — MTBF parsed to seconds,
designs/levels normalized to tuples — so ``"4h"`` and ``14400`` are the
same cache entry, and a dict off the wire keys identically to one built
in Python. The two key views split along the service's cache layers:

``group_key``
    The MTBF-independent workload signature
    (app, nprocs, input, nnodes, designs, levels, objective). One
    :class:`~repro.modeling.vector.CellGrid` serves every query that
    shares it; the batch core groups by it.
``cache_key``
    ``group_key`` plus the MTBF — the exact-answer identity the LRU
    and the grid's bucket store key on.

Model/calibration version is deliberately *not* part of the key: the
service pairs keys with its current calibration version and flushes
wholesale on recalibration (see :mod:`repro.service.grid`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..core.configs import DESIGN_NAMES, NNODES
from ..errors import ConfigurationError
from ..fti.config import VALID_LEVELS
from ..modeling.advisor import OBJECTIVES, parse_mtbf


@dataclass(frozen=True)
class AdviceQuery:
    """One advisor question, in canonical (cache-keyable) form.

    Build via :meth:`make` or :meth:`from_dict` — they normalize and
    validate; the raw constructor trusts its arguments.
    """

    app: str
    nprocs: int
    mtbf_seconds: float
    input_size: str = "small"
    nnodes: int = NNODES
    designs: tuple = tuple(DESIGN_NAMES)
    levels: tuple = tuple(VALID_LEVELS)
    objective: str = "makespan"

    @classmethod
    def make(cls, app: str, nprocs: int, mtbf, *,
             input_size: str = "small", nnodes: int = NNODES,
             designs=DESIGN_NAMES, levels=VALID_LEVELS,
             objective: str = "makespan") -> "AdviceQuery":
        """Normalize and validate one query (MTBF via
        :func:`~repro.modeling.advisor.parse_mtbf`, sequences to
        tuples)."""
        if objective not in OBJECTIVES:
            raise ConfigurationError(
                "unknown objective %r (have %s)"
                % (objective, OBJECTIVES))
        designs = tuple(str(design) for design in designs)
        levels = tuple(int(level) for level in levels)
        if not designs or not levels:
            raise ConfigurationError(
                "an advice query needs at least one design and level")
        try:
            nprocs = int(nprocs)
            nnodes = int(nnodes)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                "nprocs/nnodes must be integers: %s" % (exc,)) from exc
        if nprocs < 1 or nnodes < 1:
            raise ConfigurationError(
                "need positive process and node counts")
        query = cls(app=str(app), nprocs=nprocs,
                    mtbf_seconds=parse_mtbf(mtbf),
                    input_size=str(input_size), nnodes=nnodes,
                    designs=designs, levels=levels, objective=objective)
        query.cache_key  # warm both key caches at construction
        return query

    @classmethod
    def from_dict(cls, data: dict) -> "AdviceQuery":
        """A query from a JSON-ish dict (the wire format).

        Required: ``app``, ``nprocs``, ``mtbf``. Optional:
        ``input_size``, ``nnodes``, ``designs``, ``levels``,
        ``objective``. Unknown fields are rejected — a typo'd field
        silently ignored would serve the wrong answer.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                "advice query must be an object, got %s"
                % type(data).__name__)
        unknown = set(data) - {"app", "nprocs", "mtbf", "input_size",
                               "nnodes", "designs", "levels",
                               "objective"}
        if unknown:
            raise ConfigurationError(
                "advice query has unknown fields %s" % sorted(unknown))
        missing = {"app", "nprocs", "mtbf"} - set(data)
        if missing:
            raise ConfigurationError(
                "advice query missing required fields %s"
                % sorted(missing))
        return cls.make(
            data["app"], data["nprocs"], data["mtbf"],
            input_size=data.get("input_size", "small"),
            nnodes=data.get("nnodes", NNODES),
            designs=data.get("designs", DESIGN_NAMES),
            levels=data.get("levels", VALID_LEVELS),
            objective=data.get("objective", "makespan"))

    def to_dict(self) -> dict:
        return {"app": self.app, "nprocs": self.nprocs,
                "mtbf": self.mtbf_seconds,
                "input_size": self.input_size, "nnodes": self.nnodes,
                "designs": list(self.designs),
                "levels": list(self.levels),
                "objective": self.objective}

    # key tuples are cached_property, not property: the batch core
    # touches them once per query per layer, and a cached_property
    # writes straight into __dict__ (bypassing the frozen guard), so
    # repeat touches are a dict hit instead of tuple construction
    @cached_property
    def group_key(self) -> tuple:
        """The MTBF-independent workload signature (one cell grid per
        distinct value)."""
        return (self.app, self.nprocs, self.input_size, self.nnodes,
                self.designs, self.levels, self.objective)

    @cached_property
    def cache_key(self) -> tuple:
        """The exact-answer identity (group + MTBF)."""
        return self.group_key + (self.mtbf_seconds,)

    def with_mtbf(self, mtbf_seconds: float) -> "AdviceQuery":
        """The same workload at a different (already-parsed) MTBF."""
        query = AdviceQuery(
            app=self.app, nprocs=self.nprocs,
            mtbf_seconds=float(mtbf_seconds),
            input_size=self.input_size, nnodes=self.nnodes,
            designs=self.designs, levels=self.levels,
            objective=self.objective)
        query.cache_key
        return query


__all__ = ["AdviceQuery"]
