"""A bounded LRU mapping with hit/miss accounting.

The service's front cache: exact query keys to fully-materialized
answers. Kept deliberately dumb — no TTLs, no weak refs, no threads —
because the service's correctness story is *versioned invalidation*
(recalibration swaps the whole cache out; see
:mod:`repro.service.core`), not entry-level expiry. ``OrderedDict``
gives O(1) get/put/evict and, since the interpreter runs one request
handler at a time on the asyncio loop, needs no locking.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigurationError

_MISSING = object()


class LRUCache:
    """Least-recently-used key/value cache of bounded size."""

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ConfigurationError(
                "LRU cache size must be >= 1 (got %r)" % (maxsize,))
        self.maxsize = int(maxsize)
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        # membership is a peek, not a use: no recency bump, no stats
        return key in self._data

    def get(self, key, default=None):
        """The cached value (bumped most-recent) or ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert/refresh an entry, evicting the oldest past maxsize."""
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats survive — they describe the
        service's lifetime, not the current generation)."""
        self._data.clear()

    def stats(self) -> dict:
        lookups = self.hits + self.misses
        return {"size": len(self._data), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / lookups) if lookups else 0.0}


__all__ = ["LRUCache"]
