"""The asyncio HTTP/JSON front end for :class:`AdvisorService`.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
``http.server``, no framework — because the request surface is five
JSON endpoints and the serving story (single event loop, vectorized
batch core, answers out of caches) does not need more:

====================  ======  =============================================
endpoint              method  body / query parameters
====================  ======  =============================================
``/advise``           GET     ``?app=&nprocs=&mtbf=`` (+ optional
                              ``input_size``/``nnodes``/``objective``/
                              ``designs``/``levels``, comma-separated)
``/advise``           POST    one query object (see
                              :meth:`~repro.service.query.AdviceQuery.
                              from_dict`)
``/advise/batch``     POST    ``{"queries": [query, ...]}`` — answers are
                              top-1 advice, parallel to the input
``/predict``          POST    ``{"configs": [config-dict, ...]}``
``/healthz``          GET     —
``/metrics``          GET     — (Prometheus text exposition)
``/metrics.json``     GET     — (legacy JSON stats snapshot)
====================  ======  =============================================

Routing and payload handling live in :meth:`AdvisorServer.
handle_request`, a pure ``(method, path, params, body) -> (status,
payload)`` function, so endpoint tests need no socket. Malformed input
maps to 400 with the :class:`~repro.errors.ConfigurationError` message
(which states the accepted grammar), unknown routes to 404, and
unexpected errors to 500 — the server never dies on a bad request.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from urllib.parse import parse_qsl, urlsplit

from ..errors import ConfigurationError, describe_error
from ..obs.prom import PROM_CONTENT_TYPE
from .core import AdvisorService
from .query import AdviceQuery

_MAX_BODY_BYTES = 16 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                500: "Internal Server Error"}


def _query_from_params(params: dict) -> AdviceQuery:
    """An AdviceQuery from GET query parameters (strings)."""
    data = dict(params)
    for key in ("designs", "levels"):
        if key in data:
            data[key] = [part for part
                         in str(data[key]).split(",") if part]
    return AdviceQuery.from_dict(data)


def _json_body(body: bytes):
    if not body:
        raise ConfigurationError("request body must be JSON")
    try:
        return json.loads(body)
    except ValueError as exc:
        raise ConfigurationError(
            "request body is not valid JSON: %s" % (exc,)) from exc


class AdvisorServer:
    """One advisor service behind an asyncio HTTP listener."""

    def __init__(self, service: AdvisorService | None = None, *,
                 host: str = "127.0.0.1", port: int = 8347):
        self.service = service or AdvisorService()
        self.host = host
        self.port = int(port)
        self._server = None

    # -- request handling (pure; no I/O) ------------------------------------
    def handle_request(self, method: str, path: str, params: dict,
                       body: bytes) -> tuple:
        """Route one request; returns ``(status, payload_dict)``."""
        stats = self.service.stats
        endpoint = path
        items = 1
        started = time.perf_counter()
        try:
            if path == "/healthz":
                if method != "GET":
                    return self._finish(stats, endpoint, started, 405,
                                        {"error": "use GET"})
                return self._finish(
                    stats, endpoint, started, 200,
                    {"status": "ok",
                     "calibration": self.service.calibration})
            if path == "/metrics":
                if method != "GET":
                    return self._finish(stats, endpoint, started, 405,
                                        {"error": "use GET"})
                # Prometheus text exposition (str payload -> text/plain);
                # the legacy JSON snapshot moved to /metrics.json.
                # Deliberately NOT recorded in stats: a scrape must not
                # perturb the registry it reads, so two idle scrapes
                # stay byte-identical.
                return 200, self.service.prometheus()
            if path == "/metrics.json":
                if method != "GET":
                    return self._finish(stats, endpoint, started, 405,
                                        {"error": "use GET"})
                return self._finish(stats, endpoint, started, 200,
                                    self.service.metrics())
            if path == "/advise":
                if method == "GET":
                    query = _query_from_params(params)
                elif method == "POST":
                    query = AdviceQuery.from_dict(_json_body(body))
                else:
                    return self._finish(stats, endpoint, started, 405,
                                        {"error": "use GET or POST"})
                rows = self.service.advise(query)
                return self._finish(
                    stats, endpoint, started, 200,
                    {"query": query.to_dict(),
                     "calibration": self.service.calibration,
                     "advice": [row.to_dict() for row in rows]})
            if path == "/advise/batch":
                if method != "POST":
                    return self._finish(stats, endpoint, started, 405,
                                        {"error": "use POST"})
                payload = _json_body(body)
                if (not isinstance(payload, dict)
                        or "queries" not in payload):
                    raise ConfigurationError(
                        'batch body must be {"queries": [...]}')
                queries = [AdviceQuery.from_dict(entry)
                           for entry in payload["queries"]]
                items = max(1, len(queries))
                answers = self.service.advise_batch(queries)
                return self._finish(
                    stats, endpoint, started, 200,
                    {"calibration": self.service.calibration,
                     "advice": [advice.to_dict()
                                for advice in answers]},
                    items=items)
            if path == "/predict":
                if method != "POST":
                    return self._finish(stats, endpoint, started, 405,
                                        {"error": "use POST"})
                payload = _json_body(body)
                if (not isinstance(payload, dict)
                        or "configs" not in payload):
                    raise ConfigurationError(
                        'predict body must be {"configs": [...]}')
                configs = payload["configs"]
                items = max(1, len(configs))
                predictions = self.service.predict(configs)
                return self._finish(
                    stats, endpoint, started, 200,
                    {"calibration": self.service.calibration,
                     "predictions": [prediction.as_dict()
                                     for prediction in predictions]},
                    items=items)
            return self._finish(stats, endpoint, started, 404,
                                {"error": "no such endpoint %r" % path})
        except ConfigurationError as exc:
            return self._finish(stats, endpoint, started, 400,
                                {"error": str(exc)}, items=items)
        except Exception as exc:  # never let a request kill the server
            record = describe_error(exc)
            return self._finish(
                stats, endpoint, started, 500,
                {"error": "%s: %s" % (record.type, record.message),
                 "error_record": record.to_dict()},
                items=items)

    def _finish(self, stats, endpoint, started, status, payload,
                items: int = 1) -> tuple:
        stats.record(endpoint, time.perf_counter() - started,
                     error=status >= 400, items=items)
        return status, payload

    # -- the wire -----------------------------------------------------------
    async def _read_request(self, reader):
        header_blob = await reader.readuntil(b"\r\n\r\n")
        if len(header_blob) > _MAX_HEADER_BYTES:
            raise ConfigurationError("request headers too large")
        head, _, _ = header_blob.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _ = lines[0].split(" ", 2)
        except ValueError:
            raise ConfigurationError(
                "malformed request line %r" % lines[0]) from None
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise ConfigurationError("request body too large")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        params = dict(parse_qsl(split.query))
        return method.upper(), split.path, params, body

    async def _handle_connection(self, reader, writer):
        try:
            while True:
                try:
                    method, path, params, body = \
                        await self._read_request(reader)
                except (asyncio.IncompleteReadError,
                        ConnectionResetError):
                    break
                except (ConfigurationError, ValueError,
                        asyncio.LimitOverrunError) as exc:
                    self._write_response(writer, 400,
                                         {"error": str(exc)})
                    await writer.drain()
                    break
                status, payload = self.handle_request(method, path,
                                                      params, body)
                self._write_response(writer, status, payload)
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _write_response(self, writer, status: int, payload):
        # str payloads are pre-rendered text (the Prometheus scrape);
        # everything else is a JSON document
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            ctype = PROM_CONTENT_TYPE.encode()
        else:
            body = json.dumps(payload).encode()
            ctype = b"application/json"
        writer.write(
            b"HTTP/1.1 %d %s\r\n"
            b"Content-Type: %s\r\n"
            b"Content-Length: %d\r\n"
            b"\r\n" % (status,
                       _STATUS_TEXT.get(status, "Status").encode(),
                       ctype, len(body)))
        writer.write(body)

    async def start(self):
        """Bind and start serving; resolves the actual port (for
        ``port=0``). Returns the asyncio server."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port,
            limit=_MAX_HEADER_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        return self._server

    async def serve(self):
        """Serve until cancelled."""
        server = await self.start()
        async with server:
            await server.serve_forever()

    def run(self):
        """Blocking entry point (the ``serve`` CLI subcommand)."""
        try:
            asyncio.run(self.serve())
        except KeyboardInterrupt:
            pass

    def start_in_thread(self) -> threading.Thread:
        """Start the server on a daemon thread (tests, notebooks);
        returns once the port is bound."""
        ready = threading.Event()
        failure: list = []

        async def _serve():
            try:
                server = await self.start()
            except OSError as exc:
                failure.append(exc)
                ready.set()
                return
            ready.set()
            async with server:
                await server.serve_forever()

        thread = threading.Thread(target=lambda: asyncio.run(_serve()),
                                  daemon=True, name="advisor-server")
        thread.start()
        ready.wait(timeout=10.0)
        if failure:
            raise failure[0]
        return thread


__all__ = ["AdvisorServer"]
