"""repro.service — the advisor as a long-running, high-QPS service.

The scalar advisor answers one query in ~1 ms; the ROADMAP's serving
story needs five orders of magnitude more headroom. This package gets
there with three layers, each one module and each testable alone:

* :mod:`~repro.service.query` — :class:`AdviceQuery`, the canonical,
  hashable query object every layer keys on.
* :mod:`~repro.service.lru` — a plain LRU mapping with hit/miss
  accounting (the per-exact-query front cache).
* :mod:`~repro.service.grid` — precomputed advice grids over
  (workload × MTBF bucket), backed by the vectorized model paths in
  :mod:`repro.modeling.vector`; versioned by the cost model's
  calibration so recalibration invalidates everything at once.
* :mod:`~repro.service.vector` — the batch query core:
  ``advise_batch(queries) -> list[Advice]`` grouping queries by
  workload and evaluating each group's grid in one numpy pass.
* :mod:`~repro.service.stats` — per-endpoint request counts and
  latency aggregates for ``/metrics``.
* :mod:`~repro.service.core` — :class:`AdvisorService`, the layered
  composition (LRU → grid → vectorized cold path) with explicit
  recalibration hooks.
* :mod:`~repro.service.http` — the asyncio HTTP/JSON front end
  (``match-bench serve``).

Every layer preserves the advisor's bit-identity contract: a served
answer — cold, grid-hit or LRU-hit — equals a fresh
:func:`repro.modeling.advisor.advise` call exactly.
"""

from .core import AdvisorService
from .grid import GridCache
from .http import AdvisorServer
from .lru import LRUCache
from .query import AdviceQuery
from .stats import ServiceStats
from .vector import advise_batch, advise_batch_ranked

__all__ = [
    "AdviceQuery",
    "AdvisorServer",
    "AdvisorService",
    "GridCache",
    "LRUCache",
    "ServiceStats",
    "advise_batch",
    "advise_batch_ranked",
]
