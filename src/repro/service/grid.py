"""Precomputed advice grids: the middle cache layer.

Two stores, both keyed by canonical query identity and both stamped
with the cost model's calibration version
(:func:`repro.modeling.costs.model_version`):

* **cell grids** — one :class:`~repro.modeling.vector.CellGrid` per
  workload signature (:attr:`~repro.service.query.AdviceQuery.
  group_key`): the scalar-priced constants the vectorized cold path
  needs. Building one costs a dozen model-protocol calls; serving from
  it costs none.
* **bucket advice** — fully-ranked advice lists precomputed at
  canonical MTBF *buckets* (``warm()``), keyed by exact
  :attr:`~repro.service.query.AdviceQuery.cache_key`. A query hits
  this layer only when its parsed MTBF equals a bucket value exactly —
  nearest-bucket answering would break the service's bit-identity
  guarantee, so there is none.

Invalidation is wholesale and version-driven: ``invalidate()`` (called
by :meth:`repro.service.core.AdvisorService.set_model` on
recalibration) drops both stores, and every cached row carries its
calibration tag so staleness is auditable from the outside.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..modeling.costs import model_version, resolve_model
from .query import AdviceQuery
from .vector import advise_batch_ranked, grid_for_query

#: the canonical MTBF bucket grid (seconds): the paper's sweep range,
#: five minutes to a week, at the resolutions operators actually quote
DEFAULT_MTBF_BUCKETS = (
    300.0, 600.0, 1800.0, 3600.0, 7200.0, 14400.0, 28800.0,
    43200.0, 86400.0, 172800.0, 604800.0)


class GridCache:
    """Versioned store of cell grids and bucket-precomputed advice."""

    def __init__(self, model="analytic", buckets=DEFAULT_MTBF_BUCKETS):
        self.model = resolve_model(model)
        self.version = model_version(self.model)
        buckets = tuple(float(b) for b in buckets)
        if any(not b > 0 for b in buckets):
            raise ConfigurationError("MTBF buckets must be positive")
        self.buckets = buckets
        self._grids: dict = {}
        self._advice: dict = {}
        self.grid_builds = 0
        self.hits = 0
        self.misses = 0

    # -- cell grids ---------------------------------------------------------
    @property
    def grids(self) -> dict:
        """The live group_key -> CellGrid mapping (what
        :func:`repro.service.vector.advise_batch` takes as ``grids``)."""
        return self._grids

    def grid(self, query: AdviceQuery):
        """The query's cell grid, building and memoizing on first use."""
        key = query.group_key
        grid = self._grids.get(key)
        if grid is None:
            grid = grid_for_query(query, model=self.model)
            self._grids[key] = grid
            self.grid_builds += 1
        return grid

    # -- bucket advice ------------------------------------------------------
    def lookup(self, query: AdviceQuery):
        """The precomputed ranked advice for this exact query, or
        ``None``. Hits require exact cache-key equality (bucket MTBF
        included) — never approximation."""
        rows = self._advice.get(query.cache_key)
        if rows is None:
            self.misses += 1
            return None
        self.hits += 1
        return rows

    def warm(self, workloads) -> int:
        """Precompute ranked advice for each workload × MTBF bucket.

        ``workloads`` is an iterable of
        :class:`~repro.service.query.AdviceQuery` (their own MTBF is
        ignored; each is expanded over :attr:`buckets`). Returns the
        number of (workload, bucket) entries now resident. Also builds
        and retains each workload's cell grid, so even off-bucket
        queries against a warmed workload skip model pricing.
        """
        todo = []
        for workload in workloads:
            self.grid(workload)
            for bucket in self.buckets:
                query = workload.with_mtbf(bucket)
                if query.cache_key not in self._advice:
                    todo.append(query)
        if todo:
            ranked = advise_batch_ranked(todo, model=self.model,
                                         grids=self._grids)
            for query, rows in zip(todo, ranked):
                self._advice[query.cache_key] = rows
        return len(self._advice)

    # -- lifecycle ----------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every grid and precomputed answer (recalibration)."""
        self._grids.clear()
        self._advice.clear()

    def set_model(self, model) -> str:
        """Swap the cost model; if its calibration version differs,
        every cached entry is invalidated. Returns the live version."""
        model = resolve_model(model)
        version = model_version(model)
        if version != self.version:
            self.invalidate()
        self.model = model
        self.version = version
        return self.version

    def stats(self) -> dict:
        lookups = self.hits + self.misses
        return {"version": self.version, "grids": len(self._grids),
                "precomputed": len(self._advice),
                "grid_builds": self.grid_builds,
                "buckets": len(self.buckets),
                "hits": self.hits, "misses": self.misses,
                "hit_rate": (self.hits / lookups) if lookups else 0.0}


__all__ = ["DEFAULT_MTBF_BUCKETS", "GridCache"]
