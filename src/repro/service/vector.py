"""The batch advise core: whole query arrays through the numpy paths.

``advise_batch`` answers N queries in two passes: group the queries by
their MTBF-independent workload signature
(:attr:`~repro.service.query.AdviceQuery.group_key`), then evaluate
each group's :class:`~repro.modeling.vector.CellGrid` against the
group's MTBF vector in one numpy sweep. Per-query Python work is
reduced to materializing the answer objects — no model-protocol calls,
no interval arithmetic, no sorting — which is where the ~100× over the
scalar advisor comes from.

Bit-identity: the component arrays come from
:func:`repro.modeling.vector.evaluate_grid` (exact scalar
reproduction), and the top cell per query is selected by
:func:`~repro.modeling.vector.top_cell_indexes`, which picks the same
cell a stable sort under :func:`repro.modeling.advisor._rank_key`
ranks first. ``advise_batch_ranked`` materializes every cell and runs
that very ``_rank_key`` sort, so full rankings are *identical* lists
to :func:`repro.modeling.advisor.advise` — the equivalence tests pin
``==`` on both.
"""

from __future__ import annotations

import numpy as np

from ..modeling.advisor import Advice, _rank_key
from ..modeling.costs import model_version, resolve_model
from ..modeling.makespan import MakespanPrediction
from ..modeling.vector import (
    CellGrid,
    build_cell_grid,
    evaluate_grid,
    top_cell_indexes,
)


def grid_for_query(query, model="analytic") -> CellGrid:
    """Build the cell grid one query's workload signature needs."""
    return build_cell_grid(
        query.app, query.nprocs, input_size=query.input_size,
        nnodes=query.nnodes, designs=query.designs,
        levels=query.levels, model=model)


def _new_prediction(app, design, nprocs, level, stride, work, ckpt,
                    recovery, rework, failures, total):
    # hot path: bypass the frozen-dataclass __init__ (one guarded
    # object.__setattr__ per field) — same fields, same values
    pred = MakespanPrediction.__new__(MakespanPrediction)
    pred.__dict__.update(
        app=app, design=design, nprocs=nprocs, fti_level=level,
        interval=stride, app_seconds=work, ckpt_write_seconds=ckpt,
        recovery_seconds=recovery, rework_seconds=rework,
        expected_failures=failures, total_seconds=total)
    return pred


def _new_advice(design, level, stride, prediction, calibration):
    row = Advice.__new__(Advice)
    row.__dict__.update(
        design=design, fti_level=level, interval=stride,
        prediction=prediction, calibration=calibration)
    return row


def _group_indexes(queries) -> dict:
    groups: dict = {}
    for index, query in enumerate(queries):
        groups.setdefault(query.group_key, []).append(index)
    return groups


def _dedupe(queries) -> tuple:
    """``(unique_queries, slot_per_input)``: one evaluation slot per
    distinct cache key.

    A production query stream repeats heavily (few workloads, few
    quoted MTBFs), and Advice is frozen — so duplicates can *share*
    the one materialized answer object instead of paying Python object
    construction per duplicate. This is where batch throughput on
    realistic streams comes from; an all-unique batch just pays one
    dict probe per query.
    """
    slot_of: dict = {}
    unique: list = []
    slots: list = []
    for query in queries:
        key = query.cache_key
        slot = slot_of.get(key)
        if slot is None:
            slot = slot_of[key] = len(unique)
            unique.append(query)
        slots.append(slot)
    return unique, slots


def advise_batch(queries, model="analytic", grids=None) -> list:
    """Top-ranked :class:`~repro.modeling.advisor.Advice` per query.

    ``queries`` is a sequence of
    :class:`~repro.service.query.AdviceQuery`; the result is parallel
    to it. Each answer is the row a fresh
    :func:`repro.modeling.advisor.advise` call would rank first under
    the query's objective — bit-identical, prediction and all.
    Duplicate queries share one (frozen) answer object.

    ``grids`` optionally maps
    :attr:`~repro.service.query.AdviceQuery.group_key` to a prebuilt
    :class:`~repro.modeling.vector.CellGrid` (the grid cache passes its
    store); missing groups are priced on the fly.
    """
    all_queries = list(queries)
    if not all_queries:
        return []
    queries, slots = _dedupe(all_queries)
    model = resolve_model(model)
    calibration = model_version(model)
    results: list = [None] * len(queries)
    for group_key, indexes in _group_indexes(queries).items():
        first = queries[indexes[0]]
        grid = grids.get(group_key) if grids is not None else None
        if grid is None:
            grid = grid_for_query(first, model=model)
        mtbf = np.fromiter(
            (queries[i].mtbf_seconds for i in indexes),
            dtype=np.float64, count=len(indexes))
        predictions = evaluate_grid(grid, mtbf)
        top = top_cell_indexes(predictions, first.objective)
        pick = top[:, None]

        def _take(array):
            return np.take_along_axis(array, pick, axis=1)[:, 0].tolist()

        strides = _take(predictions.stride)
        works = np.take(grid.work_seconds, top).tolist()
        ckpts = _take(predictions.ckpt_total)
        recoveries = _take(predictions.recovery_total)
        reworks = _take(predictions.rework_total)
        failures = _take(predictions.expected_failures)
        totals = _take(predictions.total)
        cells = top.tolist()
        app, nprocs = grid.app, grid.nprocs
        for j, query_index in enumerate(indexes):
            design, level = grid.cell(cells[j])
            prediction = _new_prediction(
                app, design, nprocs, level, strides[j], works[j],
                ckpts[j], recoveries[j], reworks[j], failures[j],
                totals[j])
            results[query_index] = _new_advice(
                design, level, strides[j], prediction, calibration)
    return [results[slot] for slot in slots]


def advise_batch_ranked(queries, model="analytic", grids=None) -> list:
    """Full ranked advice lists, one per query.

    The vectorized sibling of calling
    :func:`repro.modeling.advisor.advise` per query: every
    (design × level) cell is materialized and sorted with the scalar
    advisor's own rank key, so each returned list compares ``==`` to
    the scalar call's. Duplicate queries share one ranking list. Used
    where the whole ranking is the answer (the ``/advise`` endpoint,
    ``Session.advise_many``, grid warming); ``advise_batch`` is the
    lighter top-1 path.
    """
    all_queries = list(queries)
    if not all_queries:
        return []
    queries, slots = _dedupe(all_queries)
    model = resolve_model(model)
    calibration = model_version(model)
    results: list = [None] * len(queries)
    for group_key, indexes in _group_indexes(queries).items():
        first = queries[indexes[0]]
        grid = grids.get(group_key) if grids is not None else None
        if grid is None:
            grid = grid_for_query(first, model=model)
        key = _rank_key(first.objective)
        mtbf = np.fromiter(
            (queries[i].mtbf_seconds for i in indexes),
            dtype=np.float64, count=len(indexes))
        predictions = evaluate_grid(grid, mtbf)
        strides = predictions.stride.tolist()
        ckpts = predictions.ckpt_total.tolist()
        recoveries = predictions.recovery_total.tolist()
        reworks = predictions.rework_total.tolist()
        failures = predictions.expected_failures.tolist()
        totals = predictions.total.tolist()
        works = grid.work_seconds.tolist()
        cells = [grid.cell(c) for c in range(grid.ncells)]
        app, nprocs = grid.app, grid.nprocs
        for j, query_index in enumerate(indexes):
            rows = [
                _new_advice(design, level, strides[j][c],
                            _new_prediction(app, design, nprocs, level,
                                            strides[j][c], works[c],
                                            ckpts[j][c], recoveries[j][c],
                                            reworks[j][c], failures[j][c],
                                            totals[j][c]),
                            calibration)
                for c, (design, level) in enumerate(cells)]
            rows.sort(key=key)
            results[query_index] = rows
    return [results[slot] for slot in slots]


__all__ = ["advise_batch", "advise_batch_ranked", "grid_for_query"]
