"""Per-endpoint request accounting — a shim over :mod:`repro.obs`.

Historically this module owned its own bespoke counters; it is now a
thin mirror: every :meth:`EndpointStats.record` updates (1) the local
window state that backs the exact legacy ``/metrics.json`` shape —
lifetime counts, mean/min/max, nearest-rank p50/p95 over the last
``window`` samples — and (2) the process-wide
:data:`repro.obs.metrics.REGISTRY`, which is what ``/metrics`` serves
in Prometheus text format:

* ``match_service_requests_total{endpoint=...}``
* ``match_service_errors_total{endpoint=...}``
* ``match_service_items_total{endpoint=...}`` (batch fan-in)
* ``match_service_request_seconds{endpoint=...}`` (histogram)

The local fields keep per-instance zero-based semantics (tests build
fresh ServiceStats); the registry keeps cumulative Prometheus
semantics across every instance in the process. The registry's lock
also makes ``record`` safe when a threaded server front-end drives it
concurrently — the asyncio loop needs no locking, but the shim no
longer assumes it is the only writer.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigurationError
from ..obs.metrics import REGISTRY as OBS_REGISTRY

_REQUESTS = OBS_REGISTRY.counter(
    "match_service_requests_total", "Service requests, by endpoint")
_ERRORS = OBS_REGISTRY.counter(
    "match_service_errors_total", "Service error responses, by endpoint")
_ITEMS = OBS_REGISTRY.counter(
    "match_service_items_total",
    "Queries served including batch fan-in, by endpoint")
_LATENCY = OBS_REGISTRY.histogram(
    "match_service_request_seconds",
    "Request handling latency in seconds, by endpoint")


class EndpointStats:
    """One endpoint's counters and latency window."""

    def __init__(self, window: int = 1024, name: str = ""):
        self.name = name
        self.requests = 0
        self.errors = 0
        self.items = 0
        self.total_seconds = 0.0
        self.min_seconds = None
        self.max_seconds = None
        self._recent = deque(maxlen=window)

    def record(self, seconds: float, *, error: bool = False,
               items: int = 1) -> None:
        self.requests += 1
        self.items += items
        if error:
            self.errors += 1
        seconds = float(seconds)
        self.total_seconds += seconds
        if self.min_seconds is None or seconds < self.min_seconds:
            self.min_seconds = seconds
        if self.max_seconds is None or seconds > self.max_seconds:
            self.max_seconds = seconds
        self._recent.append(seconds)
        # mirror into the process registry (the /metrics side)
        endpoint = self.name or "?"
        _REQUESTS.inc(endpoint=endpoint)
        if error:
            _ERRORS.inc(endpoint=endpoint)
        _ITEMS.inc(items, endpoint=endpoint)
        _LATENCY.observe(seconds, endpoint=endpoint)

    def _percentile(self, ordered, fraction: float) -> float:
        # nearest-rank on the recent window
        rank = max(0, min(len(ordered) - 1,
                          int(round(fraction * (len(ordered) - 1)))))
        return ordered[rank]

    def snapshot(self) -> dict:
        data = {"requests": self.requests, "errors": self.errors,
                "items": self.items,
                "latency_total_seconds": self.total_seconds,
                "latency_mean_seconds": (
                    self.total_seconds / self.requests
                    if self.requests else 0.0),
                "latency_min_seconds": self.min_seconds,
                "latency_max_seconds": self.max_seconds}
        if self._recent:
            ordered = sorted(self._recent)
            data["latency_p50_seconds"] = self._percentile(ordered, 0.50)
            data["latency_p95_seconds"] = self._percentile(ordered, 0.95)
        return data


class ServiceStats:
    """The service's endpoint-keyed stats registry."""

    def __init__(self, window: int = 1024):
        if window < 1:
            raise ConfigurationError(
                "stats window must be >= 1 (got %r)" % (window,))
        self.window = int(window)
        self._endpoints: dict = {}

    def endpoint(self, name: str) -> EndpointStats:
        stats = self._endpoints.get(name)
        if stats is None:
            stats = self._endpoints[name] = EndpointStats(self.window,
                                                          name=name)
        return stats

    def record(self, name: str, seconds: float, *, error: bool = False,
               items: int = 1) -> None:
        """Record one request against ``name`` (``items`` counts the
        queries inside a batch request, so QPS is derivable)."""
        self.endpoint(name).record(seconds, error=error, items=items)

    def snapshot(self) -> dict:
        return {name: stats.snapshot()
                for name, stats in sorted(self._endpoints.items())}


__all__ = ["EndpointStats", "ServiceStats"]
