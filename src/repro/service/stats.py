"""Per-endpoint request accounting for ``/metrics``.

Counts and latency aggregates, plus approximate percentiles from a
bounded window of recent samples (exact mean/min/max over the service
lifetime; p50/p95 over the last ``window`` requests per endpoint —
a serving dashboard wants recent tail latency, not all-time). No
locking: the asyncio server records from a single event loop.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigurationError


class EndpointStats:
    """One endpoint's counters and latency window."""

    def __init__(self, window: int = 1024):
        self.requests = 0
        self.errors = 0
        self.items = 0
        self.total_seconds = 0.0
        self.min_seconds = None
        self.max_seconds = None
        self._recent = deque(maxlen=window)

    def record(self, seconds: float, *, error: bool = False,
               items: int = 1) -> None:
        self.requests += 1
        self.items += items
        if error:
            self.errors += 1
        seconds = float(seconds)
        self.total_seconds += seconds
        if self.min_seconds is None or seconds < self.min_seconds:
            self.min_seconds = seconds
        if self.max_seconds is None or seconds > self.max_seconds:
            self.max_seconds = seconds
        self._recent.append(seconds)

    def _percentile(self, ordered, fraction: float) -> float:
        # nearest-rank on the recent window
        rank = max(0, min(len(ordered) - 1,
                          int(round(fraction * (len(ordered) - 1)))))
        return ordered[rank]

    def snapshot(self) -> dict:
        data = {"requests": self.requests, "errors": self.errors,
                "items": self.items,
                "latency_total_seconds": self.total_seconds,
                "latency_mean_seconds": (
                    self.total_seconds / self.requests
                    if self.requests else 0.0),
                "latency_min_seconds": self.min_seconds,
                "latency_max_seconds": self.max_seconds}
        if self._recent:
            ordered = sorted(self._recent)
            data["latency_p50_seconds"] = self._percentile(ordered, 0.50)
            data["latency_p95_seconds"] = self._percentile(ordered, 0.95)
        return data


class ServiceStats:
    """The service's endpoint-keyed stats registry."""

    def __init__(self, window: int = 1024):
        if window < 1:
            raise ConfigurationError(
                "stats window must be >= 1 (got %r)" % (window,))
        self.window = int(window)
        self._endpoints: dict = {}

    def endpoint(self, name: str) -> EndpointStats:
        stats = self._endpoints.get(name)
        if stats is None:
            stats = self._endpoints[name] = EndpointStats(self.window)
        return stats

    def record(self, name: str, seconds: float, *, error: bool = False,
               items: int = 1) -> None:
        """Record one request against ``name`` (``items`` counts the
        queries inside a batch request, so QPS is derivable)."""
        self.endpoint(name).record(seconds, error=error, items=items)

    def snapshot(self) -> dict:
        return {name: stats.snapshot()
                for name, stats in sorted(self._endpoints.items())}


__all__ = ["EndpointStats", "ServiceStats"]
