"""AdvisorService: the layered composition the HTTP front end serves.

Answer path for one query, in order:

1. **LRU** (:mod:`repro.service.lru`) — exact-query hit returns the
   previously materialized ranking.
2. **Grid** (:mod:`repro.service.grid`) — a warmed (workload × MTBF
   bucket) entry, hit only on exact cache-key equality.
3. **Cold** (:mod:`repro.service.vector`) — vectorized evaluation over
   the workload's cell grid (built and memoized on first touch), then
   stored back into the LRU.

All three layers return the *same bits*: the cached objects are the
vectorized path's output, and the vectorized path is pinned
bit-identical to :func:`repro.modeling.advisor.advise`. Recalibration
(:meth:`set_model` / :meth:`recalibrate`) swaps the model, and a
calibration-version change atomically invalidates every layer — a
served answer can never mix constants from two calibrations.
"""

from __future__ import annotations

from ..core.configs import config_from_dict
from ..modeling.fit import CalibratedModel, fit_store
from ..modeling.vector import predict_configs
from .grid import DEFAULT_MTBF_BUCKETS, GridCache
from .lru import LRUCache
from .query import AdviceQuery
from .stats import ServiceStats
from .vector import advise_batch, advise_batch_ranked


class AdvisorService:
    """The advisor behind a query-object API, with layered caching."""

    def __init__(self, model="analytic", *, query_cache_size: int = 4096,
                 buckets=DEFAULT_MTBF_BUCKETS, stats_window: int = 1024):
        self.grids = GridCache(model=model, buckets=buckets)
        self.queries = LRUCache(maxsize=query_cache_size)
        self.stats = ServiceStats(window=stats_window)

    # -- model lifecycle ----------------------------------------------------
    @property
    def model(self):
        return self.grids.model

    @property
    def calibration(self) -> str:
        """The live calibration version; every answer served now
        carries this tag."""
        return self.grids.version

    def set_model(self, model) -> str:
        """Swap the cost model. A calibration-version change clears the
        query cache and the grid cache together — no layer may serve
        rows priced under the old constants. Returns the new version.
        """
        old = self.grids.version
        version = self.grids.set_model(model)
        if version != old:
            self.queries.clear()
        return version

    def recalibrate(self, store_specs, base="analytic") -> str:
        """Refit constants from result stores
        (:func:`repro.modeling.fit.fit_store`) and install the
        calibrated model. Returns the new calibration version."""
        constants = fit_store(store_specs, base=base)
        return self.set_model(CalibratedModel(constants, base=base))

    def warm(self, workloads) -> int:
        """Precompute grids and bucket advice (see
        :meth:`repro.service.grid.GridCache.warm`)."""
        return self.grids.warm(workloads)

    # -- queries ------------------------------------------------------------
    def advise(self, query: AdviceQuery) -> list:
        """Full ranked advice for one query, through the layers."""
        key = query.cache_key
        rows = self.queries.get(key)
        if rows is not None:
            return rows
        rows = self.grids.lookup(query)
        if rows is None:
            self.grids.grid(query)
            rows = advise_batch_ranked(
                [query], model=self.model, grids=self.grids.grids)[0]
        self.queries.put(key, rows)
        return rows

    def advise_batch(self, queries) -> list:
        """Top-ranked advice per query (parallel to the input).

        Cached rankings (LRU or grid) answer with their first row;
        the misses go through one vectorized sweep. Top-1 answers are
        not written back to the LRU — only full rankings are cached,
        so a later ``advise`` of the same query does the work once.
        """
        queries = list(queries)
        answers: list = [None] * len(queries)
        cold: list = []
        cold_indexes: list = []
        for index, query in enumerate(queries):
            rows = self.queries.get(query.cache_key)
            if rows is None:
                rows = self.grids.lookup(query)
            if rows is not None:
                answers[index] = rows[0]
            else:
                self.grids.grid(query)
                cold.append(query)
                cold_indexes.append(index)
        if cold:
            for index, advice in zip(
                    cold_indexes,
                    advise_batch(cold, model=self.model,
                                 grids=self.grids.grids)):
                answers[index] = advice
        return answers

    def predict(self, configs) -> list:
        """Vectorized makespan predictions for experiment configs.

        ``configs`` may be :class:`~repro.core.configs.
        ExperimentConfig` objects or their dict form (the wire format).
        Returns predictions parallel to the input, bit-identical to
        :func:`repro.modeling.makespan.predict` per config.
        """
        resolved = [config_from_dict(config) if isinstance(config, dict)
                    else config for config in configs]
        return [prediction for _, prediction
                in predict_configs(resolved, model=self.model)]

    # -- observability ------------------------------------------------------
    def metrics(self) -> dict:
        return {"calibration": self.calibration,
                "query_cache": self.queries.stats(),
                "grid_cache": self.grids.stats(),
                "endpoints": self.stats.snapshot()}

    def prometheus(self) -> str:
        """The process registry in Prometheus text exposition format.

        Endpoint counters/latency stream in live via the
        :mod:`repro.service.stats` shim; cache stats are point-in-time,
        so their gauges are synced here at scrape time. Output is a
        pure function of the metric state — two idle scrapes are
        byte-identical.
        """
        from ..obs.metrics import REGISTRY
        from ..obs.prom import render_prometheus

        gauge = REGISTRY.gauge(
            "match_service_cache_stat",
            "Advisor cache statistics, by cache and stat name")
        for cache_name, stats in (("query", self.queries.stats()),
                                  ("grid", self.grids.stats())):
            for stat_name in sorted(stats):
                value = stats[stat_name]
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    continue  # e.g. the model-version string
                gauge.set(float(value), cache=cache_name, stat=stat_name)
        return render_prometheus(REGISTRY.snapshot())


__all__ = ["AdvisorService"]
