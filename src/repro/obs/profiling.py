"""Opt-in cProfile capture per RunUnit, with cross-worker aggregation.

``--profile DIR`` (or ``Campaign.profile(DIR)``) wraps every
``execute_unit`` call — serial loop and spawn-pool workers alike — in
a :class:`cProfile.Profile` and dumps the stats to
``DIR/<run_key>.a<attempt>.pstats``. Workers write their own files
(pstats dumps are just pickles; the filesystem is the cheapest pipe
for them), and ``match-bench profile DIR`` aggregates every dump with
:meth:`pstats.Stats.add` into one ranked hotspot table.

Profiling is heavyweight (~2x slowdown) and therefore never implied by
tracing or metrics; it exists to answer "where does the campaign burn
its cycles" when the trace shows a wide span.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from contextlib import contextmanager

from ..errors import ConfigurationError


@contextmanager
def maybe_profile(directory, key, attempt=1):
    """Profile the body into ``directory`` keyed by run key + attempt.

    A falsy ``directory`` makes this a plain no-op context, so call
    sites need no branching. The directory is created on first use.
    """
    if not directory:
        yield None
        return
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "%s.a%d.pstats" % (key, attempt))
        profile.dump_stats(path)


def profile_paths(directory):
    """The sorted pstats dumps under ``directory``."""
    try:
        names = os.listdir(directory)
    except OSError as exc:
        raise ConfigurationError(
            "cannot read profile directory %r: %s" % (directory, exc))
    return [os.path.join(directory, name) for name in sorted(names)
            if name.endswith(".pstats")]


def aggregate_profiles(directory):
    """Merge every per-unit dump into one :class:`pstats.Stats`.

    Returns ``(stats, n_dumps)``; raises if the directory holds none —
    an empty hotspot table usually means the campaign ran without
    ``--profile`` and silence would hide that.
    """
    paths = profile_paths(directory)
    if not paths:
        raise ConfigurationError(
            "no .pstats dumps in %r — was the campaign run with "
            "--profile?" % (directory,))
    stats = pstats.Stats(paths[0])
    for path in paths[1:]:
        stats.add(path)
    return stats, len(paths)


def hotspot_rows(stats, top=20, sort="cumulative"):
    """The ranked hotspot table as plain dicts.

    ``sort`` is ``"cumulative"`` (time incl. callees — where the run
    *lives*) or ``"internal"`` (own time — where the cycles *burn*).
    """
    if sort not in ("cumulative", "internal"):
        raise ConfigurationError(
            "sort must be 'cumulative' or 'internal' (got %r)" % (sort,))
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, line, name = func
        where = name if filename == "~" else "%s:%d:%s" % (
            os.path.basename(filename), line, name)
        rows.append({"func": where, "calls": nc, "primitive": cc,
                     "internal": tt, "cumulative": ct})
    key = "cumulative" if sort == "cumulative" else "internal"
    rows.sort(key=lambda r: (-r[key], r["func"]))
    return rows[:top]


def format_hotspots(rows, n_dumps):
    """Render the hotspot rows as the CLI's ranked table."""
    lines = ["aggregated %d profile dump(s); top %d by %s:"
             % (n_dumps, len(rows), "time"),
             "%10s %12s %12s  %s" % ("calls", "internal(s)",
                                     "cumulative(s)", "function")]
    for row in rows:
        lines.append("%10d %12.4f %12.4f  %s"
                     % (row["calls"], row["internal"], row["cumulative"],
                        row["func"]))
    return "\n".join(lines)
