"""Trace spans: campaign events + phase hooks -> Chrome trace JSON.

Two signal sources merge into one hierarchical trace:

* the **campaign event stream** (``repro.core.events``) supplies the
  outer spans — the campaign itself and every unit attempt, stamped
  with wall time (``time.perf_counter``) as the events pass through
  :meth:`Tracer.observe`;
* the **phase-hook protocol** (PR 9, ``repro.explore.timeline``)
  supplies the inner spans — iterations, ``ckpt.L<n>.write/read``,
  ULFM repair steps, Reinit rollback, Restart redeploy — recorded in
  *virtual* simulator seconds inside the run and linearly mapped into
  the unit's wall window at export time (``args.sim_start/sim_end``
  keep the raw coordinates).

The export format is the Chrome trace-event JSON array form wrapped in
``{"traceEvents": [...]}`` — load it in Perfetto / ``chrome://tracing``.
Nesting is positional: the campaign span lives on track (pid 1, tid 0),
each in-flight unit claims the lowest free track >= 1 for its duration
(mirroring worker-slot occupancy), and a unit's phase spans render on
its track inside its span. Every unit span carries its ``run_key`` so
traces correlate with stores and determinism pins.

This module owns the wall-clock reads the rest of the tree must not
make (``WALLCLOCK_SANCTIONED_DIRS`` in the contracts manifest): virtual
sim time stays untouched — a tracer *observes* runs, it never feeds
time back into them.
"""

from __future__ import annotations

import heapq
import json
import time
from contextlib import contextmanager

from ..core import events as ev
from ..errors import ConfigurationError
from ..explore.timeline import PhaseRecorder

# -- worker-side phase capture ----------------------------------------------

#: process-global capture slot: ``capture_phases`` installs a recorder
#: here, ``attach_phase_hook`` (called from ``execute_unit``) picks it
#: up. One unit executes at a time per process (serial loop or
#: maxtasksperchild=1 worker), so a single slot is enough.
_ACTIVE_RECORDER = None


class TeeHook:
    """Forward the phase-hook protocol to two sinks (explore + trace)."""

    def __init__(self, first, second):
        self._sinks = (first, second)

    def iteration(self, rank, i, now):
        for sink in self._sinks:
            sink.iteration(rank, i, now)

    def enter(self, rank, anchor, now):
        for sink in self._sinks:
            sink.enter(rank, anchor, now)

    def exit(self, rank, anchor, now):
        for sink in self._sinks:
            sink.exit(rank, anchor, now)

    def span(self, rank, anchor, start, end):
        for sink in self._sinks:
            sink.span(rank, anchor, start, end)

    def epoch(self, n):
        for sink in self._sinks:
            sink.epoch(n)


@contextmanager
def capture_phases():
    """Install a fresh :class:`PhaseRecorder` as the process capture slot.

    The engine wraps each traced ``execute_unit`` call in this; the
    recorder's spans ship back on the :class:`~repro.core.events.
    UnitCompleted` event (serial) or through the worker pipe (parallel).
    """
    global _ACTIVE_RECORDER
    recorder = PhaseRecorder()
    previous = _ACTIVE_RECORDER
    _ACTIVE_RECORDER = recorder
    try:
        yield recorder
    finally:
        _ACTIVE_RECORDER = previous


def attach_phase_hook(plan):
    """Point ``plan.phase_hook`` at the active capture recorder, if any.

    Called by ``execute_unit`` right after the plan is drawn: a no-op
    unless a :func:`capture_phases` context is open, so untraced runs
    pay one module-global read. An existing hook (an explore probe) is
    teed, not displaced.
    """
    recorder = _ACTIVE_RECORDER
    if recorder is None:
        return plan
    existing = getattr(plan, "phase_hook", None)
    hook = recorder if existing is None else TeeHook(existing, recorder)
    try:
        plan.phase_hook = hook
    except AttributeError:
        # exotic plan types without the attribute slot trace nothing
        pass
    return plan


def spans_to_wire(recorder):
    """Recorder -> pipe/event-safe rows ``(anchor, rank, start, end, epoch)``.

    Also carries the iteration high-water mark as a pseudo-span so the
    trace can annotate progress without a per-iteration firehose.
    """
    rows = [(s.anchor, s.rank, s.start, s.end, s.epoch)
            for s in recorder.spans]
    if recorder.last_iteration >= 0:
        rows.append(("iterations", -1, 0.0,
                     float(recorder.last_iteration), 0))
    return tuple(rows)


# -- the tracer --------------------------------------------------------------

class _UnitTrack:
    """Book-keeping for one in-flight unit span."""

    __slots__ = ("unit", "tid", "start", "attempt")

    def __init__(self, unit, tid, start, attempt=1):
        self.unit = unit
        self.tid = tid
        self.start = start
        self.attempt = attempt


class Tracer:
    """Observe a campaign event stream; export Chrome trace JSON.

    Feed every event from :meth:`repro.api.Session.stream` through
    :meth:`observe`; call :meth:`to_chrome` (or :meth:`write`) after
    the stream ends. Timestamps are microseconds relative to the first
    observed event, taken from ``time.perf_counter`` at observe time.
    """

    PID = 1

    def __init__(self, name="campaign"):
        self.name = name
        self._t0 = None
        self._events = []        # finished chrome events
        self._campaign = None    # (start_us, meta dict)
        self._open = {}          # unit.key -> _UnitTrack
        self._free_tids = []     # min-heap of released unit tracks
        self._next_tid = 1
        self._counts = {"completed": 0, "failed": 0, "skipped": 0,
                        "retried": 0}

    # -- clock ---------------------------------------------------------
    def _now_us(self):
        now = time.perf_counter()
        if self._t0 is None:
            self._t0 = now
        return (now - self._t0) * 1e6

    # -- track allocation ----------------------------------------------
    def _claim_tid(self):
        if self._free_tids:
            return heapq.heappop(self._free_tids)
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def _release_tid(self, tid):
        heapq.heappush(self._free_tids, tid)

    # -- event intake ----------------------------------------------------
    def observe(self, event):
        """Fold one campaign event into the trace (unknown kinds pass)."""
        now = self._now_us()
        if isinstance(event, ev.CampaignStarted):
            self._campaign = (now, {"total": event.total,
                                    "pending": event.pending,
                                    "resumed": event.resumed,
                                    "jobs": event.jobs})
        elif isinstance(event, ev.UnitStarted):
            track = _UnitTrack(event.unit, self._claim_tid(), now)
            self._open[event.unit.key] = track
        elif isinstance(event, ev.UnitCompleted):
            self._close_unit(event.unit, now, "completed",
                             result=event.result,
                             phases=getattr(event, "phases", ()))
            self._counts["completed"] += 1
        elif isinstance(event, ev.UnitFailed):
            self._close_unit(event.unit, now, "failed",
                             error=str(event.error))
            self._counts["failed"] += 1
        elif isinstance(event, ev.UnitRetrying):
            self._retry_unit(event, now)
            self._counts["retried"] += 1
        elif isinstance(event, ev.UnitSkipped):
            self._events.append({
                "name": "resume:%s" % event.unit.describe(), "ph": "i",
                "cat": "unit", "ts": now, "pid": self.PID, "tid": 0,
                "s": "t", "args": {"run_key": event.unit.key}})
            self._counts["skipped"] += 1
        elif isinstance(event, (ev.CampaignFinished, ev.CampaignAborted)):
            self._finish_campaign(event, now)
        return event

    def _unit_args(self, unit, outcome, result=None, error=None, attempt=1):
        args = {"run_key": unit.key, "label": unit.config.label(),
                "rep": unit.rep, "outcome": outcome, "attempt": attempt}
        if result is not None:
            args["makespan_sim_sec"] = result.breakdown.total_seconds
            args["verified"] = result.verified
        if error is not None:
            args["error"] = error
        return args

    def _close_unit(self, unit, now, outcome, result=None, error=None,
                    phases=()):
        track = self._open.pop(unit.key, None)
        if track is None:
            # completion without a observed start (e.g. a consumer that
            # filters events): record an instant, keep the trace valid
            self._events.append({
                "name": unit.describe(), "ph": "i", "cat": "unit",
                "ts": now, "pid": self.PID, "tid": 0, "s": "t",
                "args": self._unit_args(unit, outcome, result, error)})
            return
        start, tid = track.start, track.tid
        self._events.append({
            "name": unit.describe(), "ph": "X", "cat": "unit",
            "ts": start, "dur": max(0.0, now - start),
            "pid": self.PID, "tid": tid,
            "args": self._unit_args(unit, outcome, result, error,
                                    track.attempt)})
        if phases and result is not None:
            self._emit_phases(unit, phases, result, start, now, tid)
        self._release_tid(tid)

    def _retry_unit(self, event, now):
        """Close the failed attempt's span; the redispatch reopens it."""
        track = self._open.get(event.unit.key)
        self._events.append({
            "name": "retry:%s" % event.unit.describe(), "ph": "i",
            "cat": "unit", "ts": now, "pid": self.PID,
            "tid": track.tid if track else 0, "s": "t",
            "args": {"run_key": event.unit.key, "attempt": event.attempt,
                     "delay": event.delay}})
        if track is not None:
            track.attempt = event.attempt + 1

    def _emit_phases(self, unit, phases, result, start, end, tid):
        """Map virtual-time phase spans into the unit's wall window."""
        makespan = result.breakdown.total_seconds
        window = max(0.0, end - start)
        scale = (window / makespan) if makespan > 0 else 0.0
        for row in phases:
            anchor, rank, v_start, v_end, epoch = row
            ts = start + min(window, max(0.0, v_start * scale))
            te = start + min(window, max(0.0, v_end * scale))
            self._events.append({
                "name": anchor, "ph": "X", "cat": "phase",
                "ts": ts, "dur": max(0.0, te - ts),
                "pid": self.PID, "tid": tid,
                "args": {"run_key": unit.key, "rank": rank, "epoch": epoch,
                         "sim_start": v_start, "sim_end": v_end}})

    def _finish_campaign(self, event, now):
        start, meta = self._campaign if self._campaign else (now, {})
        args = dict(meta)
        args.update(self._counts)
        if isinstance(event, ev.CampaignAborted):
            args["aborted"] = event.reason
        self._events.append({
            "name": self.name, "ph": "X", "cat": "campaign",
            "ts": start, "dur": max(0.0, now - start),
            "pid": self.PID, "tid": 0, "args": args})

    # -- export --------------------------------------------------------
    def to_chrome(self):
        """The trace as a Chrome trace-event JSON object."""
        events = sorted(self._events,
                        key=lambda e: (e["ts"], e["tid"], e["name"]))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "name": self.name},
        }

    def write(self, path):
        payload = self.to_chrome()
        problems = validate_trace(payload)
        if problems:
            raise ConfigurationError(
                "refusing to write malformed trace: %s" % "; ".join(problems))
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        return path


# -- validation --------------------------------------------------------------

def validate_trace(payload):
    """Structural checks on an exported trace; returns a problem list.

    Pins the obs-smoke contract: one campaign span, every unit span
    nested inside it with a ``run_key``, every phase span inside a unit
    span on the same track.
    """
    problems = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload is not a {traceEvents: [...]} object"]
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["traceEvents is empty"]
    campaigns, units = [], []
    for i, event in enumerate(events):
        for field_name in ("name", "ph", "ts", "pid", "tid"):
            if field_name not in event:
                problems.append("event %d missing %r" % (i, field_name))
        if event.get("ph") == "X" and event.get("dur", -1) < 0:
            problems.append("event %d: X event with negative/missing dur"
                            % i)
        cat = event.get("cat")
        if cat == "campaign" and event.get("ph") == "X":
            campaigns.append(event)
        elif cat == "unit" and event.get("ph") == "X":
            units.append(event)
    if len(campaigns) != 1:
        problems.append("expected exactly 1 campaign span, found %d"
                        % len(campaigns))
        return problems
    campaign = campaigns[0]
    c_start = campaign["ts"]
    c_end = c_start + campaign.get("dur", 0.0)
    slack = 1.0  # microsecond tolerance for float mapping
    for event in units:
        name = event.get("name", "?")
        if "run_key" not in event.get("args", {}):
            problems.append("unit span %r has no run_key arg" % name)
        if (event["ts"] < c_start - slack
                or event["ts"] + event.get("dur", 0.0) > c_end + slack):
            problems.append("unit span %r escapes the campaign span" % name)
    unit_windows = [(e["tid"], e["ts"], e["ts"] + e.get("dur", 0.0))
                    for e in units]
    for event in events:
        if event.get("cat") != "phase" or event.get("ph") != "X":
            continue
        ts = event["ts"]
        te = ts + event.get("dur", 0.0)
        tid = event["tid"]
        inside = any(tid == u_tid and ts >= u_start - slack
                     and te <= u_end + slack
                     for u_tid, u_start, u_end in unit_windows)
        if not inside:
            problems.append("phase span %r not nested in a unit span"
                            % event.get("name", "?"))
    return problems
