"""repro.obs — unified telemetry: traces, metrics, profiling.

The observability layer over the whole system (see
docs/OBSERVABILITY.md):

* :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.Tracer` turns
  the campaign event stream plus the phase-hook protocol into
  hierarchical Chrome-trace spans (campaign → unit → sim phases).
* :mod:`repro.obs.metrics` — the process-wide
  :data:`~repro.obs.metrics.REGISTRY` of counters/gauges/histograms
  adopted by the engine, store, FTI layer and advisor service.
* :mod:`repro.obs.prom` — Prometheus text exposition of registry
  snapshots (the service's ``/metrics``).
* :mod:`repro.obs.profiling` — opt-in per-RunUnit cProfile capture and
  cross-worker hotspot aggregation.
* :mod:`repro.obs.env` — the ``MATCH_OBS`` / ``MATCH_TRACE`` toggles.

Design rule: telemetry *observes* runs and never feeds back into them
— run keys, virtual-time makespans and the serial/parallel bit-identity
contract are unchanged whether tracing is on or off, and all wall-clock
reads in the tree outside sanctioned engine/service timeout code live
here (``WALLCLOCK_SANCTIONED_DIRS`` in the contracts manifest).
"""

from .env import OBS_ENV, TRACE_ENV
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from .prom import PROM_CONTENT_TYPE, render_prometheus

#: lazily exposed: the tracer rides the phase-hook protocol and pulls
#: in :mod:`repro.explore`; the metrics/prom surface must stay light
#: enough for :mod:`repro.core.engine` to import at module load
_LAZY = {
    "Tracer": "trace",
    "capture_phases": "trace",
    "validate_trace": "trace",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name))
    import importlib

    return getattr(importlib.import_module("." + module, __name__), name)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_ENV",
    "PROM_CONTENT_TYPE",
    "REGISTRY",
    "TRACE_ENV",
    "Tracer",
    "capture_phases",
    "render_prometheus",
    "validate_trace",
]
