"""Environment toggles for telemetry (the only obs env reads).

Two variables, both in the DET-ENV allowlist
(``repro.analysis.contracts.ENV_ALLOWLIST``):

* ``MATCH_OBS`` — metrics switch. ``0``/``off``/``false`` disables the
  process registry outright (the zero-overhead path); any other
  non-empty value is a *path* to dump the registry snapshot (JSON) to
  at campaign end. CLI flags (``--metrics-out``) win over the variable.
* ``MATCH_TRACE`` — default trace output path for ``match-bench
  campaign`` when ``--trace`` is not given, so CI and wrappers can turn
  tracing on without touching the command line.

Neither variable enters the run key: telemetry observes runs, it never
changes them — which is exactly why these are allowlisted while
arbitrary env reads stay banned.
"""

from __future__ import annotations

import json
import os

#: the metrics toggle/snapshot-path variable (DET-ENV sanctioned)
OBS_ENV = "MATCH_OBS"
#: the default-trace-path variable (DET-ENV sanctioned)
TRACE_ENV = "MATCH_TRACE"

_OFF_VALUES = frozenset({"0", "off", "false", "no"})


def metrics_disabled_by_env(environ=None):
    """True when ``MATCH_OBS`` explicitly turns the registry off."""
    environ = os.environ if environ is None else environ
    value = environ.get(OBS_ENV, "")
    return value.strip().lower() in _OFF_VALUES and bool(value.strip())


def metrics_snapshot_path(environ=None):
    """The snapshot dump path from ``MATCH_OBS``, if it names one."""
    environ = os.environ if environ is None else environ
    value = environ.get(OBS_ENV, "").strip()
    if not value or value.lower() in _OFF_VALUES:
        return None
    return value


def trace_path_from_env(environ=None):
    """The default trace output path from ``MATCH_TRACE``, if set."""
    environ = os.environ if environ is None else environ
    value = environ.get(TRACE_ENV, "").strip()
    return value or None


def write_metrics_snapshot(path, snapshot):
    """Dump a registry snapshot as JSON (the campaign-end artifact)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
