"""Process-wide metrics registry: counters, gauges, histograms.

One registry (:data:`REGISTRY`) serves the whole process — campaign
engine, result store, FTI layer and advisor service all register their
instruments here. Design constraints, in order:

* **Zero overhead when disabled.** ``REGISTRY.set_enabled(False)``
  turns every ``inc``/``set``/``observe`` into a single boolean check;
  the perf gate's ``events_overhead_pct`` series holds the enabled
  path to <=1% on campaign throughput, so the hot-path cost must stay
  one dict update behind one lock.
* **Mergeable snapshots.** Worker processes (spawn pool,
  ``maxtasksperchild=1``) accumulate into their own fresh registry;
  the engine ships :meth:`MetricsRegistry.snapshot` dicts back through
  the result pipe and folds them in with
  :meth:`MetricsRegistry.merge` — counters and histogram buckets add,
  gauges take the incoming value.
* **Deterministic output.** Snapshots order samples by sorted label
  key so two scrapes of the same state are byte-identical after
  :func:`repro.obs.prom.render_prometheus`.

No wall clocks live here: time enters a histogram only as a value the
*caller* observed (engine/service monotonic reads are sanctioned; see
``WALLCLOCK_SANCTIONED_DIRS`` in ``repro.analysis.contracts``).
"""

from __future__ import annotations

import threading

from ..errors import ConfigurationError

#: default latency buckets (seconds) — tuned for the advisor service's
#: microsecond-to-millisecond endpoint range, with headroom for slow
#: batch calls. The implicit +Inf bucket is always appended on export.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_:")


def _check_name(name):
    if not name or not set(name.lower()) <= _NAME_OK or name[0].isdigit():
        raise ConfigurationError("invalid metric name: %r" % (name,))
    return name


def _label_key(labels):
    """Canonical, hashable, JSON-roundtrip-stable key for a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _key_to_labels(key):
    return dict(key)


class _Metric:
    """Shared plumbing: a named family of samples keyed by label set."""

    kind = "untyped"

    def __init__(self, name, help_text, registry):
        self.name = _check_name(name)
        self.help = help_text
        self._registry = registry
        self._samples = {}  # label_key -> value (type-specific)

    # -- snapshot ------------------------------------------------------
    def _sample_rows(self):
        rows = []
        for key in sorted(self._samples):
            rows.append({"labels": _key_to_labels(key),
                         "value": self._export_value(self._samples[key])})
        return rows

    def _export_value(self, value):
        return value

    def _clear(self):
        self._samples.clear()


class Counter(_Metric):
    """Monotonically increasing count. ``inc`` only; never decreases."""

    kind = "counter"

    def inc(self, amount=1, **labels):
        if amount < 0:
            raise ConfigurationError(
                "counter %s cannot decrease (inc %r)" % (self.name, amount))
        registry = self._registry
        if not registry.enabled:
            return
        key = _label_key(labels)
        with registry._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels):
        return self._samples.get(_label_key(labels), 0)


class Gauge(_Metric):
    """Point-in-time value: queue depth, cache size, hit rate."""

    kind = "gauge"

    def set(self, value, **labels):
        registry = self._registry
        if not registry.enabled:
            return
        key = _label_key(labels)
        with registry._lock:
            self._samples[key] = float(value)

    def inc(self, amount=1, **labels):
        registry = self._registry
        if not registry.enabled:
            return
        key = _label_key(labels)
        with registry._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount=1, **labels):
        self.inc(-amount, **labels)

    def value(self, **labels):
        return self._samples.get(_label_key(labels), 0.0)


class Histogram(_Metric):
    """Cumulative-bucket histogram of observed values (e.g. latency).

    Stored per label set as ``[counts_per_bucket..., +inf_count]`` plus
    running sum and count; exported in Prometheus cumulative form.
    """

    kind = "histogram"

    def __init__(self, name, help_text, registry, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help_text, registry)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError(
                "histogram %s needs at least one bucket" % name)
        self.buckets = bounds

    def observe(self, value, **labels):
        registry = self._registry
        if not registry.enabled:
            return
        value = float(value)
        key = _label_key(labels)
        with registry._lock:
            state = self._samples.get(key)
            if state is None:
                state = {"counts": [0] * (len(self.buckets) + 1),
                         "sum": 0.0, "count": 0}
                self._samples[key] = state
            idx = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            state["counts"][idx] += 1
            state["sum"] += value
            state["count"] += 1

    def _export_value(self, state):
        return {"counts": list(state["counts"]),
                "sum": state["sum"], "count": state["count"]}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe home for every instrument in the process.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice
    with the same name returns the same object, so modules can declare
    their instruments at import time without coordination. Re-declaring
    a name as a different kind is a configuration error.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}  # name -> _Metric
        self.enabled = True

    # -- declaration ---------------------------------------------------
    def _get_or_create(self, kind, name, help_text, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ConfigurationError(
                        "metric %s already registered as %s, not %s"
                        % (name, existing.kind, kind))
                return existing
            metric = _KINDS[kind](name, help_text, self, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help_text=""):
        return self._get_or_create("counter", name, help_text)

    def gauge(self, name, help_text=""):
        return self._get_or_create("gauge", name, help_text)

    def histogram(self, name, help_text="", buckets=DEFAULT_BUCKETS):
        return self._get_or_create("histogram", name, help_text,
                                   buckets=buckets)

    def get(self, name):
        return self._metrics.get(name)

    # -- switches ------------------------------------------------------
    def set_enabled(self, enabled):
        """Flip the whole registry on/off. Off = every record is a no-op."""
        self.enabled = bool(enabled)

    def reset(self):
        """Zero every sample (metric objects survive). Test isolation."""
        with self._lock:
            for name in sorted(self._metrics):
                self._metrics[name]._clear()

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self):
        """JSON-able view: ``{name: {type, help, samples: [...]}}``.

        Only families with at least one sample appear — a worker that
        touched nothing ships an empty dict.
        """
        out = {}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                rows = metric._sample_rows()
                if not rows:
                    continue
                family = {"type": metric.kind, "help": metric.help,
                          "samples": rows}
                if metric.kind == "histogram":
                    family["buckets"] = list(metric.buckets)
                out[name] = family
        return out

    def merge(self, snapshot):
        """Fold a worker snapshot into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (last write wins — workers rarely set gauges). Families
        unknown to this process are created on the fly so plugin
        metrics survive the pipe too.
        """
        for name in sorted(snapshot):
            family = snapshot[name]
            kind = family.get("type", "counter")
            if kind == "histogram":
                metric = self.histogram(name, family.get("help", ""),
                                        buckets=family.get("buckets",
                                                           DEFAULT_BUCKETS))
            elif kind == "gauge":
                metric = self.gauge(name, family.get("help", ""))
            else:
                metric = self.counter(name, family.get("help", ""))
            with self._lock:
                for row in family.get("samples", ()):
                    key = _label_key(row.get("labels", {}))
                    value = row.get("value", 0)
                    if kind == "histogram":
                        state = metric._samples.get(key)
                        if state is None:
                            state = {"counts": [0] * (len(metric.buckets) + 1),
                                     "sum": 0.0, "count": 0}
                            metric._samples[key] = state
                        counts = value.get("counts", [])
                        for i, n in enumerate(counts[:len(state["counts"])]):
                            state["counts"][i] += n
                        state["sum"] += value.get("sum", 0.0)
                        state["count"] += value.get("count", 0)
                    elif kind == "gauge":
                        metric._samples[key] = float(value)
                    else:
                        metric._samples[key] = (
                            metric._samples.get(key, 0) + value)


#: the process-wide registry every instrumented module shares
REGISTRY = MetricsRegistry()
