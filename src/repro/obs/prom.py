"""Prometheus text exposition (version 0.0.4) for registry snapshots.

Renders :meth:`repro.obs.metrics.MetricsRegistry.snapshot` dicts into
the plain-text scrape format. The output is a pure function of the
snapshot — no timestamps, families and samples in sorted order — so
two scrapes of an idle process are byte-identical (the `/metrics`
stability contract the service smoke test pins).
"""

from __future__ import annotations

import math

#: the Content-Type a conforming scrape endpoint must serve
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value):
    """Canonical sample-value formatting: integers bare, floats via repr."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value.is_integer() and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(value)


def _escape_help(text):
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text):
    return (text.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _label_str(labels, extra=()):
    items = sorted(labels.items())
    items.extend(extra)  # extras (le=...) render last, pre-formatted
    if not items:
        return ""
    body = ",".join('%s="%s"' % (k, _escape_label(str(v)))
                    for k, v in items)
    return "{%s}" % body


def render_prometheus(snapshot):
    """Render a registry snapshot to exposition text.

    ``snapshot`` is the dict from ``MetricsRegistry.snapshot()``; the
    result always ends with a newline (empty snapshot -> empty string).
    """
    lines = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family.get("type", "untyped")
        help_text = family.get("help", "")
        if help_text:
            lines.append("# HELP %s %s" % (name, _escape_help(help_text)))
        lines.append("# TYPE %s %s" % (name, kind))
        for row in family.get("samples", ()):
            labels = row.get("labels", {})
            value = row.get("value", 0)
            if kind == "histogram":
                cumulative = 0
                bounds = list(family.get("buckets", ()))
                counts = value.get("counts", [])
                for i, bound in enumerate(bounds):
                    cumulative += counts[i] if i < len(counts) else 0
                    lines.append("%s_bucket%s %s" % (
                        name,
                        _label_str(labels, extra=(("le", _fmt(bound)),)),
                        _fmt(cumulative)))
                total = value.get("count", 0)
                lines.append("%s_bucket%s %s" % (
                    name, _label_str(labels, extra=(("le", "+Inf"),)),
                    _fmt(total)))
                lines.append("%s_sum%s %s" % (
                    name, _label_str(labels), _fmt(value.get("sum", 0.0))))
                lines.append("%s_count%s %s" % (
                    name, _label_str(labels), _fmt(total)))
            else:
                lines.append("%s%s %s" % (name, _label_str(labels),
                                          _fmt(value)))
    if not lines:
        return ""
    return "\n".join(lines) + "\n"
