"""Storage tiers of the simulated cluster.

FTI really writes serialized checkpoint bytes into these stores, so failure
semantics are honest: killing a node destroys its RAMFS/SSD contents (L1
checkpoints die with it) while a partner node's copy or the parallel file
system survives. Write/read durations come from the tier's bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, SimulationError


@dataclass
class StoredObject:
    """One blob in a store, keyed by path."""

    path: str
    data: bytes
    written_at: float = 0.0


class ByteStore:
    """A flat path -> bytes store with a bandwidth and a small fixed latency."""

    def __init__(self, name: str, bandwidth: float, latency: float = 1e-4,
                 capacity_bytes: int | None = None):
        if bandwidth <= 0:
            raise ConfigurationError("store %r bandwidth must be positive" % name)
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        self.capacity_bytes = capacity_bytes
        self._objects: dict[str, StoredObject] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    # -- capacity ----------------------------------------------------------
    def used_bytes(self) -> int:
        return sum(len(o.data) for o in self._objects.values())

    def _check_capacity(self, incoming: int) -> None:
        if self.capacity_bytes is None:
            return
        if self.used_bytes() + incoming > self.capacity_bytes:
            raise SimulationError(
                "store %r out of capacity (%d + %d > %d bytes)"
                % (self.name, self.used_bytes(), incoming, self.capacity_bytes)
            )

    # -- I/O ---------------------------------------------------------------
    def write(self, path: str, data: bytes, now: float = 0.0) -> float:
        """Store ``data`` at ``path``; returns the modeled write duration."""
        existing = self._objects.get(path)
        incoming = len(data) - (len(existing.data) if existing else 0)
        self._check_capacity(max(0, incoming))
        self._objects[path] = StoredObject(path, data, now)
        self.bytes_written += len(data)
        return self.latency + len(data) / self.bandwidth

    def read(self, path: str) -> tuple:
        """Return ``(data, duration)`` for ``path``; KeyError if missing."""
        obj = self._objects[path]
        self.bytes_read += len(obj.data)
        return obj.data, self.latency + len(obj.data) / self.bandwidth

    def exists(self, path: str) -> bool:
        return path in self._objects

    def delete(self, path: str) -> None:
        self._objects.pop(path, None)

    def paths(self, prefix: str = "") -> list:
        return sorted(p for p in self._objects if p.startswith(prefix))

    def wipe(self) -> None:
        """Destroy every object (what a node crash does to volatile tiers)."""
        self._objects.clear()


@dataclass
class NodeStorage:
    """Per-node volatile tiers: RAMFS (/dev/shm) and local SSD."""

    node_id: int
    ramfs: ByteStore = field(default=None)
    ssd: ByteStore = field(default=None)

    @classmethod
    def for_node(cls, node_id: int, ramfs_bandwidth: float,
                 ssd_bandwidth: float) -> "NodeStorage":
        return cls(
            node_id=node_id,
            ramfs=ByteStore("node%d:/dev/shm" % node_id, ramfs_bandwidth,
                            latency=2e-5),
            ssd=ByteStore("node%d:ssd" % node_id, ssd_bandwidth, latency=1e-4),
        )

    def wipe(self) -> None:
        self.ramfs.wipe()
        self.ssd.wipe()


class ParallelFileSystem(ByteStore):
    """Shared PFS (Lustre-style): durable, bandwidth shared across writers.

    Concurrency is priced by dividing aggregate bandwidth among concurrent
    writers; the FTI L4 layer passes the writer count.
    """

    def __init__(self, aggregate_bandwidth: float = 5.0e10,
                 latency: float = 2e-3):
        super().__init__("pfs", aggregate_bandwidth, latency)

    def write_shared(self, path: str, data: bytes, concurrent_writers: int,
                     now: float = 0.0) -> float:
        """Write under contention from ``concurrent_writers`` peers."""
        if concurrent_writers < 1:
            raise ConfigurationError("need at least one writer")
        duration = self.write(path, data, now)
        # the base write() already charged full bandwidth; rescale for share
        share = self.bandwidth / concurrent_writers
        return self.latency + len(data) / share

    def read_shared(self, path: str, concurrent_readers: int) -> tuple:
        data, _ = self.read(path)
        share = self.bandwidth / max(1, concurrent_readers)
        return data, self.latency + len(data) / share
