"""Simulated HPC cluster substrate: nodes, network, storage, launcher."""

from .launcher import JobLauncher, LauncherSpec
from .machine import Cluster
from .network import Network, NetworkSpec
from .node import Node, NodeSpec
from .simclock import SimClock
from .storage import ByteStore, NodeStorage, ParallelFileSystem

__all__ = [
    "ByteStore",
    "Cluster",
    "JobLauncher",
    "LauncherSpec",
    "Network",
    "NetworkSpec",
    "Node",
    "NodeSpec",
    "NodeStorage",
    "ParallelFileSystem",
    "SimClock",
]
