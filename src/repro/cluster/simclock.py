"""Virtual time for the simulated cluster.

All performance numbers reported by the benchmark harness are *simulated
seconds* measured on this clock, which makes 512-rank experiments cheap and
deterministic. Each rank owns a local time (SPMD ranks progress
independently between synchronisation points); the global clock tracks the
maximum local time, which is the job's makespan.
"""

from __future__ import annotations

from ..errors import SimulationError


class SimClock:
    """A monotonic virtual clock with per-rank local times.

    The model follows the classic "logical timeline" style used by
    trace-driven MPI simulators (e.g. LogGOPSim): compute advances a single
    rank's local time; a matched communication advances all participants to
    the operation's completion time.
    """

    def __init__(self, nranks: int):
        if nranks <= 0:
            raise SimulationError("clock needs at least one rank, got %d" % nranks)
        self._local = [0.0] * nranks

    @property
    def nranks(self) -> int:
        return len(self._local)

    def now(self, rank: int) -> float:
        """Local virtual time of ``rank`` in seconds."""
        return self._local[rank]

    def global_now(self) -> float:
        """Makespan so far: the maximum local time across ranks."""
        return max(self._local)

    def min_now(self) -> float:
        """The earliest local time across ranks (lower bound on progress)."""
        return min(self._local)

    def advance(self, rank: int, seconds: float) -> float:
        """Advance one rank's local clock by a non-negative duration."""
        if seconds < 0:
            raise SimulationError(
                "cannot advance rank %d by negative time %g" % (rank, seconds)
            )
        self._local[rank] += seconds
        return self._local[rank]

    def advance_to(self, rank: int, timestamp: float) -> float:
        """Move a rank's local clock forward to ``timestamp``.

        Moving backwards is forbidden: completion times must be computed as
        ``max(arrivals) + cost`` before calling this.
        """
        if timestamp < self._local[rank] - 1e-12:
            raise SimulationError(
                "clock for rank %d would move backwards: %g -> %g"
                % (rank, self._local[rank], timestamp)
            )
        self._local[rank] = max(self._local[rank], timestamp)
        return self._local[rank]

    def synchronize(self, ranks, cost: float = 0.0) -> float:
        """Barrier-style synchronisation of ``ranks``.

        All participants jump to ``max(local times) + cost``. Returns the
        completion time.
        """
        ranks = list(ranks)
        if not ranks:
            raise SimulationError("synchronize() needs at least one rank")
        completion = max(self._local[r] for r in ranks) + cost
        for r in ranks:
            self._local[r] = completion
        return completion

    def reset(self) -> None:
        """Zero every local clock (used when a job is relaunched)."""
        for r in range(len(self._local)):
            self._local[r] = 0.0
