"""Compute-node model.

Mirrors the paper's testbed (§V-A): each node has two Intel Haswell CPUs,
28 cores, 128 GB of shared memory and 8 TB of local storage. The defaults
below encode that machine; all parameters are overridable so other clusters
can be modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass(frozen=True)
class NodeSpec:
    """Static hardware description of one compute node."""

    cores: int = 28
    #: sustained per-core floating point rate, flop/s (Haswell-ish, with
    #: realistic efficiency for memory-bound proxy apps rather than peak)
    flops_per_core: float = 8.0e9
    #: per-node memory capacity in bytes (128 GB)
    memory_bytes: int = 128 * 1024**3
    #: sustained memory bandwidth per node, bytes/s (~60 GB/s per socket)
    memory_bandwidth: float = 1.1e11
    #: local storage capacity in bytes (8 TB)
    local_storage_bytes: int = 8 * 1024**4
    #: RAMFS (/dev/shm) write bandwidth, bytes/s — FTI L1 target
    ramfs_bandwidth: float = 4.0e9
    #: local SSD write bandwidth, bytes/s
    ssd_bandwidth: float = 1.0e9

    def __post_init__(self):
        if self.cores <= 0:
            raise ConfigurationError("a node needs at least one core")
        if self.flops_per_core <= 0 or self.memory_bandwidth <= 0:
            raise ConfigurationError("node rates must be positive")

    @property
    def peak_flops(self) -> float:
        """Aggregate flop rate of the whole node."""
        return self.cores * self.flops_per_core


@dataclass
class Node:
    """A live node instance: spec plus mutable occupancy/health state."""

    node_id: int
    spec: NodeSpec = field(default_factory=NodeSpec)
    alive: bool = True
    #: ranks currently placed on this node
    ranks: list = field(default_factory=list)

    def place(self, rank: int) -> None:
        if len(self.ranks) >= self.spec.cores:
            raise ConfigurationError(
                "node %d oversubscribed: %d ranks on %d cores"
                % (self.node_id, len(self.ranks) + 1, self.spec.cores)
            )
        self.ranks.append(rank)

    def evict(self, rank: int) -> None:
        self.ranks.remove(rank)

    def fail(self) -> None:
        """Fail-stop the whole node (kills every rank placed here)."""
        self.alive = False

    @property
    def occupancy(self) -> int:
        return len(self.ranks)

    def flops_share(self) -> float:
        """Flop rate available to one rank given current occupancy.

        Each rank gets one core; memory bandwidth contention is handled by
        the work model, not here.
        """
        return self.spec.flops_per_core
