"""Interconnect cost model.

Point-to-point transfers use the alpha-beta (latency + bandwidth) model;
collectives use the standard log-tree / recursive-doubling complexity
bounds (Thakur et al., "Optimization of Collective Communication
Operations in MPICH", IJHPCA 2005). Intra-node messages get a cheaper
alpha/beta, which matters because 64-512 ranks share 32 nodes in the
paper's setup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class NetworkSpec:
    """Latency/bandwidth description of the cluster interconnect."""

    #: inter-node latency in seconds (~1.5 us, IB FDR-ish)
    alpha_inter: float = 1.5e-6
    #: inter-node bandwidth in bytes/s (~6 GB/s)
    beta_inter: float = 6.0e9
    #: intra-node (shared-memory) latency in seconds
    alpha_intra: float = 3.0e-7
    #: intra-node bandwidth in bytes/s
    beta_intra: float = 3.0e10

    def __post_init__(self):
        if min(self.alpha_inter, self.alpha_intra) < 0:
            raise ConfigurationError("latencies must be non-negative")
        if min(self.beta_inter, self.beta_intra) <= 0:
            raise ConfigurationError("bandwidths must be positive")


class Network:
    """Prices MPI traffic over a :class:`NetworkSpec`."""

    def __init__(self, spec: NetworkSpec | None = None):
        self.spec = spec or NetworkSpec()

    # -- point to point ----------------------------------------------------
    def ptp_time(self, nbytes: int, intra_node: bool = False) -> float:
        """Time for one point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError("message size must be non-negative")
        if intra_node:
            return self.spec.alpha_intra + nbytes / self.spec.beta_intra
        return self.spec.alpha_inter + nbytes / self.spec.beta_inter

    # -- collectives -------------------------------------------------------
    def _alpha_beta(self) -> tuple:
        return self.spec.alpha_inter, self.spec.beta_inter

    @staticmethod
    def _log2(nprocs: int) -> float:
        return math.log2(max(2, nprocs))

    def barrier_time(self, nprocs: int) -> float:
        """Dissemination barrier: ceil(log2 P) rounds of zero-byte messages."""
        alpha, _ = self._alpha_beta()
        return math.ceil(self._log2(nprocs)) * alpha

    def bcast_time(self, nprocs: int, nbytes: int) -> float:
        """Binomial-tree broadcast."""
        alpha, beta = self._alpha_beta()
        rounds = math.ceil(self._log2(nprocs))
        return rounds * (alpha + nbytes / beta)

    def reduce_time(self, nprocs: int, nbytes: int) -> float:
        """Binomial-tree reduction (same complexity as bcast)."""
        return self.bcast_time(nprocs, nbytes)

    def allreduce_time(self, nprocs: int, nbytes: int) -> float:
        """Recursive-doubling allreduce: log2(P) * (alpha + n/beta)."""
        alpha, beta = self._alpha_beta()
        rounds = math.ceil(self._log2(nprocs))
        return rounds * (alpha + nbytes / beta)

    def allgather_time(self, nprocs: int, nbytes_per_rank: int) -> float:
        """Ring allgather: (P-1) steps, each sending one rank's block."""
        alpha, beta = self._alpha_beta()
        steps = max(1, nprocs - 1)
        return steps * (alpha + nbytes_per_rank / beta)

    def gather_time(self, nprocs: int, nbytes_per_rank: int) -> float:
        """Binomial gather: log rounds, total data arrives at the root."""
        alpha, beta = self._alpha_beta()
        rounds = math.ceil(self._log2(nprocs))
        return rounds * alpha + (nprocs - 1) * nbytes_per_rank / beta

    def scatter_time(self, nprocs: int, nbytes_per_rank: int) -> float:
        """Binomial scatter (mirror of gather)."""
        return self.gather_time(nprocs, nbytes_per_rank)

    def alltoall_time(self, nprocs: int, nbytes_per_pair: int) -> float:
        """Pairwise-exchange alltoall: P-1 steps of per-pair blocks."""
        alpha, beta = self._alpha_beta()
        steps = max(1, nprocs - 1)
        return steps * (alpha + nbytes_per_pair / beta)

    def scan_time(self, nprocs: int, nbytes: int) -> float:
        """Recursive-doubling inclusive scan."""
        return self.allreduce_time(nprocs, nbytes)
