"""The whole simulated machine: nodes + network + storage + launcher.

A :class:`Cluster` is the substrate a job runs on. It owns rank placement
(block mapping of ranks onto nodes, as mpirun does by default), per-node
storage tiers, the shared PFS and the interconnect model.
"""

from __future__ import annotations

from .launcher import JobLauncher, LauncherSpec
from .network import Network, NetworkSpec
from .node import Node, NodeSpec
from .storage import NodeStorage, ParallelFileSystem
from ..errors import ConfigurationError


def block_placement(nprocs: int, nnodes: int) -> tuple:
    """``(ranks_per_node, occupied_nodes)`` under the default block
    mapping: rank ``r`` lives on node ``r // ranks_per_node``.

    The single source of the placement arithmetic — shared by
    :meth:`Cluster.place_job` and the fault-scenario node draws
    (:mod:`repro.faults.scenarios`), so a scenario always targets the
    node the runtime will actually kill.
    """
    if nprocs <= 0 or nnodes <= 0:
        raise ConfigurationError("placement needs nprocs and nnodes > 0")
    per_node = -(-nprocs // nnodes)  # ceil division
    return per_node, -(-nprocs // per_node)


class Cluster:
    """A fixed pool of nodes plus interconnect and storage.

    The paper's testbed is 32 nodes for every scaling size (64-512 procs),
    so oversubscription of cores never happens (512/32 = 16 <= 28 cores).
    """

    def __init__(self, nnodes: int = 32, node_spec: NodeSpec | None = None,
                 network_spec: NetworkSpec | None = None,
                 launcher_spec: LauncherSpec | None = None):
        if nnodes <= 0:
            raise ConfigurationError("cluster needs at least one node")
        self.node_spec = node_spec or NodeSpec()
        self.nodes = [Node(i, self.node_spec) for i in range(nnodes)]
        self.network = Network(network_spec)
        self.launcher = JobLauncher(launcher_spec)
        self.pfs = ParallelFileSystem()
        self.node_storage = [
            NodeStorage.for_node(i, self.node_spec.ramfs_bandwidth,
                                 self.node_spec.ssd_bandwidth)
            for i in range(nnodes)
        ]
        self._rank_to_node: dict[int, int] = {}

    @property
    def nnodes(self) -> int:
        return len(self.nodes)

    # -- placement ---------------------------------------------------------
    def place_job(self, nprocs: int) -> dict:
        """Block-map ``nprocs`` ranks onto the nodes; returns rank->node."""
        if nprocs <= 0:
            raise ConfigurationError("job needs at least one process")
        per_node, _ = block_placement(nprocs, self.nnodes)
        if per_node > self.node_spec.cores:
            raise ConfigurationError(
                "placement oversubscribes cores: %d ranks/node on %d cores"
                % (per_node, self.node_spec.cores)
            )
        for node in self.nodes:
            node.ranks.clear()
        self._rank_to_node.clear()
        for rank in range(nprocs):
            node_id = rank // per_node
            self.nodes[node_id].place(rank)
            self._rank_to_node[rank] = node_id
        return dict(self._rank_to_node)

    def node_of(self, rank: int) -> int:
        return self._rank_to_node[rank]

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self._rank_to_node[rank_a] == self._rank_to_node[rank_b]

    def ranks_on_node(self, node_id: int) -> list:
        return list(self.nodes[node_id].ranks)

    def partner_node(self, node_id: int) -> int:
        """Buddy node used by FTI L2 partner copies (ring neighbour)."""
        return (node_id + 1) % self.nnodes

    # -- storage access ----------------------------------------------------
    def ramfs_of(self, rank: int):
        return self.node_storage[self.node_of(rank)].ramfs

    def ssd_of(self, rank: int):
        return self.node_storage[self.node_of(rank)].ssd

    def ramfs_of_node(self, node_id: int):
        return self.node_storage[node_id].ramfs

    # -- failures ----------------------------------------------------------
    def fail_node(self, node_id: int) -> list:
        """Fail-stop a node: volatile storage is lost, its ranks die.

        Returns the list of ranks that were running there.
        """
        node = self.nodes[node_id]
        node.fail()
        self.node_storage[node_id].wipe()
        return list(node.ranks)

    def alive_nodes(self) -> list:
        return [n.node_id for n in self.nodes if n.alive]
