"""mpirun-style job launcher cost model.

The launcher is what makes plain *Restart* recovery expensive (§V-C):
tearing the job down and redeploying means the resource manager must
re-allocate nodes, spawn the runtime daemons, wire up the out-of-band tree
and launch every process again. The model prices those phases explicitly so
the Restart-vs-Reinit gap emerges from mechanism, not a constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class LauncherSpec:
    """Deployment cost parameters (defaults calibrated to SLURM+ORTE scale).

    Paper anchor: at 64 processes restart recovery is ~16x Reinit's ~0.6 s,
    i.e. roughly 10 s, growing slowly with process count (Fig. 7).
    """

    #: fixed scheduler round-trip: job teardown + allocation request
    allocation_seconds: float = 6.0
    #: per-node daemon spawn + wire-up, amortised over a log-depth tree
    daemon_seconds: float = 0.55
    #: per-process fork/exec + MPI_Init handshake cost
    process_spawn_seconds: float = 0.012
    #: MPI_Init wire-up collective latency factor
    init_wireup_seconds: float = 0.25

    def __post_init__(self):
        if self.allocation_seconds < 0:
            raise ConfigurationError("allocation time must be non-negative")


class JobLauncher:
    """Prices full job (re)deployments."""

    def __init__(self, spec: LauncherSpec | None = None):
        self.spec = spec or LauncherSpec()
        self.launch_count = 0

    def launch_time(self, nprocs: int, nnodes: int) -> float:
        """Seconds to deploy a job of ``nprocs`` processes on ``nnodes``."""
        if nprocs <= 0 or nnodes <= 0:
            raise ConfigurationError("need positive process and node counts")
        s = self.spec
        tree_depth = math.ceil(math.log2(max(2, nnodes)))
        cost = (
            s.allocation_seconds
            + tree_depth * s.daemon_seconds
            + nprocs * s.process_spawn_seconds
            + math.ceil(math.log2(max(2, nprocs))) * s.init_wireup_seconds
        )
        return cost

    def record_launch(self) -> None:
        self.launch_count += 1
