"""Livelock and deadlock guards for adversarial fault schedules.

An adversarial schedule can place a fault *inside* the recovery that an
earlier fault triggered — and a schedule searcher will find such spots
on purpose. The designs are supposed to terminate structurally under
repeated failure (ULFM re-enters repair, Reinit rolls back again,
Restart redeploys again, bounded by ``MAX_RELAUNCHES``), but a bug in
that machinery shows up as the worst possible symptom: a run that makes
no application progress while recovery phases repeat forever, burning
the simulator's watchdog budget instead of failing crisply.

:class:`ProgressGuard` converts that symptom into a structured,
deterministic :class:`~repro.errors.LivelockError`. It rides the
phase-hook protocol (it *is* a phase hook, optionally wrapping an inner
one such as a :class:`~repro.explore.timeline.PhaseRecorder`): recovery
phase entries count up, any main-loop ``iteration`` notification —
i.e. actual application progress — resets the counts. When a recovery
anchor repeats more than ``limit`` times without an intervening
iteration, the job is declared livelocked and the error names the
repeating phase cycle and the iteration the application is stuck at.

The guard raises from inside the rank coroutine (phase notifications
are emitted synchronously by the running rank), so the error propagates
out of :meth:`Runtime.run` like any simulation error and lands in the
engine's structured error record — deterministic, never retried.
"""

from __future__ import annotations

from ..errors import LivelockError

#: recovery-phase repetitions tolerated without application progress;
#: generous enough for legitimate repeated failure (one repair per
#: scheduled fault) yet far below any watchdog budget
DEFAULT_LIMIT = 8

#: anchors counted per emitting rank (application-level protocol steps)
_RANK_ANCHORS = frozenset({"ulfm.revoke"})
#: anchors counted globally (runtime/launcher-level recovery spans)
_SPAN_ANCHORS = frozenset({"reinit.rollback", "restart.redeploy"})


class ProgressGuard:
    """Phase hook that raises :class:`LivelockError` on repeated
    recovery without application progress.

    Forwards every notification to ``inner`` (when given), so it
    composes transparently with timeline recording.
    """

    def __init__(self, limit: int = DEFAULT_LIMIT, inner=None):
        self.limit = limit
        self.inner = inner
        #: recovery-entry counts since the last observed iteration,
        #: keyed by (rank, anchor) for per-rank protocol steps and by
        #: (-1, anchor) for global spans
        self._counts: dict = {}
        #: recovery anchors seen since last progress, in first-seen order
        self._trail: list = []
        self._last_iteration = -1

    # -- bookkeeping ---------------------------------------------------------
    def _progress(self) -> None:
        self._counts.clear()
        self._trail.clear()

    def _count(self, key, anchor: str) -> None:
        seen = self._counts.get(key, 0) + 1
        self._counts[key] = seen
        if anchor not in self._trail:
            self._trail.append(anchor)
        if seen > self.limit:
            raise LivelockError(
                cycle=tuple(self._trail),
                iterations_stuck_at=self._last_iteration)

    # -- phase-hook protocol -------------------------------------------------
    def iteration(self, rank: int, i: int, now: float) -> None:
        self._last_iteration = max(self._last_iteration, i)
        self._progress()
        if self.inner is not None:
            self.inner.iteration(rank, i, now)

    def enter(self, rank: int, anchor: str, now: float) -> None:
        if anchor in _RANK_ANCHORS:
            self._count((rank, anchor), anchor)
        if self.inner is not None:
            self.inner.enter(rank, anchor, now)

    def exit(self, rank: int, anchor: str, now: float) -> None:
        if self.inner is not None:
            self.inner.exit(rank, anchor, now)

    def span(self, rank: int, anchor: str, start: float, end: float) -> None:
        if anchor in _SPAN_ANCHORS:
            self._count((-1, anchor), anchor)
        if self.inner is not None:
            self.inner.span(rank, anchor, start, end)

    def epoch(self, n: int) -> None:
        if self.inner is not None and hasattr(self.inner, "epoch"):
            self.inner.epoch(n)


__all__ = ["DEFAULT_LIMIT", "ProgressGuard"]
