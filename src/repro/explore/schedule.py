"""Phase-anchored fault schedules: *what to break, relative to when*.

A :class:`FaultSchedule` is a frozen list of :class:`AnchoredFault`
events, each naming a phase window instead of a wall-clock instant:
*"0.5 s into the second L1 checkpoint write, kill rank 3"*. Anchoring
makes schedules portable across configurations (the same schedule aims
at the same structural moment whether the window opens at t=4.1 s or
t=19.7 s) and is what lets a search enumerate *interesting* instants —
phase boundaries — instead of sweeping a continuum.

Schedules serialize to a compact one-line spec so they fit the
existing scenario grammar (``at-phase:<spec>``), campaign run keys and
result stores. The spec grammar is deliberately **colon-free**
(``parse_scenario_spec`` splits on ``:``) — events are joined by
``;``, each event is::

    anchor[~occurrence][+offset][@rRANK | @nNODE]

* ``anchor`` — a phase name from the probed timeline's catalog
  (``ckpt.L1.write``, ``ulfm.shrink``, ``reinit.rollback``, ...);
* ``~occurrence`` — which numbered window of that anchor (default 0,
  the first);
* ``+offset`` — seconds into the window (default 0.0, the boundary);
* ``@rRANK`` — kill that exact rank; ``@nNODE`` — fail that whole
  node. Default: the window's first participating rank.

Examples::

    ckpt.L1.write+0.5                   # mid-write, default victim
    ckpt.L1.write~2@n3                  # 3rd write window, node 3 dies
    ckpt.L1.write;ulfm.shrink@r0        # second fault inside the repair
                                        # the first one triggers

Lowering to exact-time :class:`~repro.faults.plans.TimedFault` events
is **iterative** (see :mod:`repro.explore.engine`): event *k* resolves
against a timeline probed with events ``0..k-1`` already replayed, so a
later event may anchor to a recovery phase an earlier event provokes.
This module only resolves a single event against a given timeline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .timeline import PhaseTimeline
from ..errors import ConfigurationError
from ..faults.plans import TimedFault

_ATOM = re.compile(
    r"^(?P<anchor>[A-Za-z][\w.\-]*)"
    r"(?:~(?P<occurrence>\d+))?"
    r"(?:\+(?P<offset>\d+(?:\.\d+)?))?"
    r"(?:@(?P<victim>[rn]\d+))?$")


@dataclass(frozen=True)
class AnchoredFault:
    """One fault aimed at a phase window.

    ``rank`` and ``node`` are exclusive; both ``None`` means "the
    window's first participating rank" (resolved at lowering time).
    """

    anchor: str
    occurrence: int = 0
    offset: float = 0.0
    rank: int | None = None
    node: int | None = None

    def __post_init__(self):
        if not self.anchor:
            raise ConfigurationError("anchored fault needs an anchor name")
        if self.occurrence < 0 or self.offset < 0.0:
            raise ConfigurationError(
                "anchored fault needs non-negative occurrence/offset")
        if self.rank is not None and self.node is not None:
            raise ConfigurationError(
                "anchored fault takes a rank or a node, not both")

    @property
    def kind(self) -> str:
        return "node" if self.node is not None else "process"

    # -- spec atoms ----------------------------------------------------------
    def to_atom(self) -> str:
        """The canonical spec atom (defaults omitted)."""
        atom = self.anchor
        if self.occurrence:
            atom += "~%d" % self.occurrence
        if self.offset:
            atom += "+%g" % self.offset
        if self.rank is not None:
            atom += "@r%d" % self.rank
        elif self.node is not None:
            atom += "@n%d" % self.node
        return atom

    @classmethod
    def parse_atom(cls, atom: str) -> "AnchoredFault":
        match = _ATOM.match(atom.strip())
        if match is None:
            raise ConfigurationError(
                "bad schedule atom %r (grammar: "
                "anchor[~occurrence][+offset][@rRANK|@nNODE])" % (atom,))
        victim = match.group("victim")
        return cls(
            anchor=match.group("anchor"),
            occurrence=int(match.group("occurrence") or 0),
            offset=float(match.group("offset") or 0.0),
            rank=int(victim[1:]) if victim and victim[0] == "r" else None,
            node=int(victim[1:]) if victim and victim[0] == "n" else None)

    # -- lowering ------------------------------------------------------------
    def lower(self, timeline: PhaseTimeline, nprocs: int,
              nnodes: int) -> TimedFault:
        """Resolve this event to an exact-time kill using ``timeline``.

        Node victims are mapped to a representative rank through the
        default block placement (the runtime then fails the whole node
        that rank lives on).
        """
        from ..cluster.machine import block_placement

        window = timeline.resolve(self.anchor, self.occurrence)
        when = window.start + self.offset
        if self.node is not None:
            per_node, occupied = block_placement(nprocs, nnodes)
            rank = self.node * per_node
            if self.node >= occupied or rank >= nprocs:
                raise ConfigurationError(
                    "schedule targets node %d but the job occupies "
                    "nodes 0..%d" % (self.node, occupied - 1))
            return TimedFault(time=when, rank=rank, kind="node",
                              epoch=window.epoch)
        if self.rank is not None:
            if self.rank >= nprocs:
                raise ConfigurationError(
                    "schedule targets rank %d but the job has %d ranks"
                    % (self.rank, nprocs))
            rank = self.rank
        else:
            live = [r for r in window.ranks if 0 <= r < nprocs]
            rank = live[0] if live else 0
        return TimedFault(time=when, rank=rank, epoch=window.epoch)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, frozen sequence of :class:`AnchoredFault` events."""

    events: tuple = ()

    def __post_init__(self):
        if not all(isinstance(e, AnchoredFault) for e in self.events):
            raise ConfigurationError(
                "FaultSchedule takes AnchoredFault events")

    def __len__(self) -> int:
        return len(self.events)

    # -- spec ----------------------------------------------------------------
    def to_spec(self) -> str:
        """The canonical one-line spec (round-trips through parse)."""
        return ";".join(e.to_atom() for e in self.events)

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        atoms = [a for a in (part.strip() for part in spec.split(";")) if a]
        if not atoms:
            raise ConfigurationError(
                "empty fault schedule (need at least one "
                "anchor[~occ][+offset][@victim] atom)")
        return cls(events=tuple(
            AnchoredFault.parse_atom(atom) for atom in atoms))

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        return {"spec": self.to_spec()}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        return cls.parse(data["spec"])


__all__ = ["AnchoredFault", "FaultSchedule"]
