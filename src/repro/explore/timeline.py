"""Phase timelines: where, in virtual time, a run's named phases live.

The exploration machinery needs to know *when* a checkpoint write or a
ULFM repair step happens before it can aim a fault at it. That timing
is a property of one exact configuration (app, scale, FTI level,
stride, design), so we measure it: a **probe run** executes the
configuration with no new faults while a :class:`PhaseRecorder` —
riding the runtime's phase-hook protocol — collects every
``enter``/``exit`` pair and runtime-level ``span`` as a
:class:`PhaseSpan`. :meth:`PhaseTimeline.build` then clusters the
per-rank spans of each anchor into :class:`PhaseWindow` occurrences
(cluster-by-overlap, the same episode logic ULFM accounting uses) and
numbers them in time order, giving schedules a stable coordinate
system: *"the second L1 checkpoint-write window"* is
``("ckpt.L1.write", 1)`` regardless of which ranks participated or how
long it lasted.

Probe runs are deterministic, so the timeline is too — it can be
serialized, diffed, and (crucially) re-derived bit-identically when a
frozen schedule is replayed from its run key.

Timelines can also be probed *with a fault prefix*: to anchor a second
fault inside the recovery triggered by a first, the probe replays the
first fault (as exact-time events) and records the recovery phases it
provokes, exposing ``ulfm.shrink`` or ``restart.redeploy`` windows that
a fault-free run does not have.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass(frozen=True)
class PhaseSpan:
    """One rank's stay inside one phase (raw recorder output)."""

    anchor: str
    rank: int
    start: float
    end: float
    epoch: int = 0


@dataclass(frozen=True)
class PhaseWindow:
    """One numbered occurrence of a phase across participating ranks.

    ``occurrence`` counts this anchor's windows job-wide in
    ``(epoch, start)`` order, starting at 0; ``ranks`` is the sorted
    tuple of participants (``-1`` alone for runtime-level spans).
    """

    anchor: str
    occurrence: int
    start: float
    end: float
    ranks: tuple
    epoch: int = 0

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.start + self.end)

    def to_dict(self) -> dict:
        return {"anchor": self.anchor, "occurrence": self.occurrence,
                "start": self.start, "end": self.end,
                "ranks": list(self.ranks), "epoch": self.epoch}

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseWindow":
        return cls(anchor=data["anchor"], occurrence=data["occurrence"],
                   start=data["start"], end=data["end"],
                   ranks=tuple(data["ranks"]), epoch=data.get("epoch", 0))


class PhaseRecorder:
    """Phase hook that accumulates :class:`PhaseSpan` records.

    ``enter``/``exit`` pairs are matched per ``(rank, anchor)`` —
    phases of one rank never nest under the same anchor, and the
    runtime resumes exactly one rank at a time, so a simple pending
    slot suffices. A rank killed *inside* a phase leaves its pending
    entry unmatched; the half-open stay is dropped (the window is
    defined by the ranks that completed the phase).
    """

    def __init__(self):
        self.spans: list = []
        self._pending: dict = {}
        self._epoch = 0
        self.last_iteration = -1

    # -- phase-hook protocol -------------------------------------------------
    def iteration(self, rank: int, i: int, now: float) -> None:
        self.last_iteration = max(self.last_iteration, i)

    def enter(self, rank: int, anchor: str, now: float) -> None:
        self._pending[(rank, anchor)] = (now, self._epoch)

    def exit(self, rank: int, anchor: str, now: float) -> None:
        started = self._pending.pop((rank, anchor), None)
        if started is not None:
            start, epoch = started
            self.spans.append(PhaseSpan(anchor, rank, start, now, epoch))

    def span(self, rank: int, anchor: str, start: float, end: float) -> None:
        self.spans.append(PhaseSpan(anchor, rank, start, end, self._epoch))

    def epoch(self, n: int) -> None:
        self._epoch = n
        self._pending.clear()  # the old incarnation's ranks are gone


@dataclass(frozen=True)
class PhaseTimeline:
    """The numbered phase windows of one probed configuration."""

    windows: tuple = ()

    @classmethod
    def build(cls, recorder: PhaseRecorder) -> "PhaseTimeline":
        """Cluster recorded spans into numbered windows.

        Spans of one ``(epoch, anchor)`` are clustered by time overlap
        (two occurrences of the same phase never overlap: the job
        serializes checkpoint rounds and repair waves), then all
        clusters of an anchor are numbered job-wide in
        ``(epoch, start)`` order.
        """
        groups: dict = {}
        for span in recorder.spans:
            groups.setdefault((span.epoch, span.anchor), []).append(span)
        clusters: dict = {}
        for (epoch, anchor), spans in sorted(
                groups.items(), key=lambda item: item[0]):
            spans.sort(key=lambda s: (s.start, s.end, s.rank))
            current = [spans[0]]
            cluster_end = spans[0].end
            for span in spans[1:]:
                if span.start > cluster_end:
                    clusters.setdefault(anchor, []).append((epoch, current))
                    current = [span]
                else:
                    current.append(span)
                cluster_end = max(cluster_end, span.end)
            clusters.setdefault(anchor, []).append((epoch, current))
        windows = []
        for anchor in sorted(clusters):
            numbered = sorted(
                clusters[anchor],
                key=lambda item: (item[0], min(s.start for s in item[1])))
            for occurrence, (epoch, spans) in enumerate(numbered):
                windows.append(PhaseWindow(
                    anchor=anchor,
                    occurrence=occurrence,
                    start=min(s.start for s in spans),
                    end=max(s.end for s in spans),
                    ranks=tuple(sorted({s.rank for s in spans})),
                    epoch=epoch))
        windows.sort(key=lambda w: (w.epoch, w.start, w.anchor))
        return cls(windows=tuple(windows))

    # -- lookup --------------------------------------------------------------
    def anchors(self) -> tuple:
        """The anchor catalog: sorted unique anchor names."""
        return tuple(sorted({w.anchor for w in self.windows}))

    def occurrences(self, anchor: str) -> tuple:
        """This anchor's windows in occurrence order."""
        return tuple(sorted((w for w in self.windows if w.anchor == anchor),
                            key=lambda w: w.occurrence))

    def resolve(self, anchor: str, occurrence: int = 0) -> PhaseWindow:
        """The window for ``(anchor, occurrence)``; raises with the full
        catalog when the coordinate does not exist."""
        for window in self.windows:
            if window.anchor == anchor and window.occurrence == occurrence:
                return window
        have = ["%s~%d" % (w.anchor, w.occurrence) for w in self.windows]
        raise ConfigurationError(
            "phase %r occurrence %d not in the probed timeline "
            "(have: %s)" % (anchor, occurrence, ", ".join(have) or "none"))

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        return {"windows": [w.to_dict() for w in self.windows]}

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseTimeline":
        return cls(windows=tuple(
            PhaseWindow.from_dict(w) for w in data.get("windows", ())))


def probe_timeline(config, prefix_events=()):
    """Measure ``config``'s phase timeline with a probe run.

    ``prefix_events`` — already-lowered :class:`TimedFault` events — are
    replayed during the probe so recovery phases *caused by* those
    events appear in the timeline; an empty prefix probes the clean run.
    Returns ``(timeline, run_result)``.
    """
    from ..core.designs import DESIGNS
    from ..core.harness import build_cluster
    from ..faults.plans import TimedFaultPlan

    recorder = PhaseRecorder()
    plan = TimedFaultPlan(events=tuple(prefix_events), phase_hook=recorder)
    cluster = build_cluster(config)
    design = DESIGNS[config.design](cluster)
    app = config.make_app()
    result = design.run_job(app, config.fti, plan,
                            label=config.label() + "/probe")
    return PhaseTimeline.build(recorder), result


__all__ = ["PhaseRecorder", "PhaseSpan", "PhaseTimeline", "PhaseWindow",
           "probe_timeline"]
