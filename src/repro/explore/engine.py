"""The exploration engine: probe, lower, search, certify.

Ties the pieces together:

* :func:`lower_scenario` / :func:`lower_schedule` — turn a
  phase-anchored :class:`~repro.explore.schedule.FaultSchedule` into an
  exact-time :class:`~repro.faults.plans.TimedFaultPlan` for one exact
  configuration. Lowering is **iterative**: event *k* resolves against
  a timeline probed with events ``0..k-1`` already replayed, so a later
  event may target a recovery phase an earlier event provokes (the
  probe for ``ckpt.L1.write;ulfm.shrink`` replays the checkpoint-window
  kill and records the repair it triggers). The final plan carries a
  :class:`~repro.explore.guards.ProgressGuard` as its phase hook, so a
  schedule that livelocks a design fails structurally.
* :class:`ExploreContext` — what a search strategy sees: the clean
  timeline, a deterministic candidate enumeration, and a memoized
  ``evaluate`` that runs one candidate schedule through the standard
  engine path (``execute_unit``) with optional result-store resume.
* :func:`explore_stream` / :func:`explore` — drive a strategy from the
  ``strategy`` registry, streaming typed
  :class:`~repro.core.events.ScheduleProbed` progress events, and
  certify the worst case found as an :class:`ExploreOutcome`.
* :func:`worst_case_plan` — the ``worst-of`` scenario kind's lowering:
  search first (exhaustive, budget = ``count``), then lower the winner.

Everything here is deterministic: probes are fault-free simulations,
candidate enumeration is sorted, strategies draw only from their seeded
RNG, and ties break toward the earlier candidate — two identical
invocations pick the same worst case bit-for-bit.

Probe timelines are memoized per ``(configuration, fault prefix)``
within the process, so an exhaustive sweep costs one clean probe plus
one run per candidate, and replaying a frozen schedule re-derives the
identical timeline from the identical probe.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .guards import DEFAULT_LIMIT, ProgressGuard
from .schedule import AnchoredFault, FaultSchedule
from .strategies import STRATEGIES
from .timeline import PhaseTimeline, probe_timeline
from ..core.events import ExploreFinished, ExploreStarted, ScheduleProbed
from ..errors import ConfigurationError
from ..faults.plans import TimedFaultPlan

#: (config key, lowered prefix) -> (PhaseTimeline, clean makespan);
#: probes are deterministic, so the cache is a pure memo
_PROBE_CACHE: dict = {}


def _config_key(config) -> str:
    """Canonical identity of a configuration *minus* its fault fields —
    the coordinate system of probe-timeline memoization."""
    from ..core.configs import config_to_dict

    data = config_to_dict(config)
    data.pop("faults", None)
    data.pop("inject_fault", None)
    data.pop("seed", None)
    return json.dumps(data, sort_keys=True)


def _probed(config, prefix: tuple):
    """Memoized ``(timeline, clean_makespan)`` for a probe run of
    ``config`` with the lowered ``prefix`` events replayed."""
    key = (_config_key(config),
           tuple((e.time, e.rank, e.kind, e.epoch) for e in prefix))
    hit = _PROBE_CACHE.get(key)
    if hit is None:
        timeline, result = probe_timeline(config, prefix)
        hit = (timeline, result.breakdown.total_seconds)
        _PROBE_CACHE[key] = hit
    return hit


# -- lowering ---------------------------------------------------------------
def lower_schedule(schedule: FaultSchedule, config,
                   guard_limit: int = DEFAULT_LIMIT) -> TimedFaultPlan:
    """Lower ``schedule`` against ``config``, iteratively probing."""
    lowered: list = []
    for anchored in schedule.events:
        timeline, _ = _probed(config, tuple(lowered))
        lowered.append(anchored.lower(timeline, config.nprocs,
                                      config.nnodes))
    events = tuple(sorted(lowered, key=lambda e: (e.epoch, e.time, e.rank)))
    return TimedFaultPlan(events=events,
                          phase_hook=ProgressGuard(limit=guard_limit))


def lower_scenario(scenario, config) -> TimedFaultPlan:
    """The ``at-phase`` kind's ``lower_plan`` body."""
    return lower_schedule(FaultSchedule.parse(scenario.schedule), config)


def worst_case_plan(scenario, config, rep: int, seed: int) -> TimedFaultPlan:
    """The ``worst-of`` kind's ``lower_plan`` body: exhaustive search
    with a ``count``-candidate budget, then lower the winner.

    ``rep`` and ``seed`` are deliberately unused — the exhaustive sweep
    is deterministic, so every repetition of a ``worst-of`` config runs
    the same certified worst case."""
    outcome = explore(config, strategy="exhaustive", budget=scenario.count)
    return lower_schedule(FaultSchedule.parse(outcome.best_spec), config)


# -- the search context -----------------------------------------------------
@dataclass
class ExploreContext:
    """What a :class:`~repro.explore.strategies.SearchStrategy` sees."""

    config: object
    timeline: PhaseTimeline
    budget: int | None = None
    seed: int = 0
    store: object = None
    _memo: dict = field(default_factory=dict, repr=False)
    _resume: "dict | None" = field(default=None, repr=False)

    def candidates(self) -> list:
        """The deterministic phase-boundary candidate enumeration:
        every epoch-0 window's opening boundary and midpoint, aimed at
        the window's first participating rank, sorted."""
        specs = set()
        for window in self.timeline.windows:
            if window.epoch != 0:
                continue
            live = [r for r in window.ranks if r >= 0]
            rank = live[0] if live else 0
            specs.add(AnchoredFault(anchor=window.anchor,
                                    occurrence=window.occurrence,
                                    rank=rank).to_atom())
            span = window.end - window.start
            if span > 0:
                specs.add(AnchoredFault(anchor=window.anchor,
                                        occurrence=window.occurrence,
                                        offset=round(0.5 * span, 6),
                                        rank=rank).to_atom())
        return sorted(specs)

    def evaluate(self, spec: str) -> float:
        """Makespan of ``config`` under the candidate schedule ``spec``.

        Runs through the standard engine path (same run keys, same
        store records as a campaign over the ``at-phase`` config), so
        results are memoized in-process *and* resumable from a store.
        """
        if spec in self._memo:
            return self._memo[spec]
        from ..core.breakdown import (run_result_to_dict,
                                      try_run_result_from_dict)
        from ..core.configs import config_to_dict
        from ..core.engine import RunUnit, execute_unit
        from ..faults.scenarios import FaultScenario

        cfg = self.config.with_faults(
            FaultScenario(kind="at-phase", schedule=spec))
        unit = RunUnit(cfg, 0)
        result = None
        if self.store is not None:
            if self._resume is None:
                self._resume = self.store.load_completed()
            record = self._resume.get(unit.key)
            if record is not None:
                result = try_run_result_from_dict(record["result"])
        if result is None:
            result = execute_unit(unit)
            if self.store is not None:
                self.store.append(unit.key, config_to_dict(cfg), 0,
                                  run_result_to_dict(result))
        makespan = result.breakdown.total_seconds
        self._memo[spec] = makespan
        return makespan


# -- driving a search -------------------------------------------------------
@dataclass(frozen=True)
class ExploreOutcome:
    """The certified result of one worst-case search."""

    best_spec: str
    best: float
    probes: int
    baseline: float
    timeline: PhaseTimeline
    config: object

    @property
    def slowdown(self) -> float:
        """Worst-case makespan over the fault-free baseline."""
        return self.best / self.baseline if self.baseline > 0 else 0.0

    def best_config(self):
        """The ``at-phase`` configuration that replays the worst case."""
        from ..faults.scenarios import FaultScenario

        return self.config.with_faults(
            FaultScenario(kind="at-phase", schedule=self.best_spec))


def explore_stream(config, strategy: str = "exhaustive",
                   budget: int | None = None, seed: int | None = None,
                   store=None):
    """Run one worst-case search, yielding typed progress events:
    ``ExploreStarted``, one ``ScheduleProbed`` per candidate, and a
    final ``ExploreFinished``."""
    search = STRATEGIES.resolve(strategy)
    timeline, baseline = _probed(config, ())
    ctx = ExploreContext(config=config, timeline=timeline, budget=budget,
                         seed=config.seed if seed is None else seed,
                         store=store)
    yield ExploreStarted(config_label=config.label(), strategy=strategy,
                         candidates=len(ctx.candidates()),
                         anchors=timeline.anchors())
    best_spec, best, probes = "", float("-inf"), 0
    gen = search.run(ctx)
    while True:
        try:
            spec, makespan = next(gen)
        except StopIteration as stop:
            final = stop.value
            break
        probes += 1
        if makespan > best:
            best_spec, best = spec, makespan
        yield ScheduleProbed(spec=spec, makespan=makespan,
                             best_spec=best_spec, best=best, probes=probes)
    if final is None or final[0] is None:
        raise ConfigurationError(
            "strategy %r evaluated no candidate schedules for %s "
            "(empty timeline or zero budget?)" % (strategy, config.label()))
    yield ExploreFinished(best_spec=final[0], best=final[1],
                          probes=final[2], baseline=baseline)


def explore(config, strategy: str = "exhaustive",
            budget: int | None = None, seed: int | None = None,
            store=None, progress=None) -> ExploreOutcome:
    """Drain :func:`explore_stream` into an :class:`ExploreOutcome`.

    ``progress``, when given, receives every streamed event (the CLI
    passes a renderer).
    """
    timeline, _ = _probed(config, ())
    outcome = None
    for event in explore_stream(config, strategy=strategy, budget=budget,
                                seed=seed, store=store):
        if progress is not None:
            progress(event)
        if isinstance(event, ExploreFinished):
            outcome = ExploreOutcome(
                best_spec=event.best_spec, best=event.best,
                probes=event.probes, baseline=event.baseline,
                timeline=timeline, config=config)
    assert outcome is not None  # stream always ends with ExploreFinished
    return outcome


__all__ = ["ExploreContext", "ExploreOutcome", "explore", "explore_stream",
           "lower_schedule", "lower_scenario", "worst_case_plan"]
