"""Search strategies for worst-case fault-timing exploration.

A strategy decides *which* phase-anchored schedules to try; the
:class:`~repro.explore.engine.ExploreContext` it receives owns the
expensive parts (probing the timeline, running candidates through the
engine with store memoization). Strategies are registry-driven —
``strategy`` is the ninth registry kind — so a custom search is a
self-registering class, no core edits::

    from repro.explore.strategies import STRATEGIES, SearchStrategy

    @STRATEGIES.register("my-anneal")
    class Anneal(SearchStrategy):
        def run(self, ctx):
            ...
            yield spec, makespan          # stream each probe
            return best_spec, best, probes

The ``run`` protocol: a generator that **yields** ``(spec, makespan)``
after every evaluated candidate (the engine turns these into streaming
:class:`~repro.core.events.ScheduleProbed` events) and **returns**
``(best_spec, best_makespan, probes)``. Determinism contract: a
strategy may only draw randomness from ``random.Random(ctx.seed)``, and
ties on makespan must break toward the earlier candidate in its own
deterministic enumeration order — so the same search on the same config
always picks the same worst case, bit-for-bit.

Built-ins:

``exhaustive``
    Every phase-boundary candidate (window starts and midpoints, each
    window's first participating rank), truncated to the budget. The
    reference: on a 1-fault budget its winner is the certified sweep
    worst case.
``random``
    Seeded uniform draws over (window, offset, rank) — the baseline an
    adversarial search must beat.
``bisect``
    Greedy: a coarse boundary pass over the windows, then offset
    bisection inside the best window. Finds sharp intra-window peaks
    with far fewer probes than a dense sweep.
"""

from __future__ import annotations

import random

from .schedule import AnchoredFault
from ..errors import ConfigurationError
from ..registry import Registry


def _check_strategy(name, cls):
    if not callable(getattr(cls, "run", None)):
        raise ConfigurationError(
            "search strategy %r must provide run(ctx)" % name)


#: the ``strategy`` registry: name -> SearchStrategy subclass
#: (instantiated per search)
STRATEGIES = Registry("strategy", validate=_check_strategy,
                      instantiate=True, noun="search strategy")


class SearchStrategy:
    """Base class: the run() generator protocol documented above."""

    def run(self, ctx):
        raise NotImplementedError(
            "search strategy must implement run(ctx)")
        yield  # pragma: no cover - marks run() as a generator


def _better(makespan: float, best: float) -> bool:
    """Strictly-greater comparison: ties keep the earlier candidate."""
    return makespan > best


@STRATEGIES.register("exhaustive")
class ExhaustiveSearch(SearchStrategy):
    """Sweep every phase-boundary candidate (up to the budget)."""

    def run(self, ctx):
        candidates = ctx.candidates()
        if ctx.budget is not None:
            candidates = candidates[:ctx.budget]
        best_spec, best = None, float("-inf")
        probes = 0
        for spec in candidates:
            makespan = ctx.evaluate(spec)
            probes += 1
            if _better(makespan, best):
                best_spec, best = spec, makespan
            yield spec, makespan
        return best_spec, best, probes


@STRATEGIES.register("random")
class RandomSearch(SearchStrategy):
    """Seeded uniform draws over (window, offset, victim rank)."""

    def run(self, ctx):
        rng = random.Random(ctx.seed)
        windows = [w for w in ctx.timeline.windows if w.epoch == 0]
        if not windows:
            raise ConfigurationError(
                "random search needs at least one probed phase window")
        budget = ctx.budget if ctx.budget is not None else 16
        best_spec, best = None, float("-inf")
        probes = 0
        for _ in range(budget):
            window = windows[rng.randrange(len(windows))]
            offset = rng.uniform(0.0, max(0.0, window.end - window.start))
            live = [r for r in window.ranks if r >= 0]
            rank = (live[rng.randrange(len(live))] if live
                    else rng.randrange(ctx.config.nprocs))
            spec = AnchoredFault(anchor=window.anchor,
                                 occurrence=window.occurrence,
                                 offset=round(offset, 6),
                                 rank=rank).to_atom()
            makespan = ctx.evaluate(spec)
            probes += 1
            if _better(makespan, best):
                best_spec, best = spec, makespan
            yield spec, makespan
        return best_spec, best, probes


@STRATEGIES.register("bisect")
class BisectSearch(SearchStrategy):
    """Coarse boundary pass, then offset bisection in the best window."""

    #: stop bisecting once the bracket is this narrow (seconds)
    RESOLUTION = 1e-3

    def run(self, ctx):
        windows = [w for w in ctx.timeline.windows if w.epoch == 0]
        if not windows:
            raise ConfigurationError(
                "bisect search needs at least one probed phase window")
        budget = ctx.budget if ctx.budget is not None else 4 * len(windows)
        best_spec, best, best_window = None, float("-inf"), None
        probes = 0

        def atom(window, offset):
            live = [r for r in window.ranks if r >= 0]
            return AnchoredFault(anchor=window.anchor,
                                 occurrence=window.occurrence,
                                 offset=round(offset, 6),
                                 rank=live[0] if live else 0).to_atom()

        # pass 1: every window's opening boundary
        for window in windows:
            if probes >= budget:
                break
            spec = atom(window, 0.0)
            makespan = ctx.evaluate(spec)
            probes += 1
            if _better(makespan, best):
                best_spec, best, best_window = spec, makespan, window
            yield spec, makespan
        # pass 2: bisect offsets inside the winning window
        if best_window is not None:
            lo, hi = 0.0, max(0.0, best_window.end - best_window.start)
            while probes < budget and hi - lo > self.RESOLUTION:
                mid = 0.5 * (lo + hi)
                spec = atom(best_window, mid)
                makespan = ctx.evaluate(spec)
                probes += 1
                if _better(makespan, best):
                    best_spec, best = spec, makespan
                    lo = mid  # climb toward the late half
                else:
                    hi = mid
                yield spec, makespan
        return best_spec, best, probes


__all__ = ["STRATEGIES", "SearchStrategy", "ExhaustiveSearch",
           "RandomSearch", "BisectSearch"]
