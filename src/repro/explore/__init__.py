"""repro.explore — adversarial fault-timing exploration.

The paper injects faults at random iteration boundaries; this package
asks the sharper question: *when is the worst possible moment to fail?*
It gives fault timing a structural coordinate system (phase anchors
measured by a probe run), a frozen schedule format aimed at those
anchors (``at-phase`` scenario specs), search strategies that sweep the
anchor space for the worst-case makespan (``worst-of``), and livelock
guards that turn a design bug under repeated failure-during-recovery
into a structured error instead of a hang.

Entry points: ``Session.explore(...)`` on the :mod:`repro.api` facade,
``match-bench explore`` on the CLI, and the ``at-phase:<schedule>`` /
``worst-of:<budget>`` scenario kinds anywhere a fault spec is accepted.

Import layering: the eager surface (schedule grammar, timelines,
guards, scenario kinds) has no dependency on the engine/config layer,
so :mod:`repro.faults.scenarios` can import it at registration time;
the heavyweight pieces (:mod:`.engine`, :mod:`.strategies`) load
lazily on first attribute access.
"""

from __future__ import annotations

from . import kinds  # noqa: F401  (registers at-phase / worst-of)
from .guards import DEFAULT_LIMIT, ProgressGuard
from .schedule import AnchoredFault, FaultSchedule
from .timeline import (
    PhaseRecorder,
    PhaseSpan,
    PhaseTimeline,
    PhaseWindow,
    probe_timeline,
)

#: lazily exposed: these pull in the engine/config layer
_LAZY = {
    "ExploreContext": "engine",
    "ExploreOutcome": "engine",
    "explore": "engine",
    "explore_stream": "engine",
    "lower_schedule": "engine",
    "lower_scenario": "engine",
    "worst_case_plan": "engine",
    "STRATEGIES": "strategies",
    "SearchStrategy": "strategies",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name))
    import importlib

    return getattr(importlib.import_module("." + module, __name__), name)


__all__ = [
    "AnchoredFault",
    "DEFAULT_LIMIT",
    "ExploreContext",
    "ExploreOutcome",
    "FaultSchedule",
    "PhaseRecorder",
    "PhaseSpan",
    "PhaseTimeline",
    "PhaseWindow",
    "ProgressGuard",
    "STRATEGIES",
    "SearchStrategy",
    "explore",
    "explore_stream",
    "lower_schedule",
    "lower_scenario",
    "probe_timeline",
    "worst_case_plan",
]
