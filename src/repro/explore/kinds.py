"""Scenario kinds for phase-anchored fault schedules.

Two kinds join the ``scenario`` registry here (imported from the bottom
of :mod:`repro.faults.scenarios`, so they are always resolvable
wherever the built-ins are):

``at-phase``
    A frozen :class:`~repro.explore.schedule.FaultSchedule`, carried in
    the scenario's ``schedule`` field as its canonical one-line spec::

        at-phase:ckpt.L1.write~1+0.5@r3
        at-phase:ckpt.L1.write;ulfm.shrink

    Deterministic by construction: the repetition seed is ignored, the
    events are fixed, and lowering (probe + resolve, see
    :func:`repro.explore.engine.lower_scenario`) is itself a
    deterministic function of the config. Replay from a serialized
    config is therefore bit-identical.

``worst-of``
    *"the worst single fault an exhaustive phase-boundary sweep with
    this probe budget can find"* — running such a config first searches
    (store-memoized), then runs the winning ``at-phase`` schedule::

        worst-of:32        # sweep at most 32 candidate schedules

Both kinds describe a fixed event count rather than an arrival
process: their hazard ``rate`` is legitimately 0.0 (nothing for
``interval="auto"``'s renewal model to optimise against) while
:meth:`expected_events` reports the exact scheduled count.

Neither kind can lower through the context-free ``make_plan`` protocol
— anchors only have coordinates relative to one exact configuration —
so they implement the harness's ``lower_plan`` hook instead and
``make_plan`` fails loudly if something sidesteps the harness.
"""

from __future__ import annotations

from .schedule import FaultSchedule
from ..errors import ConfigurationError
from ..faults.scenarios import SCENARIOS, ScenarioKind


@SCENARIOS.register("at-phase")
class AtPhaseKind(ScenarioKind):
    """A frozen phase-anchored schedule (``at-phase:<spec>``)."""

    spec_positional = "schedule"
    uses = frozenset({"schedule"})

    def validate(self, scenario) -> None:
        FaultSchedule.parse(scenario.schedule)  # raises with the grammar

    def label(self, scenario) -> str:
        return "at-phase[%s]" % scenario.schedule

    def rate(self, scenario, niters: int) -> float:
        return 0.0

    def expected_events(self, scenario, niters: int) -> float:
        return float(len(FaultSchedule.parse(scenario.schedule)))

    def make_plan(self, scenario, nprocs: int, niters: int, seed: int,
                  nnodes: int):
        raise ConfigurationError(
            "at-phase schedules lower against a probed timeline of the "
            "whole configuration; run them through the harness "
            "(repro.core.harness.make_fault_plan), not make_plan()")

    def lower_plan(self, scenario, config, app, rep: int, seed: int):
        from .engine import lower_scenario

        return lower_scenario(scenario, config)


@SCENARIOS.register("worst-of")
class WorstOfKind(ScenarioKind):
    """The worst schedule found by an exhaustive sweep of at most
    ``count`` phase-boundary candidates (``worst-of:<budget>``)."""

    spec_positional = "count"
    uses = frozenset({"count"})

    def label(self, scenario) -> str:
        return "worst-of%d" % scenario.count

    def rate(self, scenario, niters: int) -> float:
        return 0.0

    def expected_events(self, scenario, niters: int) -> float:
        return 1.0  # the winning schedule is a single fault

    def make_plan(self, scenario, nprocs: int, niters: int, seed: int,
                  nnodes: int):
        raise ConfigurationError(
            "worst-of searches the whole configuration's phase "
            "boundaries; run it through the harness "
            "(repro.core.harness.make_fault_plan), not make_plan()")

    def lower_plan(self, scenario, config, app, rep: int, seed: int):
        from .engine import worst_case_plan

        return worst_case_plan(scenario, config, rep, seed)


__all__ = ["AtPhaseKind", "WorstOfKind"]
