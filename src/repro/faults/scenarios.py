"""Fault scenarios: serializable specs that generate multi-event plans.

The paper (§IV-D) injects exactly one SIGTERM per run; real HPC failure
traces are multi-fault and temporally clustered, which is the regime the
heartbeat-ring detector we ship (Bosilca et al., IJHPCA 2018 — see
:mod:`repro.simmpi.failures`) was built for. A :class:`FaultScenario`
is the experiment-level description of *what class of failures* a run
faces; :meth:`FaultScenario.make_plan` turns it into a concrete,
deterministic :class:`~repro.faults.plans.FaultPlan` for one
``(config, repetition)`` run.

Scenario *kinds* are registry-driven: each is a :class:`ScenarioKind`
in the ``scenario`` :class:`repro.registry.Registry` (``SCENARIOS``),
which owns the kind's validation, label, spec grammar, hazard rate and
plan draw. A new failure regime is a self-registering class — no core
edits::

    from repro.faults.plans import FaultEvent
    from repro.faults.scenarios import SCENARIOS, ScenarioKind

    @SCENARIOS.register("stride")
    class StrideKind(ScenarioKind):
        spec_positional = "count"          # "stride:4" sets count=4
        uses = frozenset({"count", "min_iteration"})

        def draw(self, scenario, rng, nprocs, niters, nnodes):
            step = max(1, (niters - scenario.min_iteration)
                       // scenario.count)
            return [FaultEvent(rng.randrange(nprocs), i)
                    for i in range(scenario.min_iteration, niters, step)
                    ][:scenario.count]

Built-in kinds:

``none``
    No injection (the clean baseline).
``single``
    The paper's injection: one SIGTERM at a uniformly random
    ``(rank, iteration)``. Draws are bit-identical to the historical
    :meth:`FaultPlan.single_random` path, so every legacy
    ``inject_fault=True`` result is reproduced exactly.
``independent``
    ``count`` independent kills at distinct uniformly random
    ``(rank, iteration)`` coordinates; the first ``node_count`` of them
    fail the victim's whole node (surviving a node loss additionally
    requires FTI level >= 2, because the node's volatile storage — and
    thus any L1 checkpoints — is wiped).
``correlated``
    A spatially and temporally clustered burst of ``count`` whole-node
    failures: distinct victim nodes whose failure iterations all land
    within ``window`` iterations of a random anchor (the classic
    cascading-hardware-fault trace shape).
``poisson``
    A Poisson arrival process mapped onto main-loop iterations: kill
    arrivals with exponential inter-arrival times of mean
    ``mtbf_iters`` iterations, each hitting a uniformly random rank,
    until the run's iteration budget is exhausted. A draw may legally
    produce zero events (the job outlives its MTBF).

Scenarios are frozen, hashable and JSON-serializable (``to_dict`` /
``from_dict``), so they participate in canonical configs, run keys and
campaign result stores like every other config field. Custom kinds
reuse the same generic parameter fields (``count``, ``window``, ...)
so serialization and run keys need no per-kind code; a field the kind
does not list in :attr:`ScenarioKind.uses` must stay at its default
(silently accepting it would mint distinct run keys for identical
runs).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, fields

from .plans import FaultEvent, FaultPlan
from ..errors import ConfigurationError
from ..registry import Registry


class ScenarioKind:
    """Behaviour of one scenario kind (one ``scenario`` registry entry).

    Subclasses override :meth:`draw` (and usually :attr:`uses`,
    :attr:`spec_positional`, :meth:`label`); kinds with a bespoke draw
    procedure (``single``'s legacy-identical path) override
    :meth:`make_plan` wholesale.
    """

    #: whether runs under this kind inject any failures at all
    injects = True
    #: FaultScenario field the spec grammar's positional argument maps
    #: to (``"independent:3"`` -> ``count=3``); None = no positional
    spec_positional = None
    #: generic FaultScenario fields this kind consumes; any *other*
    #: field passed with a non-default value is rejected for run-key
    #: hygiene
    uses = frozenset()

    def validate(self, scenario: "FaultScenario") -> None:
        """Kind-specific checks beyond the generic bounds."""

    def label(self, scenario: "FaultScenario") -> str:
        """Compact human label used in config labels and reports."""
        return scenario.kind

    def rate(self, scenario: "FaultScenario", niters: int) -> float:
        """Hazard rate: expected fault events per main-loop iteration.

        The analytic models (:mod:`repro.modeling`) consume this instead
        of reaching into kind internals, so a custom kind only has to
        describe its own arrival process. The default covers every
        fixed-count kind: ``count`` events spread uniformly over the
        targetable ``[min_iteration, niters)`` window. Kinds with a true
        arrival process (``poisson``) override it; *deterministic* kinds
        (the phase-anchored schedules of :mod:`repro.explore`) override
        it to 0.0 — a fixed schedule is not a renewal process, so it
        contributes no memoryless hazard for ``interval="auto"`` to
        optimise against.
        """
        span = niters - scenario.min_iteration
        if span <= 0:
            raise ConfigurationError(
                "hazard rate needs niters > min_iteration")
        if not self.injects:
            return 0.0
        return scenario.count / span

    def expected_events(self, scenario: "FaultScenario",
                        niters: int) -> float:
        """Expected fault events over one whole run.

        Default: the hazard rate integrated over the targetable window —
        exact for every renewal-process kind. Kinds whose event count is
        fixed by construction (phase-anchored schedules) override this
        with the exact count, because their ``rate`` is legitimately
        zero yet their runs do inject.
        """
        return self.rate(scenario, niters) * (niters - scenario.min_iteration)

    def make_plan(self, scenario: "FaultScenario", nprocs: int,
                  niters: int, seed: int, nnodes: int) -> FaultPlan:
        """Default draw protocol: one seeded RNG, events sorted into
        the runtime's (iteration, rank) injection order."""
        rng = random.Random(seed)
        events = self.draw(scenario, rng, nprocs, niters, nnodes)
        return FaultPlan(events=tuple(
            sorted(events, key=lambda e: (e.iteration, e.rank))))

    def draw(self, scenario: "FaultScenario", rng: random.Random,
             nprocs: int, niters: int, nnodes: int) -> list:
        """Produce the kind's :class:`FaultEvent` list for one run."""
        raise NotImplementedError(
            "scenario kind %r must implement draw() or make_plan()"
            % (scenario.kind,))


#: the ``scenario`` registry: kind name -> ScenarioKind instance
SCENARIOS = Registry("scenario", instantiate=True, noun="scenario kind")

#: the built-in scenario kinds, in documentation order (the registry
#: may hold more once plugins are imported); the phase-anchored kinds
#: register from :mod:`repro.explore.kinds` at the bottom of this module
SCENARIO_KINDS = ("none", "single", "independent", "correlated", "poisson",
                  "at-phase", "worst-of")


#: FaultScenario fields serialized unconditionally: the exact field set
#: run-key schema 2 hashed. Fields added later serialize only when they
#: leave their default, keeping old run keys bit-identical.
_SCHEMA_FROZEN_FIELDS = frozenset(
    {"kind", "count", "node_count", "mtbf_iters", "window",
     "min_iteration"})


@dataclass(frozen=True)
class FaultScenario:
    """A serializable description of one run's failure regime."""

    kind: str = "none"
    #: number of kills (``independent``) / failed nodes (``correlated``)
    count: int = 1
    #: how many of an ``independent`` scenario's kills are node failures
    node_count: int = 0
    #: ``poisson``: mean iterations between kill arrivals
    mtbf_iters: float = 0.0
    #: ``correlated``: burst width in iterations (0 = ``niters // 8``)
    window: int = 0
    #: earliest iteration any event may target (the job always survives
    #: at least ``min_iteration`` iterations, matching the paper's loop)
    min_iteration: int = 1
    #: phase-anchored kinds (``at-phase``): the serialized
    #: :class:`repro.explore.schedule.FaultSchedule` spec, e.g.
    #: ``"ckpt.L1.write~1+0.5@r3;ulfm.shrink"`` (colon-free by design —
    #: the CLI scenario grammar splits on ``:``)
    schedule: str = ""

    def __post_init__(self):
        handler = SCENARIOS.resolve(self.kind)
        if self.count < 1:
            raise ConfigurationError("scenario count must be >= 1")
        if not 0 <= self.node_count <= self.count:
            raise ConfigurationError(
                "node_count must be between 0 and count")
        if self.min_iteration < 0:
            raise ConfigurationError("min_iteration must be >= 0")
        if self.window < 0:
            raise ConfigurationError("window must be >= 0")
        # a field the kind ignores must stay at its default: silently
        # accepting it would mint distinct run keys for identical runs
        for spec in fields(self):
            if spec.name == "kind" or spec.name in handler.uses:
                continue
            if getattr(self, spec.name) != spec.default:
                raise ConfigurationError(
                    "scenario field %r does not apply to the %r kind "
                    "(it must stay at its default, %r, so identical "
                    "runs share one run key)"
                    % (spec.name, self.kind, spec.default))
        handler.validate(self)

    # -- queries -----------------------------------------------------------
    @property
    def injects(self) -> bool:
        """Whether this scenario injects any failures at all."""
        return SCENARIOS.resolve(self.kind).injects

    def label(self) -> str:
        """Compact human label used in config labels and reports."""
        return SCENARIOS.resolve(self.kind).label(self)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict; the canonical run-key form.

        Fields added after the run-key schema froze (anything not in
        :data:`_SCHEMA_FROZEN_FIELDS`) are omitted while at their
        defaults, so every pre-existing scenario keeps the exact payload
        — and therefore the exact run key — it always had.
        """
        data = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name not in _SCHEMA_FROZEN_FIELDS and value == f.default:
                continue
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data) -> "FaultScenario":
        if isinstance(data, cls):
            return data
        if not isinstance(data, dict):
            raise ConfigurationError(
                "scenario must be a dict or FaultScenario, got %r"
                % (data,))
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise ConfigurationError(
                "scenario dict has unknown fields %s" % sorted(unknown))
        return cls(**data)

    # -- constructors ------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultScenario":
        return cls(kind="none")

    @classmethod
    def single(cls, min_iteration: int = 1) -> "FaultScenario":
        return cls(kind="single", min_iteration=min_iteration)

    @classmethod
    def independent(cls, count: int, node_count: int = 0,
                    min_iteration: int = 1) -> "FaultScenario":
        return cls(kind="independent", count=count, node_count=node_count,
                   min_iteration=min_iteration)

    @classmethod
    def correlated_nodes(cls, count: int, window: int = 0,
                         min_iteration: int = 1) -> "FaultScenario":
        return cls(kind="correlated", count=count, window=window,
                   min_iteration=min_iteration)

    @classmethod
    def poisson(cls, mtbf_iters: float,
                min_iteration: int = 1) -> "FaultScenario":
        return cls(kind="poisson", mtbf_iters=mtbf_iters,
                   min_iteration=min_iteration)

    # -- hazard ------------------------------------------------------------
    def rate(self, niters: int) -> float:
        """Expected fault events per main-loop iteration of a run of
        ``niters`` iterations (the kind's :meth:`ScenarioKind.rate`)."""
        return SCENARIOS.resolve(self.kind).rate(self, niters)

    def expected_events(self, niters: int) -> float:
        """Expected fault events over one whole run (the kind's
        :meth:`ScenarioKind.expected_events`; for renewal-process kinds
        this is the hazard rate integrated over the targetable window,
        for fixed-schedule kinds the exact event count)."""
        return SCENARIOS.resolve(self.kind).expected_events(self, niters)

    # -- plan generation ---------------------------------------------------
    def make_plan(self, nprocs: int, niters: int, seed: int,
                  nnodes: int = 1) -> FaultPlan:
        """Draw one concrete :class:`FaultPlan` for a run.

        ``seed`` is the fully derived per-repetition seed (the harness
        owns the ``config.seed``/``rep`` mixing); the same seed always
        produces the same plan. ``nnodes`` is needed to resolve node
        targets under the cluster's block placement.
        """
        handler = SCENARIOS.resolve(self.kind)
        if not handler.injects:
            return FaultPlan.none()
        if nprocs <= 0 or niters <= self.min_iteration:
            raise ConfigurationError(
                "need nprocs > 0 and niters > min_iteration")
        return handler.make_plan(self, nprocs, niters, seed, nnodes)

    @staticmethod
    def _placement(nprocs: int, nnodes: int) -> tuple:
        # the same arithmetic Cluster.place_job uses, so node draws
        # target the nodes the runtime actually kills
        from ..cluster.machine import block_placement

        return block_placement(nprocs, max(1, nnodes))


# -- built-in kinds ---------------------------------------------------------
@SCENARIOS.register("none")
class NoneKind(ScenarioKind):
    """No injection: the clean baseline (no field applies, not even
    ``min_iteration`` — it is meaningless without injection)."""

    injects = False

    def make_plan(self, scenario, nprocs, niters, seed, nnodes):
        return FaultPlan.none()


@SCENARIOS.register("single")
class SingleKind(ScenarioKind):
    """The paper's single SIGTERM; draws delegate to the historical
    :meth:`FaultPlan.single_random` path so every legacy
    ``inject_fault=True`` result stays bit-identical."""

    uses = frozenset({"min_iteration"})

    def label(self, scenario):
        return "single"

    def make_plan(self, scenario, nprocs, niters, seed, nnodes):
        return FaultPlan.single_random(
            nprocs, niters, seed, min_iteration=scenario.min_iteration)


@SCENARIOS.register("independent")
class IndependentKind(ScenarioKind):
    """``count`` independent kills at distinct coordinates; the first
    ``node_count`` of them take out the victim's whole node."""

    spec_positional = "count"
    uses = frozenset({"count", "node_count", "min_iteration"})

    def label(self, scenario):
        suffix = "+n%d" % scenario.node_count if scenario.node_count \
            else ""
        return "kx%d%s" % (scenario.count, suffix)

    # note: independent node-kind events pick a uniformly random victim
    # rank; only the correlated kind consults placement (to draw
    # *distinct* nodes), which is why it alone uses nnodes
    def draw(self, scenario, rng, nprocs, niters, nnodes):
        events = []
        taken = set()
        for i in range(scenario.count):
            for _ in range(64 * nprocs):
                rank = rng.randrange(nprocs)
                iteration = rng.randrange(scenario.min_iteration, niters)
                if (rank, iteration) not in taken:
                    break
            else:
                raise ConfigurationError(
                    "cannot draw %d distinct (rank, iteration) pairs "
                    "from a %dx%d space"
                    % (scenario.count, nprocs,
                       niters - scenario.min_iteration))
            taken.add((rank, iteration))
            kind = "node" if i < scenario.node_count else "process"
            events.append(FaultEvent(rank, iteration, kind=kind))
        return events


@SCENARIOS.register("correlated")
class CorrelatedKind(ScenarioKind):
    """A clustered burst of ``count`` whole-node failures within
    ``window`` iterations of a random anchor."""

    spec_positional = "count"
    uses = frozenset({"count", "window", "min_iteration"})

    def label(self, scenario):
        return "nodes%d" % scenario.count

    def draw(self, scenario, rng, nprocs, niters, nnodes):
        per_node, used_nodes = FaultScenario._placement(nprocs, nnodes)
        if scenario.count > used_nodes:
            raise ConfigurationError(
                "correlated scenario wants %d distinct nodes but the job "
                "only occupies %d" % (scenario.count, used_nodes))
        window = scenario.window or max(1, niters // 8)
        anchor = rng.randrange(scenario.min_iteration, niters)
        victims = rng.sample(range(used_nodes), scenario.count)
        events = []
        for node in victims:
            iteration = min(niters - 1, anchor + rng.randrange(window))
            # the node's first rank; the runtime expands a node-kind
            # event to every co-located rank and wipes the node storage
            events.append(FaultEvent(node * per_node, iteration,
                                     kind="node"))
        return events


@SCENARIOS.register("poisson")
class PoissonKind(ScenarioKind):
    """Exponential inter-arrival kills with mean ``mtbf_iters``."""

    spec_positional = "mtbf_iters"
    uses = frozenset({"mtbf_iters", "min_iteration"})

    def label(self, scenario):
        return "poisson%g" % scenario.mtbf_iters

    def validate(self, scenario):
        # the draw loop makes O(niters / mtbf) arrivals, so the MTBF
        # must be finite and not degenerate-small (0.01 iterations
        # already means ~100 kill arrivals per loop iteration)
        if not math.isfinite(scenario.mtbf_iters) \
                or scenario.mtbf_iters < 0.01:
            raise ConfigurationError(
                "poisson scenario needs a finite mtbf_iters >= 0.01")

    def rate(self, scenario, niters):
        # exact for the arrival process itself; the draw's collapse of
        # same-(rank, iteration) arrivals only bites when mtbf_iters
        # approaches 1/nprocs
        if niters <= scenario.min_iteration:
            raise ConfigurationError(
                "hazard rate needs niters > min_iteration")
        return 1.0 / scenario.mtbf_iters

    def draw(self, scenario, rng, nprocs, niters, nnodes):
        events = []
        taken = set()
        t = float(scenario.min_iteration)
        while True:
            t += rng.expovariate(1.0 / scenario.mtbf_iters)
            iteration = int(math.floor(t))
            if iteration >= niters:
                break
            rank = rng.randrange(nprocs)
            if (rank, iteration) in taken:
                continue  # arrivals collapse onto one kill per coordinate
            taken.add((rank, iteration))
            events.append(FaultEvent(rank, iteration))
        return events


# -- CLI spec grammar -------------------------------------------------------
#: per-field coercion applied to key=value spec options (custom kinds
#: reuse the same generic fields, so the grammar needs no per-kind code)
_FIELD_COERCIONS = {"count": int, "node_count": int, "window": int,
                    "min_iteration": int, "mtbf_iters": float,
                    "schedule": str}


def parse_scenario_spec(text: str) -> FaultScenario:
    """Parse a CLI scenario spec into a :class:`FaultScenario`.

    Grammar: ``kind[:arg][:key=value ...]`` where the optional positional
    ``arg`` is the kind's salient parameter (declared by the kind's
    :attr:`ScenarioKind.spec_positional`)::

        none | single
        independent:3            three independent process kills
        independent:3:node=1     ... one of them a whole-node failure
        correlated:2             burst of two node failures
        correlated:2:window=4    ... within four iterations of each other
        poisson:12               kill arrivals with MTBF of 12 iterations

    ``min_iteration=N`` is accepted by every kind. Registered plugin
    kinds parse with the same grammar.
    """
    parts = [p.strip() for p in str(text).split(":") if p.strip()]
    if not parts:
        raise ConfigurationError("empty fault scenario spec")
    kind = parts[0]
    handler = SCENARIOS.resolve(kind)
    kwargs = {"kind": kind}
    rest = parts[1:]
    if rest and "=" not in rest[0]:
        name = handler.spec_positional
        if name is None:
            raise ConfigurationError(
                "scenario kind %r takes no positional argument" % kind)
        kwargs[name] = rest[0]
        rest = rest[1:]
    aliases = {"node": "node_count", "nodes": "node_count",
               "mtbf": "mtbf_iters", "min_iter": "min_iteration"}
    for item in rest:
        if "=" not in item:
            raise ConfigurationError(
                "scenario spec options must look like key=value "
                "(got %r)" % item)
        key, value = item.split("=", 1)
        key = aliases.get(key, key)
        valid = {f.name for f in fields(FaultScenario)} - {"kind"}
        if key not in valid:
            raise ConfigurationError(
                "unknown scenario option %r (have %s)"
                % (key, sorted(valid)))
        if key in kwargs:
            raise ConfigurationError(
                "scenario option %r given twice (positional and "
                "key=value)" % key)
        kwargs[key] = value
    for key, coerce in _FIELD_COERCIONS.items():
        if key in kwargs:
            try:
                kwargs[key] = coerce(kwargs[key])
            except ValueError:
                raise ConfigurationError(
                    "scenario option %s needs %s (got %r)"
                    % (key, "an integer" if coerce is int else "a number",
                       kwargs[key]))
    return FaultScenario(**kwargs)


# The phase-anchored kinds ("at-phase", "worst-of") live with the rest of
# the exploration machinery but must register whenever this module loads:
# the registry's lazy import maps the "scenario" kind to *this* module, so
# a spec like ``at-phase:...`` resolves only if registration happens here.
from ..explore import kinds as _explore_kinds  # noqa: E402,F401
