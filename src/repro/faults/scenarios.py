"""Fault scenarios: serializable specs that generate multi-event plans.

The paper (§IV-D) injects exactly one SIGTERM per run; real HPC failure
traces are multi-fault and temporally clustered, which is the regime the
heartbeat-ring detector we ship (Bosilca et al., IJHPCA 2018 — see
:mod:`repro.simmpi.failures`) was built for. A :class:`FaultScenario`
is the experiment-level description of *what class of failures* a run
faces; :meth:`FaultScenario.make_plan` turns it into a concrete,
deterministic :class:`~repro.faults.plans.FaultPlan` for one
``(config, repetition)`` run.

Supported kinds:

``none``
    No injection (the clean baseline).
``single``
    The paper's injection: one SIGTERM at a uniformly random
    ``(rank, iteration)``. Draws are bit-identical to the historical
    :meth:`FaultPlan.single_random` path, so every legacy
    ``inject_fault=True`` result is reproduced exactly.
``independent``
    ``count`` independent kills at distinct uniformly random
    ``(rank, iteration)`` coordinates; the first ``node_count`` of them
    fail the victim's whole node (surviving a node loss additionally
    requires FTI level >= 2, because the node's volatile storage — and
    thus any L1 checkpoints — is wiped).
``correlated``
    A spatially and temporally clustered burst of ``count`` whole-node
    failures: distinct victim nodes whose failure iterations all land
    within ``window`` iterations of a random anchor (the classic
    cascading-hardware-fault trace shape).
``poisson``
    A Poisson arrival process mapped onto main-loop iterations: kill
    arrivals with exponential inter-arrival times of mean
    ``mtbf_iters`` iterations, each hitting a uniformly random rank,
    until the run's iteration budget is exhausted. A draw may legally
    produce zero events (the job outlives its MTBF).

Scenarios are frozen, hashable and JSON-serializable (``to_dict`` /
``from_dict``), so they participate in canonical configs, run keys and
campaign result stores like every other config field.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, fields

from .plans import FaultEvent, FaultPlan
from ..errors import ConfigurationError

#: the recognised scenario kinds, in documentation order
SCENARIO_KINDS = ("none", "single", "independent", "correlated", "poisson")


@dataclass(frozen=True)
class FaultScenario:
    """A serializable description of one run's failure regime."""

    kind: str = "none"
    #: number of kills (``independent``) / failed nodes (``correlated``)
    count: int = 1
    #: how many of an ``independent`` scenario's kills are node failures
    node_count: int = 0
    #: ``poisson``: mean iterations between kill arrivals
    mtbf_iters: float = 0.0
    #: ``correlated``: burst width in iterations (0 = ``niters // 8``)
    window: int = 0
    #: earliest iteration any event may target (the job always survives
    #: at least ``min_iteration`` iterations, matching the paper's loop)
    min_iteration: int = 1

    def __post_init__(self):
        if self.kind not in SCENARIO_KINDS:
            raise ConfigurationError(
                "unknown scenario kind %r (have %s)"
                % (self.kind, SCENARIO_KINDS))
        if self.count < 1:
            raise ConfigurationError("scenario count must be >= 1")
        if not 0 <= self.node_count <= self.count:
            raise ConfigurationError(
                "node_count must be between 0 and count")
        if self.min_iteration < 0:
            raise ConfigurationError("min_iteration must be >= 0")
        if self.window < 0:
            raise ConfigurationError("window must be >= 0")
        if self.kind == "single" and (self.count != 1
                                      or self.node_count != 0):
            raise ConfigurationError(
                "the 'single' scenario is exactly the paper's one process "
                "kill; use 'independent' or 'correlated' for more")
        if self.kind == "poisson":
            # the draw loop makes O(niters / mtbf) arrivals, so the MTBF
            # must be finite and not degenerate-small (0.01 iterations
            # already means ~100 kill arrivals per loop iteration)
            if not math.isfinite(self.mtbf_iters) \
                    or self.mtbf_iters < 0.01:
                raise ConfigurationError(
                    "poisson scenario needs a finite mtbf_iters >= 0.01")
        elif self.mtbf_iters:
            raise ConfigurationError(
                "mtbf_iters only applies to the 'poisson' kind")
        # a field the kind ignores must stay at its default: silently
        # accepting it would mint distinct run keys for identical runs
        if self.kind in ("none", "poisson") and self.count != 1:
            raise ConfigurationError(
                "count only applies to 'independent' and 'correlated'")
        if self.kind != "independent" and self.node_count:
            raise ConfigurationError(
                "node_count only applies to the 'independent' kind "
                "('correlated' events are always whole-node)")
        if self.kind != "correlated" and self.window:
            raise ConfigurationError(
                "window only applies to the 'correlated' kind")
        if self.kind == "none" and self.min_iteration != 1:
            raise ConfigurationError(
                "min_iteration is meaningless without injection")

    # -- queries -----------------------------------------------------------
    @property
    def injects(self) -> bool:
        """Whether this scenario injects any failures at all."""
        return self.kind != "none"

    def label(self) -> str:
        """Compact human label used in config labels and reports."""
        if self.kind == "none":
            return "none"
        if self.kind == "single":
            return "single"
        if self.kind == "independent":
            suffix = "+n%d" % self.node_count if self.node_count else ""
            return "kx%d%s" % (self.count, suffix)
        if self.kind == "correlated":
            return "nodes%d" % self.count
        return "poisson%g" % self.mtbf_iters

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data) -> "FaultScenario":
        if isinstance(data, cls):
            return data
        if not isinstance(data, dict):
            raise ConfigurationError(
                "scenario must be a dict or FaultScenario, got %r"
                % (data,))
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise ConfigurationError(
                "scenario dict has unknown fields %s" % sorted(unknown))
        return cls(**data)

    # -- constructors ------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultScenario":
        return cls(kind="none")

    @classmethod
    def single(cls, min_iteration: int = 1) -> "FaultScenario":
        return cls(kind="single", min_iteration=min_iteration)

    @classmethod
    def independent(cls, count: int, node_count: int = 0,
                    min_iteration: int = 1) -> "FaultScenario":
        return cls(kind="independent", count=count, node_count=node_count,
                   min_iteration=min_iteration)

    @classmethod
    def correlated_nodes(cls, count: int, window: int = 0,
                         min_iteration: int = 1) -> "FaultScenario":
        return cls(kind="correlated", count=count, window=window,
                   min_iteration=min_iteration)

    @classmethod
    def poisson(cls, mtbf_iters: float,
                min_iteration: int = 1) -> "FaultScenario":
        return cls(kind="poisson", mtbf_iters=mtbf_iters,
                   min_iteration=min_iteration)

    # -- plan generation ---------------------------------------------------
    def make_plan(self, nprocs: int, niters: int, seed: int,
                  nnodes: int = 1) -> FaultPlan:
        """Draw one concrete :class:`FaultPlan` for a run.

        ``seed`` is the fully derived per-repetition seed (the harness
        owns the ``config.seed``/``rep`` mixing); the same seed always
        produces the same plan. ``nnodes`` is needed to resolve node
        targets under the cluster's block placement.
        """
        if self.kind == "none":
            return FaultPlan.none()
        if nprocs <= 0 or niters <= self.min_iteration:
            raise ConfigurationError(
                "need nprocs > 0 and niters > min_iteration")
        if self.kind == "single":
            # delegate so the draw stays bit-identical to the legacy path
            return FaultPlan.single_random(
                nprocs, niters, seed, min_iteration=self.min_iteration)
        rng = random.Random(seed)
        if self.kind == "independent":
            events = self._draw_independent(rng, nprocs, niters)
        elif self.kind == "correlated":
            events = self._draw_correlated(rng, nprocs, niters, nnodes)
        else:
            events = self._draw_poisson(rng, nprocs, niters)
        return FaultPlan(events=tuple(
            sorted(events, key=lambda e: (e.iteration, e.rank))))

    @staticmethod
    def _placement(nprocs: int, nnodes: int) -> tuple:
        # the same arithmetic Cluster.place_job uses, so node draws
        # target the nodes the runtime actually kills
        from ..cluster.machine import block_placement

        return block_placement(nprocs, max(1, nnodes))

    # note: independent node-kind events pick a uniformly random victim
    # rank; only the correlated kind consults placement (to draw
    # *distinct* nodes), which is why it alone takes nnodes
    def _draw_independent(self, rng, nprocs, niters) -> list:
        events = []
        taken = set()
        for i in range(self.count):
            for _ in range(64 * nprocs):
                rank = rng.randrange(nprocs)
                iteration = rng.randrange(self.min_iteration, niters)
                if (rank, iteration) not in taken:
                    break
            else:
                raise ConfigurationError(
                    "cannot draw %d distinct (rank, iteration) pairs "
                    "from a %dx%d space"
                    % (self.count, nprocs, niters - self.min_iteration))
            taken.add((rank, iteration))
            kind = "node" if i < self.node_count else "process"
            events.append(FaultEvent(rank, iteration, kind=kind))
        return events

    def _draw_correlated(self, rng, nprocs, niters, nnodes) -> list:
        per_node, used_nodes = self._placement(nprocs, nnodes)
        if self.count > used_nodes:
            raise ConfigurationError(
                "correlated scenario wants %d distinct nodes but the job "
                "only occupies %d" % (self.count, used_nodes))
        window = self.window or max(1, niters // 8)
        anchor = rng.randrange(self.min_iteration, niters)
        victims = rng.sample(range(used_nodes), self.count)
        events = []
        for node in victims:
            iteration = min(niters - 1, anchor + rng.randrange(window))
            # the node's first rank; the runtime expands a node-kind
            # event to every co-located rank and wipes the node storage
            events.append(FaultEvent(node * per_node, iteration,
                                     kind="node"))
        return events

    def _draw_poisson(self, rng, nprocs, niters) -> list:
        events = []
        taken = set()
        t = float(self.min_iteration)
        while True:
            t += rng.expovariate(1.0 / self.mtbf_iters)
            iteration = int(math.floor(t))
            if iteration >= niters:
                break
            rank = rng.randrange(nprocs)
            if (rank, iteration) in taken:
                continue  # arrivals collapse onto one kill per coordinate
            taken.add((rank, iteration))
            events.append(FaultEvent(rank, iteration))
        return events


def parse_scenario_spec(text: str) -> FaultScenario:
    """Parse a CLI scenario spec into a :class:`FaultScenario`.

    Grammar: ``kind[:arg][:key=value ...]`` where the optional positional
    ``arg`` is the kind's salient parameter::

        none | single
        independent:3            three independent process kills
        independent:3:node=1     ... one of them a whole-node failure
        correlated:2             burst of two node failures
        correlated:2:window=4    ... within four iterations of each other
        poisson:12               kill arrivals with MTBF of 12 iterations

    ``min_iteration=N`` is accepted by every kind.
    """
    parts = [p.strip() for p in str(text).split(":") if p.strip()]
    if not parts:
        raise ConfigurationError("empty fault scenario spec")
    kind = parts[0]
    if kind not in SCENARIO_KINDS:
        raise ConfigurationError(
            "unknown scenario kind %r (have %s)" % (kind, SCENARIO_KINDS))
    kwargs = {"kind": kind}
    positional = {"independent": "count", "correlated": "count",
                  "poisson": "mtbf_iters"}
    rest = parts[1:]
    if rest and "=" not in rest[0]:
        name = positional.get(kind)
        if name is None:
            raise ConfigurationError(
                "scenario kind %r takes no positional argument" % kind)
        kwargs[name] = rest[0]
        rest = rest[1:]
    aliases = {"node": "node_count", "nodes": "node_count",
               "mtbf": "mtbf_iters", "min_iter": "min_iteration"}
    for item in rest:
        if "=" not in item:
            raise ConfigurationError(
                "scenario spec options must look like key=value "
                "(got %r)" % item)
        key, value = item.split("=", 1)
        key = aliases.get(key, key)
        valid = {f.name for f in fields(FaultScenario)} - {"kind"}
        if key not in valid:
            raise ConfigurationError(
                "unknown scenario option %r (have %s)"
                % (key, sorted(valid)))
        if key in kwargs:
            raise ConfigurationError(
                "scenario option %r given twice (positional and "
                "key=value)" % key)
        kwargs[key] = value
    for key in ("count", "node_count", "window", "min_iteration"):
        if key in kwargs:
            try:
                kwargs[key] = int(kwargs[key])
            except ValueError:
                raise ConfigurationError(
                    "scenario option %s needs an integer (got %r)"
                    % (key, kwargs[key]))
    if "mtbf_iters" in kwargs:
        try:
            kwargs["mtbf_iters"] = float(kwargs["mtbf_iters"])
        except ValueError:
            raise ConfigurationError(
                "mtbf_iters needs a number (got %r)"
                % (kwargs["mtbf_iters"],))
    return FaultScenario(**kwargs)
