"""Fault injection: deterministic SIGTERM-style process kills."""

from .plans import FaultEvent, FaultPlan

__all__ = ["FaultEvent", "FaultPlan"]
