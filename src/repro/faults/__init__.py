"""Fault injection: deterministic SIGTERM-style process kills and the
scenario specs that generate multi-event plans."""

from .plans import FaultEvent, FaultPlan
from .scenarios import SCENARIO_KINDS, FaultScenario, parse_scenario_spec

__all__ = ["FaultEvent", "FaultPlan", "FaultScenario", "SCENARIO_KINDS",
           "parse_scenario_spec"]
