"""Fault plans: which rank (or node) dies at which iteration.

The paper (§IV-D, Fig. 4) raises SIGTERM on a randomly selected MPI
process in a randomly selected iteration of the main computation loop.
A :class:`FaultPlan` is the deterministic, seedable version of that
choice so experiment repetitions are reproducible — generalised to an
arbitrary schedule of process and whole-node kill events. Plans are
drawn from :class:`repro.faults.scenarios.FaultScenario` specs (the
legacy single kill, k-independent kills, correlated node bursts,
Poisson/MTBF arrival processes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FaultEvent:
    """Kill ``rank`` (or its whole node) at main-loop iteration
    ``iteration``.

    ``kind="process"`` is the paper's SIGTERM injection; ``kind="node"``
    fail-stops every rank on the victim's node *and wipes its volatile
    storage*, which is the failure class Reinit claims to handle (§IV-D)
    — surviving it additionally requires FTI level >= 2.
    """

    rank: int
    iteration: int
    kind: str = "process"

    def __post_init__(self):
        if self.rank < 0 or self.iteration < 0:
            raise ConfigurationError("fault event needs non-negative fields")
        if self.kind not in ("process", "node"):
            raise ConfigurationError("fault kind must be process or node")


@dataclass
class FaultPlan:
    """A set of scheduled process kills, consulted at every ITER_MARK."""

    events: tuple = ()
    #: optional phase-instrumentation sink (repro.explore probes /
    #: repro.obs tracing) — same slot :class:`TimedFaultPlan` carries;
    #: pure observation, excluded from equality and repr
    phase_hook: object = field(default=None, repr=False, compare=False)
    #: events that already fired (kills are one-shot); pure execution
    #: state, excluded from equality so a partially consumed plan still
    #: equals a fresh plan scheduling the same events
    _fired: set = field(default_factory=set, repr=False, compare=False)

    def event_for(self, rank: int, iteration: int):
        """The armed event for this (rank, iteration), if any (one-shot)."""
        for event in self.events:
            if (event.rank == rank and event.iteration == iteration
                    and event not in self._fired):
                self._fired.add(event)
                return event
        return None

    def should_kill(self, rank: int, iteration: int) -> bool:
        return self.event_for(rank, iteration) is not None

    def reset(self) -> None:
        """Re-arm all events (used when replaying a plan after Restart).

        A restarted job resumes from a checkpointed iteration *after* the
        kill point, so re-arming is safe: ``should_kill`` only fires when
        the exact iteration is re-executed, which checkpoint recovery
        skips.
        """
        self._fired.clear()

    @property
    def nfaults(self) -> int:
        return len(self.events)

    @classmethod
    def none(cls) -> "FaultPlan":
        """The no-failure configuration."""
        return cls(events=())

    @classmethod
    def single_random(cls, nprocs: int, niters: int, seed: int,
                      min_iteration: int = 1) -> "FaultPlan":
        """One kill at a uniformly random (rank, iteration), as in Fig. 4.

        ``min_iteration`` defaults to 1 so the job always survives at
        least one iteration before dying, matching how the paper's loop
        counter works.
        """
        if nprocs <= 0 or niters <= min_iteration:
            raise ConfigurationError(
                "need nprocs > 0 and niters > min_iteration")
        rng = random.Random(seed)
        rank = rng.randrange(nprocs)
        iteration = rng.randrange(min_iteration, niters)
        return cls(events=(FaultEvent(rank, iteration),))


@dataclass(frozen=True)
class TimedFault:
    """Kill ``rank`` (or its whole node) at exact virtual time ``time``.

    The exact-time twin of :class:`FaultEvent`: where iteration-indexed
    events fire at the victim's next ITER_MARK, a timed fault is
    delivered by the scheduler the moment the victim's clock would pass
    ``time`` — including *between* the blocking steps of an in-flight
    ULFM repair or a checkpoint write, which is exactly where
    phase-anchored schedules aim (see :mod:`repro.explore`).

    ``epoch`` selects the job incarnation the event belongs to: 0 is
    the initial launch, each job-level relaunch (Restart's abort path)
    increments it, so "kill during the *second* incarnation's redeploy
    window" is expressible. Carries ``iteration = -1`` so store
    serialization (``rank/iteration/kind`` duck-typed attrs) round-trips
    without a schema change.
    """

    time: float
    rank: int
    kind: str = "process"
    epoch: int = 0
    #: fixed sentinel: timed events are not iteration-indexed
    iteration: int = -1

    def __post_init__(self):
        if self.rank < 0 or self.time < 0.0 or self.epoch < 0:
            raise ConfigurationError(
                "timed fault needs non-negative time/rank/epoch")
        if self.kind not in ("process", "node"):
            raise ConfigurationError("fault kind must be process or node")


@dataclass
class TimedFaultPlan:
    """Exact-time kill schedule, consulted by the scheduler every step.

    Duck-type compatible with :class:`FaultPlan` everywhere the harness
    touches a plan — ``events``/``nfaults``/``event_for``/``reset`` —
    but injection happens in :meth:`due_event`, called by
    :class:`repro.simmpi.runtime.Runtime` before resuming each rank, so
    a due kill lands between coroutine yields (inside repair protocols)
    instead of waiting for the next app iteration.
    """

    events: tuple = ()
    #: current job incarnation; the design's run_job advances this on
    #: every relaunch so epoch-scoped events arm at the right lifetime
    epoch: int = 0
    #: optional phase-instrumentation sink (see repro.explore.timeline);
    #: travels on the plan because the plan is the only object threaded
    #: from the harness into Runtime
    phase_hook: object = None
    #: events already delivered (one-shot across the whole job, epochs
    #: included); execution state, excluded from equality
    _fired: set = field(default_factory=set, repr=False, compare=False)
    #: delivery log [(epoch, time, rank)] for regression assertions
    fired_log: list = field(default_factory=list, repr=False, compare=False)

    def due_event(self, rank: int, now: float):
        """The armed event for ``rank`` whose time has come (one-shot).

        Earliest-first among this epoch's due events so two events on
        one rank deliver in schedule order even if the rank's clock
        jumps past both in a single blocking step.
        """
        best = None
        for event in self.events:
            if (event.rank == rank and event.epoch == self.epoch
                    and event.time <= now and event not in self._fired
                    and (best is None or event.time < best.time)):
                best = event
        if best is not None:
            self._fired.add(best)
            self.fired_log.append((self.epoch, best.time, best.rank))
        return best

    def event_for(self, rank: int, iteration: int):
        """Timed plans never fire on iteration marks."""
        return None

    def should_kill(self, rank: int, iteration: int) -> bool:
        return False

    def reset(self) -> None:
        """No-op: timed events are one-shot per (epoch, event).

        A Restart relaunch re-runs the plan under a *new* epoch (set by
        the design's run_job), so earlier epochs' fired events must stay
        fired — unlike iteration-indexed plans, the same virtual time
        recurs in every incarnation.
        """

    @property
    def nfaults(self) -> int:
        return len(self.events)
