"""Fault plans: which rank (or node) dies at which iteration.

The paper (§IV-D, Fig. 4) raises SIGTERM on a randomly selected MPI
process in a randomly selected iteration of the main computation loop.
A :class:`FaultPlan` is the deterministic, seedable version of that
choice so experiment repetitions are reproducible — generalised to an
arbitrary schedule of process and whole-node kill events. Plans are
drawn from :class:`repro.faults.scenarios.FaultScenario` specs (the
legacy single kill, k-independent kills, correlated node bursts,
Poisson/MTBF arrival processes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FaultEvent:
    """Kill ``rank`` (or its whole node) at main-loop iteration
    ``iteration``.

    ``kind="process"`` is the paper's SIGTERM injection; ``kind="node"``
    fail-stops every rank on the victim's node *and wipes its volatile
    storage*, which is the failure class Reinit claims to handle (§IV-D)
    — surviving it additionally requires FTI level >= 2.
    """

    rank: int
    iteration: int
    kind: str = "process"

    def __post_init__(self):
        if self.rank < 0 or self.iteration < 0:
            raise ConfigurationError("fault event needs non-negative fields")
        if self.kind not in ("process", "node"):
            raise ConfigurationError("fault kind must be process or node")


@dataclass
class FaultPlan:
    """A set of scheduled process kills, consulted at every ITER_MARK."""

    events: tuple = ()
    #: events that already fired (kills are one-shot); pure execution
    #: state, excluded from equality so a partially consumed plan still
    #: equals a fresh plan scheduling the same events
    _fired: set = field(default_factory=set, repr=False, compare=False)

    def event_for(self, rank: int, iteration: int):
        """The armed event for this (rank, iteration), if any (one-shot)."""
        for event in self.events:
            if (event.rank == rank and event.iteration == iteration
                    and event not in self._fired):
                self._fired.add(event)
                return event
        return None

    def should_kill(self, rank: int, iteration: int) -> bool:
        return self.event_for(rank, iteration) is not None

    def reset(self) -> None:
        """Re-arm all events (used when replaying a plan after Restart).

        A restarted job resumes from a checkpointed iteration *after* the
        kill point, so re-arming is safe: ``should_kill`` only fires when
        the exact iteration is re-executed, which checkpoint recovery
        skips.
        """
        self._fired.clear()

    @property
    def nfaults(self) -> int:
        return len(self.events)

    @classmethod
    def none(cls) -> "FaultPlan":
        """The no-failure configuration."""
        return cls(events=())

    @classmethod
    def single_random(cls, nprocs: int, niters: int, seed: int,
                      min_iteration: int = 1) -> "FaultPlan":
        """One kill at a uniformly random (rank, iteration), as in Fig. 4.

        ``min_iteration`` defaults to 1 so the job always survives at
        least one iteration before dying, matching how the paper's loop
        counter works.
        """
        if nprocs <= 0 or niters <= min_iteration:
            raise ConfigurationError(
                "need nprocs > 0 and niters > min_iteration")
        rng = random.Random(seed)
        rank = rng.randrange(nprocs)
        iteration = rng.randrange(min_iteration, niters)
        return cls(events=(FaultEvent(rank, iteration),))
