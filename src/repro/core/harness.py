"""The experiment harness: run configurations, average repetitions.

The paper runs each configuration five times with a fresh random fault
location per run and reports the average (§V-B). Repetitions without
fault injection are deterministic in this simulator, so a single run is
exact; with faults, each repetition draws its (rank, iteration) from a
distinct seed.

Execution itself lives in :func:`repro.core.engine.execute_unit` — the
single run path shared with parallel/sharded campaigns — while this
module keeps the seed-derivation and averaging conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .breakdown import RunResult, TimeBreakdown, average_breakdowns
from .configs import DEFAULT_REPETITIONS, ExperimentConfig
from ..cluster.machine import Cluster
from ..faults.plans import FaultPlan


def build_cluster(config: ExperimentConfig) -> Cluster:
    """A fresh 32-node cluster (the paper's fixed node pool)."""
    return Cluster(nnodes=config.nnodes)


def make_fault_plan(config: ExperimentConfig, app, rep: int) -> FaultPlan:
    """Draw the repetition's fault plan from the config's scenario.

    The per-repetition seed derivation (``seed * 1000003 + rep * 101 +
    17``) predates scenarios and is shared by every kind, so the legacy
    single-kill scenario reproduces the paper-era draws bit-for-bit.
    """
    return config.faults.make_plan(
        nprocs=config.nprocs, niters=app.niters,
        seed=(config.seed * 1000003 + rep * 101 + 17),
        nnodes=config.nnodes)


def run_experiment(config: ExperimentConfig) -> RunResult:
    """Run one repetition of one configuration.

    A single run is repetition 0 by definition, so this is bit-identical
    to ``run_experiment_averaged(config, repetitions=1).runs[0]``; the
    config's ``seed`` enters only through the fault-seed derivation, not
    as a repetition index.
    """
    from .engine import RunUnit, execute_unit

    return execute_unit(RunUnit(config, rep=0))


@dataclass
class AveragedResult:
    """Mean breakdown over repetitions plus per-rep detail."""

    config_label: str
    breakdown: TimeBreakdown
    repetitions: int
    runs: list = field(default_factory=list)

    @property
    def verified(self) -> bool:
        return all(r.verified for r in self.runs)

    @property
    def recovery_seconds(self) -> float:
        return self.breakdown.recovery_seconds


def run_experiment_averaged(config: ExperimentConfig,
                            repetitions: int | None = None) -> AveragedResult:
    """Run a configuration the paper's five times and average.

    Deterministic (no-fault) configurations collapse to one run since
    every repetition would be bit-identical.
    """
    from .engine import RunUnit, execute_unit

    if repetitions is None:
        repetitions = DEFAULT_REPETITIONS if config.inject_fault else 1
    runs = [execute_unit(RunUnit(config, rep))
            for rep in range(repetitions)]
    return AveragedResult(
        config_label=config.label(),
        breakdown=average_breakdowns(r.breakdown for r in runs),
        repetitions=repetitions,
        runs=runs,
    )
