"""The experiment harness: run configurations, average repetitions.

The paper runs each configuration five times with a fresh random fault
location per run and reports the average (§V-B). Repetitions without
fault injection are deterministic in this simulator, so a single run is
exact; with faults, each repetition draws its (rank, iteration) from a
distinct seed.

Execution itself lives in :func:`repro.core.engine.execute_unit` — the
single run path shared with parallel/sharded campaigns — while this
module keeps the seed-derivation and averaging conventions.

``run_experiment`` / ``run_experiment_averaged`` are **deprecation
shims** over the :mod:`repro.api` facade: they produce bit-identical
results (guarded by the determinism pins in
``tests/data/determinism_seed.json``) and will keep working, but new
code should build a :class:`repro.api.Campaign` instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from .breakdown import RunResult, TimeBreakdown
from .configs import ExperimentConfig
from ..cluster.machine import Cluster
from ..faults.plans import FaultPlan


def _deprecated(legacy: str, modern: str) -> None:
    warnings.warn(
        "%s is deprecated; use %s (see docs/API.md)" % (legacy, modern),
        DeprecationWarning, stacklevel=3)


def build_cluster(config: ExperimentConfig) -> Cluster:
    """A fresh 32-node cluster (the paper's fixed node pool)."""
    return Cluster(nnodes=config.nnodes)


def make_fault_plan(config: ExperimentConfig, app, rep: int) -> FaultPlan:
    """Draw the repetition's fault plan from the config's scenario.

    The per-repetition seed derivation (``seed * 1000003 + rep * 101 +
    17``) predates scenarios and is shared by every kind, so the legacy
    single-kill scenario reproduces the paper-era draws bit-for-bit.

    Kinds whose lowering needs the *whole* config — phase-anchored
    schedules must probe a fault-free run of this exact configuration to
    locate their anchors — declare a ``lower_plan`` hook and get it
    instead of the context-free ``make_plan`` protocol.
    """
    from ..faults.scenarios import SCENARIOS

    seed = config.seed * 1000003 + rep * 101 + 17
    handler = SCENARIOS.resolve(config.faults.kind)
    lower = getattr(handler, "lower_plan", None)
    if lower is not None:
        return lower(config.faults, config, app, rep, seed)
    return config.faults.make_plan(
        nprocs=config.nprocs, niters=app.niters,
        seed=seed, nnodes=config.nnodes)


def run_experiment(config: ExperimentConfig) -> RunResult:
    """Run one repetition of one configuration.

    A single run is repetition 0 by definition, so this is bit-identical
    to ``run_experiment_averaged(config, repetitions=1).runs[0]``; the
    config's ``seed`` enters only through the fault-seed derivation, not
    as a repetition index.

    .. deprecated:: 1.1
       Shim over :func:`repro.api.run_single` (bit-identical).
    """
    from ..api import run_single

    _deprecated("run_experiment", "repro.api.run_single / Campaign")
    return run_single(config)


@dataclass
class AveragedResult:
    """Mean breakdown over repetitions plus per-rep detail."""

    config_label: str
    breakdown: TimeBreakdown
    repetitions: int
    runs: list = field(default_factory=list)

    @property
    def verified(self) -> bool:
        return all(r.verified for r in self.runs)

    @property
    def recovery_seconds(self) -> float:
        return self.breakdown.recovery_seconds


def run_experiment_averaged(config: ExperimentConfig,
                            repetitions: int | None = None) -> AveragedResult:
    """Run a configuration the paper's five times and average.

    Deterministic (no-fault) configurations collapse to one run since
    every repetition would be bit-identical.

    .. deprecated:: 1.1
       Shim over :func:`repro.api.run_averaged` (bit-identical: same
       units, same execution path, same averaging order).
    """
    from ..api import run_averaged

    _deprecated("run_experiment_averaged",
                "repro.api.run_averaged / Campaign")
    return run_averaged(config, repetitions)
