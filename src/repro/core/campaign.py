"""Fault-injection campaigns: distributions, not just averages.

The paper reports five-run averages; a campaign runs many seeded
repetitions of one configuration and summarises the distribution of
recovery time and total time — useful for studying how sensitive a
design is to *where* the failure lands (early vs late in the checkpoint
stride, victim rank placement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .configs import ExperimentConfig
from .harness import build_cluster, make_fault_plan
from .designs import DESIGNS
from ..errors import ConfigurationError


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of one metric across a campaign."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values) -> "DistributionSummary":
        values = list(values)
        if not values:
            raise ConfigurationError("cannot summarise zero samples")
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return cls(mean=mean, std=math.sqrt(var), minimum=min(values),
                   maximum=max(values), count=len(values))

    def __str__(self):
        return ("mean %.2f +- %.2f (min %.2f, max %.2f, n=%d)"
                % (self.mean, self.std, self.minimum, self.maximum,
                   self.count))


@dataclass
class CampaignResult:
    """All runs of one campaign plus derived summaries."""

    config_label: str
    runs: list = field(default_factory=list)

    def _metric(self, getter) -> DistributionSummary:
        return DistributionSummary.of(getter(r) for r in self.runs)

    @property
    def recovery(self) -> DistributionSummary:
        return self._metric(lambda r: r.breakdown.recovery_seconds)

    @property
    def total(self) -> DistributionSummary:
        return self._metric(lambda r: r.breakdown.total_seconds)

    @property
    def rework(self) -> DistributionSummary:
        """Application-time variation: dominated by re-executed work."""
        return self._metric(lambda r: r.breakdown.application_seconds)

    @property
    def all_verified(self) -> bool:
        return all(r.verified for r in self.runs)

    def victims(self) -> list:
        """(rank, iteration) of every injected failure, in run order."""
        return [(e.rank, e.iteration)
                for r in self.runs for e in r.fault_events]

    def report(self) -> str:
        lines = ["Campaign: %s (%d runs)" % (self.config_label,
                                             len(self.runs)),
                 "  recovery: %s" % self.recovery,
                 "  total:    %s" % self.total,
                 "  app+rework: %s" % self.rework,
                 "  verified: %s" % self.all_verified]
        return "\n".join(lines)


def run_campaign(config: ExperimentConfig, runs: int = 20) -> CampaignResult:
    """Run ``runs`` seeded repetitions of a fault-injected configuration."""
    if not config.inject_fault:
        raise ConfigurationError(
            "campaigns need inject_fault=True (clean runs are "
            "deterministic; one run suffices)")
    if runs < 2:
        raise ConfigurationError("a campaign needs at least two runs")
    result = CampaignResult(config_label=config.label())
    for rep in range(runs):
        cluster = build_cluster(config)
        design = DESIGNS[config.design](cluster)
        app = config.make_app()
        plan = make_fault_plan(config, app, rep)
        result.runs.append(design.run_job(app, config.fti, plan,
                                          label=config.label()))
    return result
