"""Fault-injection campaigns: distributions, not just averages.

The paper reports five-run averages; a campaign runs many seeded
repetitions of one or more configurations and summarises the
distribution of recovery time and total time — useful for studying how
sensitive a design is to *where* the failure lands (early vs late in
the checkpoint stride, victim rank placement).

Execution is delegated to :mod:`repro.core.engine`, so any campaign can
fan out across worker processes (``jobs``), persist completed runs to a
resumable store (``store_path``/``resume``) and restrict itself to one
shard of the matrix (``shard``) — with summaries bit-identical to the
serial path in every mode.

``run_campaign_matrix`` / ``run_campaign`` are **deprecation shims**
over the :mod:`repro.api` facade (build a
:class:`repro.api.Campaign`, call :meth:`~repro.api.Session.campaigns`)
with bit-identical summaries; the distribution classes here remain the
canonical result types.
"""

from __future__ import annotations

import hashlib
import json
import math
import warnings
from dataclasses import dataclass, field

from .configs import ExperimentConfig, config_from_dict
from .engine import CampaignEngine
from ..errors import ConfigurationError


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of one metric across a campaign."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values) -> "DistributionSummary":
        """Summarise a non-empty sample.

        ``std`` is the *population* standard deviation (ddof=0): the
        campaign's runs are the whole population of interest, not a
        sample from a larger one. A single value therefore yields
        ``std=0.0`` by construction — that is the documented n=1
        behaviour, not missing data. Zero values is the error case and
        raises :class:`ConfigurationError`, because summarising nothing
        would silently report a tight distribution that never ran.
        """
        values = list(values)
        if not values:
            raise ConfigurationError("cannot summarise zero samples")
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return cls(mean=mean, std=math.sqrt(var), minimum=min(values),
                   maximum=max(values), count=len(values))

    def __str__(self):
        return ("mean %.2f +- %.2f (min %.2f, max %.2f, n=%d)"
                % (self.mean, self.std, self.minimum, self.maximum,
                   self.count))


@dataclass
class CampaignResult:
    """All runs of one campaign plus derived summaries."""

    config_label: str
    runs: list = field(default_factory=list)

    def _metric(self, getter) -> DistributionSummary:
        return DistributionSummary.of(getter(r) for r in self.runs)

    @property
    def recovery(self) -> DistributionSummary:
        return self._metric(lambda r: r.breakdown.recovery_seconds)

    @property
    def total(self) -> DistributionSummary:
        return self._metric(lambda r: r.breakdown.total_seconds)

    @property
    def rework(self) -> DistributionSummary:
        """Application-time variation: dominated by re-executed work."""
        return self._metric(lambda r: r.breakdown.application_seconds)

    @property
    def faults_per_run(self) -> DistributionSummary:
        """Injected events per run — the scenario's realised intensity
        (fixed for single/independent draws, variable for Poisson)."""
        return self._metric(lambda r: len(r.fault_events))

    @property
    def all_verified(self) -> bool:
        return all(r.verified for r in self.runs)

    def victims(self) -> list:
        """(rank, iteration) of every injected failure, in run order."""
        return [(e.rank, e.iteration)
                for r in self.runs for e in r.fault_events]

    def node_fault_count(self) -> int:
        """Total whole-node failures injected across the campaign."""
        return sum(1 for r in self.runs for e in r.fault_events
                   if e.kind == "node")

    def report(self) -> str:
        lines = ["Campaign: %s (%d runs)" % (self.config_label,
                                             len(self.runs)),
                 "  recovery: %s" % self.recovery,
                 "  total:    %s" % self.total,
                 "  app+rework: %s" % self.rework,
                 "  faults/run: %s (node faults: %d)"
                 % (self.faults_per_run, self.node_fault_count()),
                 "  verified: %s" % self.all_verified]
        return "\n".join(lines)


def run_campaign_matrix(configs, runs: int = 20, jobs: int = 1,
                        store_path=None, resume: bool = False,
                        shard=None, engine: CampaignEngine = None) -> dict:
    """Sweep ``configs × runs`` and summarise per configuration.

    Returns ``{label: CampaignResult}`` in matrix order, with each
    result's runs in repetition order — the exact order (and therefore
    the exact floating-point sums) the serial path produces, whatever
    ``jobs``/``shard``/``resume`` were used. Sharded invocations only
    include configurations that had at least one run in the shard.

    .. deprecated:: 1.1
       Shim over :class:`repro.api.Campaign` /
       :meth:`repro.api.Session.campaigns` (bit-identical summaries).
    """
    warnings.warn(
        "run_campaign_matrix is deprecated; use repro.api.Campaign "
        "(see docs/API.md)", DeprecationWarning, stacklevel=2)
    return _campaign_matrix_impl(configs, runs, jobs, store_path,
                                 resume, shard, engine)


def _campaign_matrix_impl(configs, runs, jobs, store_path, resume,
                          shard, engine) -> dict:
    from ..api import Campaign, check_campaign

    configs = list(configs)
    check_campaign(configs, runs)
    if engine is not None and (jobs != 1 or store_path is not None
                               or resume or shard is not None):
        raise ConfigurationError(
            "pass execution options either via engine= or as keyword "
            "arguments, not both (the keywords would be silently "
            "ignored)")
    campaign = (Campaign.from_configs(configs).reps(runs).jobs(jobs)
                .store(store_path).resume(resume).shard(shard))
    return campaign.session(engine=engine).run().campaigns()


def run_campaign(config: ExperimentConfig, runs: int = 20, jobs: int = 1,
                 store_path=None, resume: bool = False,
                 shard=None) -> CampaignResult:
    """Run ``runs`` seeded repetitions of a fault-injected configuration.

    .. deprecated:: 1.1
       Shim over :class:`repro.api.Campaign` (bit-identical summaries).
    """
    # own warning (not the matrix shim's) so the attribution points at
    # the function the caller actually used
    warnings.warn(
        "run_campaign is deprecated; use repro.api.Campaign "
        "(see docs/API.md)", DeprecationWarning, stacklevel=2)
    summaries = _campaign_matrix_impl([config], runs, jobs, store_path,
                                      resume, shard, engine=None)
    # a shard that selects zero units already raised inside the engine,
    # so the single config's label is always present
    return summaries[config.label()]


def campaign_results_from_records(records: dict) -> dict:
    """Group result-store records into ``{label: CampaignResult}``.

    ``records`` is the ``{key: record}`` mapping produced by
    :meth:`repro.core.store.ResultStore.load_completed` or
    :func:`repro.core.store.merge_store_paths`. Grouping is by full
    canonical configuration (so two configs differing only in seed do
    not get mixed); runs are ordered by repetition index, matching the
    serial summarisation order bit-for-bit.
    """
    from .breakdown import try_run_result_from_dict

    if not records:
        raise ConfigurationError(
            "no completed runs to summarise (empty store merge)")
    grouped = {}
    skipped = 0
    for record in records.values():
        # tolerate what the engine's resume path tolerates: records from
        # foreign tools or old schemas that no longer deserialize — the
        # holes they leave surface via campaign-report --check-complete
        try:
            canonical = json.dumps(record["config"], sort_keys=True,
                                   separators=(",", ":"))
            entry = (int(record["rep"]),
                     config_from_dict(record["config"]),
                     try_run_result_from_dict(record["result"]))
        except (ConfigurationError, KeyError, TypeError, ValueError):
            skipped += 1
            continue
        if entry[2] is None:
            skipped += 1
            continue
        grouped.setdefault(canonical, []).append(entry)
    if not grouped:
        raise ConfigurationError(
            "no decodable campaign records to summarise "
            "(%d undecodable record(s) skipped)" % skipped)
    summaries = {}
    for canonical in sorted(grouped):
        group = sorted(grouped[canonical], key=lambda e: e[0])
        config = group[0][1]
        # plain label() so store-derived rows match live campaign rows
        label = config.label()
        if label in summaries:
            # label() omits nnodes/fti: never silently merge or drop
            # configs it cannot distinguish — suffix a content hash
            label += "/#" + hashlib.sha256(
                canonical.encode("utf-8")).hexdigest()[:8]
        summaries[label] = CampaignResult(
            config_label=label, runs=[e[2] for e in group])
    return summaries
