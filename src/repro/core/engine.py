"""Parallel, resumable campaign execution engine.

The paper's figures come from sweeping designs × apps × scales with
repeated random fault injections. This engine fans the individual
``(config, repetition)`` runs of such a sweep across worker processes
while keeping three guarantees:

* **Determinism** — each run derives its fault seed exactly as the
  serial harness does (:func:`repro.core.harness.make_fault_plan` with
  ``rep`` as the repetition index), and the simulator itself is
  deterministic, so a run's result is a pure function of its
  :class:`RunUnit`. Parallel, serial, sharded and resumed sweeps are
  bit-identical.
* **Isolation** — workers use the ``spawn`` start method with
  ``maxtasksperchild=1``: every run gets a fresh interpreter, so no
  module-level state (caches, RNG, accelerator handles) leaks between
  runs or differs from a standalone serial run.
* **Resumability** — with a :class:`~repro.core.store.ResultStore`
  attached, every completed run is flushed to disk immediately and a
  restarted sweep skips all content-keyed runs already present.

Sharding (``--shard K/N``) slices the deterministic unit ordering
round-robin (``units[K-1::N]``), so the N shards are disjoint and their
union is exactly the full matrix.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

from .breakdown import (
    RunResult,
    run_result_from_dict,
    run_result_to_dict,
    try_run_result_from_dict,
)
from .configs import (
    ExperimentConfig,
    config_from_dict,
    config_to_dict,
    run_key,
)
from .store import ResultStore
from ..errors import ConfigurationError


@dataclass(frozen=True)
class RunUnit:
    """One schedulable run: a configuration plus a repetition index."""

    config: ExperimentConfig
    rep: int

    @property
    def key(self) -> str:
        # memoised: engine + summarisation consult the key several times
        # per unit, and each computation canonicalises the whole config
        key = self.__dict__.get("_key")
        if key is None:
            key = run_key(self.config, self.rep)
            object.__setattr__(self, "_key", key)
        return key


def campaign_units(configs, runs: int):
    """The full unit list of a sweep, in stable (config, rep) order."""
    if runs < 1:
        raise ConfigurationError("a sweep needs at least one run per cell")
    return [RunUnit(config, rep) for config in configs
            for rep in range(runs)]


def parse_shard(spec: str):
    """``"K/N"`` → ``(K, N)`` with 1 <= K <= N."""
    try:
        k_text, n_text = spec.split("/")
        k, n = int(k_text), int(n_text)
    except (ValueError, AttributeError):
        raise ConfigurationError(
            "shard spec must look like K/N (got %r)" % (spec,))
    if n < 1 or not 1 <= k <= n:
        raise ConfigurationError(
            "shard spec needs 1 <= K <= N (got %r)" % (spec,))
    return k, n


def shard_units(units, k: int, n: int):
    """Round-robin slice K of N over the stable unit ordering."""
    return list(units)[k - 1::n]


def execute_unit(unit: RunUnit) -> RunResult:
    """Run one unit exactly as the serial harness would.

    This is the single execution path: the serial loop, the pool
    workers, and ``run_experiment``-style one-offs all come through
    here, which is what makes the parallel/serial equivalence a
    structural property instead of a test-only promise.
    """
    from .designs import DESIGNS
    from .harness import build_cluster, make_fault_plan

    config = unit.config
    cluster = build_cluster(config)
    design = DESIGNS[config.design](cluster)
    app = config.make_app()
    plan = make_fault_plan(config, app, unit.rep)
    return design.run_job(app, config.fti, plan, label=config.label())


def _pool_worker(payload: dict):
    """Top-level (spawn-picklable) worker: payload in, result dict out."""
    config = config_from_dict(payload["config"])
    result = execute_unit(RunUnit(config, payload["rep"]))
    return payload["key"], run_result_to_dict(result)


class CampaignEngine:
    """Executes a list of :class:`RunUnit` with optional parallelism,
    shard selection and a resumable on-disk store.

    After :meth:`run`, :attr:`executed` / :attr:`skipped` say how many
    units actually ran versus were satisfied from the store.
    """

    def __init__(self, jobs: int = 1, store_path=None, resume: bool = False,
                 shard=None):
        if jobs < 1:
            raise ConfigurationError("--jobs must be >= 1")
        if resume and store_path is None:
            raise ConfigurationError(
                "--resume needs a result store (--store PATH) to resume "
                "from")
        self.jobs = jobs
        self.store = ResultStore(store_path) if store_path else None
        self.resume = resume
        if shard is None:
            self.shard = None
        else:
            # pre-parsed (K, N) pairs go through the same bounds check
            # as "K/N" strings — a 0-based index must raise, not
            # silently select the wrong slice
            if not isinstance(shard, str):
                try:
                    k, n = shard
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        "shard must be a 'K/N' string or a (K, N) pair")
                shard = "%s/%s" % (k, n)
            self.shard = parse_shard(shard)
        self.executed = 0
        self.skipped = 0

    # -- internals ----------------------------------------------------------
    def _record(self, unit: RunUnit, result_dict: dict) -> None:
        if self.store is not None:
            self.store.append(unit.key, config_to_dict(unit.config),
                              unit.rep, result_dict)

    def _completed(self, units) -> dict:
        """Deserialized results for exactly the units this sweep needs.

        Records the sweep doesn't reference (other configs, old
        run-key schemas, foreign tools sharing the store) are never
        deserialized, so they cannot break a resume; a referenced
        record whose payload won't deserialize is treated as not-done
        and simply re-executed — runs are deterministic, so re-running
        is always safe.
        """
        if self.store is None or not self.resume:
            return {}
        records = self.store.load_completed()
        done = {}
        for unit in units:
            record = records.get(unit.key)
            if record is None:
                continue
            result = try_run_result_from_dict(record["result"])
            if result is not None:
                done[unit.key] = result
        return done

    # -- driver -------------------------------------------------------------
    def run(self, units) -> dict:
        """Execute ``units`` (minus shard filter and resumed runs);
        returns ``{key: RunResult}`` for every selected unit."""
        units = list(units)
        if self.shard is not None:
            sharded = shard_units(units, *self.shard)
            if units and not sharded:
                # a mistyped shard must not let a CI job pass green
                # having run nothing
                raise ConfigurationError(
                    "shard %d/%d selects zero of the sweep's %d runs"
                    % (self.shard[0], self.shard[1], len(units)))
            units = sharded
        keys = [u.key for u in units]
        if len(set(keys)) != len(keys):
            raise ConfigurationError("duplicate run units in sweep")
        done = self._completed(units)
        pending = [u for u in units if u.key not in done]
        self.skipped = len(units) - len(pending)
        self.executed = len(pending)
        results = {u.key: done[u.key] for u in units if u.key in done}
        if self.jobs == 1 or len(pending) <= 1:
            for unit in pending:
                result = execute_unit(unit)
                self._record(unit, run_result_to_dict(result))
                results[unit.key] = result
        else:
            by_key = {u.key: u for u in pending}
            payloads = [{"key": u.key, "rep": u.rep,
                         "config": config_to_dict(u.config)}
                        for u in pending]
            ctx = multiprocessing.get_context("spawn")
            nworkers = min(self.jobs, len(pending))
            with ctx.Pool(processes=nworkers, maxtasksperchild=1) as pool:
                for key, result_dict in pool.imap_unordered(_pool_worker,
                                                            payloads):
                    self._record(by_key[key], result_dict)
                    results[key] = run_result_from_dict(result_dict)
        return results
