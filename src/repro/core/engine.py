"""Parallel, resumable campaign execution engine.

The paper's figures come from sweeping designs × apps × scales with
repeated random fault injections. This engine fans the individual
``(config, repetition)`` runs of such a sweep across worker processes
while keeping three guarantees:

* **Determinism** — each run derives its fault seed exactly as the
  serial harness does (:func:`repro.core.harness.make_fault_plan` with
  ``rep`` as the repetition index), and the simulator itself is
  deterministic, so a run's result is a pure function of its
  :class:`RunUnit`. Parallel, serial, sharded and resumed sweeps are
  bit-identical.
* **Isolation** — workers use the ``spawn`` start method with
  ``maxtasksperchild=1``: every run gets a fresh interpreter, so no
  module-level state (caches, RNG, accelerator handles) leaks between
  runs or differs from a standalone serial run.
* **Resumability** — with a :class:`~repro.core.store.ResultStore`
  attached, every completed run is flushed to disk immediately and a
  restarted sweep skips all content-keyed runs already present.

Sharding (``--shard K/N``) slices the deterministic unit ordering
round-robin (``units[K-1::N]``), so the N shards are disjoint and their
union is exactly the full matrix.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

from .breakdown import (
    RunResult,
    run_result_from_dict,
    run_result_to_dict,
    try_run_result_from_dict,
)
from .configs import (
    ExperimentConfig,
    config_from_dict,
    config_to_dict,
    run_key,
)
from .events import (
    CampaignFinished,
    CampaignStarted,
    UnitCompleted,
    UnitFailed,
    UnitSkipped,
    UnitStarted,
)
from .store import open_store
from ..errors import ConfigurationError


def import_plugins(modules) -> None:
    """Import self-registering extension modules by name.

    Registrations live in module state, so a plugin must be imported in
    every process that resolves registry names — the engine calls this
    in each spawned worker (and :class:`repro.api.Session` calls it in
    the driving process) with the campaign's ``plugins`` list.
    """
    import importlib

    for module in modules:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise ConfigurationError(
                "cannot import plugin module %r: %s" % (module, exc))


@dataclass(frozen=True)
class RunUnit:
    """One schedulable run: a configuration plus a repetition index."""

    config: ExperimentConfig
    rep: int

    @property
    def key(self) -> str:
        # memoised: engine + summarisation consult the key several times
        # per unit, and each computation canonicalises the whole config
        key = self.__dict__.get("_key")
        if key is None:
            key = run_key(self.config, self.rep)
            object.__setattr__(self, "_key", key)
        return key


def campaign_units(configs, runs: int):
    """The full unit list of a sweep, in stable (config, rep) order."""
    if runs < 1:
        raise ConfigurationError("a sweep needs at least one run per cell")
    return [RunUnit(config, rep) for config in configs
            for rep in range(runs)]


def parse_shard(spec: str):
    """``"K/N"`` → ``(K, N)`` with 1 <= K <= N."""
    try:
        k_text, n_text = spec.split("/")
        k, n = int(k_text), int(n_text)
    except (ValueError, AttributeError):
        raise ConfigurationError(
            "shard spec must look like K/N (got %r)" % (spec,))
    if n < 1 or not 1 <= k <= n:
        raise ConfigurationError(
            "shard spec needs 1 <= K <= N (got %r)" % (spec,))
    return k, n


def shard_units(units, k: int, n: int):
    """Round-robin slice K of N over the stable unit ordering."""
    return list(units)[k - 1::n]


def execute_unit(unit: RunUnit) -> RunResult:
    """Run one unit exactly as the serial harness would.

    This is the single execution path: the serial loop, the pool
    workers, and ``run_experiment``-style one-offs all come through
    here, which is what makes the parallel/serial equivalence a
    structural property instead of a test-only promise.
    """
    from .designs import DESIGNS
    from .harness import build_cluster, make_fault_plan

    config = unit.config
    cluster = build_cluster(config)
    design = DESIGNS[config.design](cluster)
    app = config.make_app()
    plan = make_fault_plan(config, app, unit.rep)
    return design.run_job(app, config.fti, plan, label=config.label())


def _pool_worker(payload: dict):
    """Top-level (spawn-picklable) worker: payload in, a status-tagged
    result out.

    Exceptions are caught and shipped back as ``("error", exc)`` rather
    than raised, so the parent can attribute the failure to its unit
    (emit :class:`UnitFailed`) before re-raising the original exception
    — a bare raise out of ``imap_unordered`` would lose the unit.
    """
    import_plugins(payload.get("plugins", ()))
    try:
        config = config_from_dict(payload["config"])
        result = execute_unit(RunUnit(config, payload["rep"]))
    except Exception as exc:
        return payload["key"], ("error", exc)
    return payload["key"], ("ok", run_result_to_dict(result))


class CampaignEngine:
    """Executes a list of :class:`RunUnit` with optional parallelism,
    shard selection and a resumable on-disk store.

    After :meth:`run`, :attr:`executed` / :attr:`skipped` say how many
    units actually ran versus were satisfied from the store.
    """

    def __init__(self, jobs: int = 1, store_path=None, resume: bool = False,
                 shard=None, plugins=()):
        if jobs < 1:
            raise ConfigurationError("--jobs must be >= 1")
        if resume and store_path is None:
            raise ConfigurationError(
                "--resume needs a result store (--store PATH) to resume "
                "from")
        self.jobs = jobs
        # store_path may be a path, a "backend:location" spec, or an
        # already-built store object (see repro.core.store.open_store)
        self.store = open_store(store_path)
        self.resume = resume
        self.plugins = tuple(plugins)
        if shard is None:
            self.shard = None
        else:
            # pre-parsed (K, N) pairs go through the same bounds check
            # as "K/N" strings — a 0-based index must raise, not
            # silently select the wrong slice
            if not isinstance(shard, str):
                try:
                    k, n = shard
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        "shard must be a 'K/N' string or a (K, N) pair")
                shard = "%s/%s" % (k, n)
            self.shard = parse_shard(shard)
        self.executed = 0
        self.skipped = 0

    # -- internals ----------------------------------------------------------
    def _record(self, unit: RunUnit, result_dict: dict) -> None:
        if self.store is not None:
            self.store.append(unit.key, config_to_dict(unit.config),
                              unit.rep, result_dict)

    def _completed(self, units) -> dict:
        """Deserialized results for exactly the units this sweep needs.

        Records the sweep doesn't reference (other configs, old
        run-key schemas, foreign tools sharing the store) are never
        deserialized, so they cannot break a resume; a referenced
        record whose payload won't deserialize is treated as not-done
        and simply re-executed — runs are deterministic, so re-running
        is always safe.
        """
        if self.store is None or not self.resume:
            return {}
        records = self.store.load_completed()
        done = {}
        for unit in units:
            record = records.get(unit.key)
            if record is None:
                continue
            result = try_run_result_from_dict(record["result"])
            if result is not None:
                done[unit.key] = result
        return done

    # -- driver -------------------------------------------------------------
    def stream(self, units):
        """Execute ``units`` (minus shard filter and resumed runs) as a
        generator of typed :mod:`repro.core.events`.

        This is the single execution driver; :meth:`run` is just a
        consumer that drains it. A unit that raises emits
        :class:`UnitFailed` and then re-raises, ending the stream.
        """
        units = list(units)
        if self.shard is not None:
            sharded = shard_units(units, *self.shard)
            if units and not sharded:
                # a mistyped shard must not let a CI job pass green
                # having run nothing
                raise ConfigurationError(
                    "shard %d/%d selects zero of the sweep's %d runs"
                    % (self.shard[0], self.shard[1], len(units)))
            units = sharded
        keys = [u.key for u in units]
        if len(set(keys)) != len(keys):
            raise ConfigurationError("duplicate run units in sweep")
        done = self._completed(units)
        pending = [u for u in units if u.key not in done]
        self.skipped = len(units) - len(pending)
        self.executed = len(pending)
        total = len(units)
        yield CampaignStarted(total=total, pending=len(pending),
                              resumed=self.skipped, jobs=self.jobs)
        results = {}
        completed = 0
        for unit in units:
            if unit.key in done:
                results[unit.key] = done[unit.key]
                completed += 1
                yield UnitSkipped(unit=unit, result=done[unit.key],
                                  completed=completed, total=total)
        if self.jobs == 1 or len(pending) <= 1:
            for unit in pending:
                yield UnitStarted(unit=unit, completed=completed,
                                  total=total)
                try:
                    result = execute_unit(unit)
                except Exception as exc:
                    yield UnitFailed(unit=unit, error=repr(exc),
                                     completed=completed, total=total)
                    raise
                self._record(unit, run_result_to_dict(result))
                results[unit.key] = result
                completed += 1
                yield UnitCompleted(unit=unit, result=result,
                                    completed=completed, total=total)
        else:
            by_key = {u.key: u for u in pending}
            payloads = [{"key": u.key, "rep": u.rep,
                         "config": config_to_dict(u.config),
                         "plugins": list(self.plugins)}
                        for u in pending]
            ctx = multiprocessing.get_context("spawn")
            nworkers = min(self.jobs, len(pending))
            with ctx.Pool(processes=nworkers, maxtasksperchild=1) as pool:
                for unit in pending:
                    yield UnitStarted(unit=unit, completed=completed,
                                      total=total)
                for key, (status, outcome) in pool.imap_unordered(
                        _pool_worker, payloads):
                    if status == "error":
                        yield UnitFailed(unit=by_key[key],
                                         error=repr(outcome),
                                         completed=completed, total=total)
                        raise outcome
                    self._record(by_key[key], outcome)
                    results[key] = run_result_from_dict(outcome)
                    completed += 1
                    yield UnitCompleted(unit=by_key[key],
                                        result=results[key],
                                        completed=completed, total=total)
        yield CampaignFinished(results=results, executed=self.executed,
                               skipped=self.skipped)

    def run(self, units) -> dict:
        """Execute ``units``; returns ``{key: RunResult}`` for every
        selected unit (drains :meth:`stream`, discarding the events)."""
        results = {}
        for event in self.stream(units):
            if isinstance(event, CampaignFinished):
                results = event.results
        return results
