"""Parallel, resumable, fault-tolerant campaign execution engine.

The paper's figures come from sweeping designs × apps × scales with
repeated random fault injections. This engine fans the individual
``(config, repetition)`` runs of such a sweep across worker processes
while keeping four guarantees:

* **Determinism** — each run derives its fault seed exactly as the
  serial harness does (:func:`repro.core.harness.make_fault_plan` with
  ``rep`` as the repetition index), and the simulator itself is
  deterministic, so a run's result is a pure function of its
  :class:`RunUnit`. Parallel, serial, sharded, resumed and *retried*
  sweeps are bit-identical.
* **Isolation** — every run executes in its own freshly-``spawn``-ed
  worker process, so no module-level state (caches, RNG, accelerator
  handles) leaks between runs or differs from a standalone serial run —
  and a crashing, hanging or OOM-killed run cannot take the campaign
  down with it.
* **Resumability** — with a :class:`~repro.core.store.ResultStore`
  attached, every completed run is flushed to disk immediately and a
  restarted sweep skips all content-keyed runs already present.
* **Failure containment** — the harness practices what the paper
  preaches. ``on_error`` picks the fail-soft policy (``abort`` re-raises
  on the first failure, today's historical behaviour; ``continue``
  records a structured failure record and finishes the sweep;
  ``retry:N`` is ``continue`` plus up to N retries), transient errors
  (dead worker, blown ``timeout`` deadline, store I/O) retry with capped
  exponential backoff while deterministic ones
  (:class:`~repro.errors.ConfigurationError`,
  :class:`~repro.errors.SimulationError`) never do, and SIGINT/SIGTERM
  drain in-flight results into the store before aborting so ``--resume``
  picks up cleanly.

Workers never ship exception objects across the process boundary —
exception classes with non-trivial ``__init__`` signatures can fail to
*unpickle* in the parent, crashing the pool far from the culprit unit —
only structured :class:`~repro.errors.ErrorRecord` payloads.

Sharding (``--shard K/N``) slices the deterministic unit ordering
round-robin (``units[K-1::N]``), so the N shards are disjoint and their
union is exactly the full matrix.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import sys
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from heapq import heappop, heappush
from multiprocessing import connection as mp_connection

from .breakdown import (
    RunResult,
    run_result_from_dict,
    run_result_to_dict,
    try_run_result_from_dict,
)
from .configs import (
    ExperimentConfig,
    config_from_dict,
    config_to_dict,
    run_key,
)
from .events import (
    CampaignAborted,
    CampaignFinished,
    CampaignStarted,
    UnitCompleted,
    UnitFailed,
    UnitRetrying,
    UnitSkipped,
    UnitStarted,
)
from .store import open_store
from ..obs.metrics import REGISTRY as OBS_REGISTRY
from ..errors import (
    WATCHDOG_ENV,
    ConfigurationError,
    CorruptResultError,
    ErrorRecord,
    UnitTimeoutError,
    WorkerLostError,
    describe_error,
    resurrect_error,
)

#: dispatcher poll granularity (seconds): deadline and signal checks
#: happen at least this often while workers are busy
DISPATCH_TICK = 0.1

#: how long a SIGINT/SIGTERM shutdown waits for in-flight results
#: before killing the stragglers
DRAIN_GRACE = 30.0

ON_ERROR_POLICIES = ("abort", "continue", "retry")

#: campaign-level instruments (metric catalog: docs/OBSERVABILITY.md).
#: Worker processes accumulate into their own fresh registry and ship
#: the deltas back through the result pipe (see ``_proc_worker``), so
#: these totals are campaign-wide even under the spawn pool.
_UNITS_TOTAL = OBS_REGISTRY.counter(
    "match_campaign_units_total",
    "Campaign units by outcome (completed/failed/skipped/retried)")
_QUEUE_DEPTH = OBS_REGISTRY.gauge(
    "match_campaign_queue_depth",
    "Units waiting for a worker slot (parallel dispatch only)")


def parse_on_error(policy):
    """``"abort" | "continue" | "retry[:N]"`` → ``(mode, retries)``.

    ``retry:N`` is sugar for ``continue`` with N transient retries per
    unit; bare ``retry`` means ``retry:1``.
    """
    if policy is None:
        return "abort", 0
    text = str(policy)
    name, _, count = text.partition(":")
    if name not in ON_ERROR_POLICIES or (count and name != "retry"):
        raise ConfigurationError(
            "--on-error must be abort, continue or retry:N (got %r)"
            % (policy,))
    if name != "retry":
        return name, 0
    try:
        retries = int(count) if count else 1
    except ValueError:
        retries = -1
    if retries < 1:
        raise ConfigurationError(
            "retry policy needs a positive count (got %r)" % (policy,))
    return "continue", retries


def import_plugins(modules) -> None:
    """Import self-registering extension modules by name.

    Registrations live in module state, so a plugin must be imported in
    every process that resolves registry names — the engine calls this
    in each spawned worker (and :class:`repro.api.Session` calls it in
    the driving process) with the campaign's ``plugins`` list.
    """
    import importlib

    for module in modules:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            # chain the original failure: plugin authors need the real
            # ImportError (a missing transitive dep, a syntax error in
            # their module), not just its one-line summary
            raise ConfigurationError(
                "cannot import plugin module %r: %s" % (module, exc)) from exc


@dataclass(frozen=True)
class RunUnit:
    """One schedulable run: a configuration plus a repetition index."""

    config: ExperimentConfig
    rep: int

    @property
    def key(self) -> str:
        # memoised: engine + summarisation consult the key several times
        # per unit, and each computation canonicalises the whole config
        key = self.__dict__.get("_key")
        if key is None:
            key = run_key(self.config, self.rep)
            object.__setattr__(self, "_key", key)
        return key

    def describe(self) -> str:
        """The chaos/progress description: ``"<label>#rep<rep>"``."""
        return "%s#rep%d" % (self.config.label(), self.rep)


def campaign_units(configs, runs: int):
    """The full unit list of a sweep, in stable (config, rep) order."""
    if runs < 1:
        raise ConfigurationError("a sweep needs at least one run per cell")
    return [RunUnit(config, rep) for config in configs
            for rep in range(runs)]


def parse_shard(spec: str):
    """``"K/N"`` → ``(K, N)`` with 1 <= K <= N."""
    try:
        k_text, n_text = spec.split("/")
        k, n = int(k_text), int(n_text)
    except (ValueError, AttributeError):
        raise ConfigurationError(
            "shard spec must look like K/N (got %r)" % (spec,))
    if n < 1 or not 1 <= k <= n:
        raise ConfigurationError(
            "shard spec needs 1 <= K <= N (got %r)" % (spec,))
    return k, n


def shard_units(units, k: int, n: int):
    """Round-robin slice K of N over the stable unit ordering."""
    return list(units)[k - 1::n]


def execute_unit(unit: RunUnit) -> RunResult:
    """Run one unit exactly as the serial harness would.

    This is the single execution path: the serial loop, the pool
    workers, and ``run_experiment``-style one-offs all come through
    here, which is what makes the parallel/serial equivalence a
    structural property instead of a test-only promise.
    """
    from .designs import DESIGNS
    from .harness import build_cluster, make_fault_plan

    config = unit.config
    cluster = build_cluster(config)
    design = DESIGNS[config.design](cluster)
    app = config.make_app()
    plan = make_fault_plan(config, app, unit.rep)
    # phase capture rides the plan's hook slot; consulting sys.modules
    # (not importing) keeps the untraced path at one dict lookup
    trace_mod = sys.modules.get("repro.obs.trace")
    if trace_mod is not None:
        trace_mod.attach_phase_hook(plan)
    return design.run_job(app, config.fti, plan, label=config.label())


def _observed_execute(unit: RunUnit, trace: bool, profile_dir, attempt: int):
    """``execute_unit`` plus telemetry capture.

    Returns ``(result, obs)`` where ``obs`` may carry ``phases`` (wire
    rows of the run's phase spans, virtual time). Both telemetry paths
    are strictly observational: the simulation result is bit-identical
    with them on, off, or profiled (the determinism pins enforce this).
    """
    if profile_dir:
        from ..obs.profiling import maybe_profile

        profiled = maybe_profile(profile_dir, unit.key, attempt)
    else:
        profiled = nullcontext()
    obs: dict = {}
    with profiled:
        if trace:
            from ..obs import trace as obs_trace

            with obs_trace.capture_phases() as recorder:
                result = execute_unit(unit)
            obs["phases"] = obs_trace.spans_to_wire(recorder)
        else:
            result = execute_unit(unit)
    return result, obs


def _proc_worker(payload: dict, conn) -> None:
    """Top-level (spawn-picklable) worker: payload in, a status-tagged
    message out through ``conn``.

    Exceptions are caught and shipped back as ``("error", record_dict)``
    — a structured, always-picklable description — never as exception
    objects, so an exception class with a non-trivial ``__init__`` can
    no longer crash the *parent* during unpickling. A worker that dies
    without sending anything (crash, OOM kill, chaos) is detected by the
    parent through the pipe's EOF.
    """
    try:
        # a terminal Ctrl-C signals the whole foreground process group;
        # ignoring it here lets the parent's graceful shutdown drain
        # this worker's (bounded) in-flight result instead of losing it
        try:
            signal.signal(signal.SIGINT, signal.SIG_IGN)
        except (ValueError, OSError):
            pass
        import_plugins(payload.get("plugins", ()))
        watchdog = payload.get("sim_watchdog")
        if watchdog:
            os.environ[WATCHDOG_ENV] = str(watchdog)
        config = config_from_dict(payload["config"])
        unit = RunUnit(config, payload["rep"])
        chaos = _load_chaos()
        if chaos is not None:
            chaos.fire(unit.describe())
        result, obs = _observed_execute(
            unit, payload.get("trace", False), payload.get("profile_dir"),
            payload.get("attempt", 1))
        outcome = run_result_to_dict(result)
        if chaos is not None:
            outcome = chaos.corrupt(unit.describe(), outcome)
        # this process dies after one unit (maxtasksperchild=1), so its
        # fresh registry's snapshot *is* the per-attempt metric delta;
        # shipping it on the result envelope is what keeps worker-side
        # counts (checkpoint writes/reads, plugin metrics) alive past
        # the spawn-pool boundary
        deltas = OBS_REGISTRY.snapshot()
        if deltas:
            obs["metrics"] = deltas
        conn.send(("ok", {"result": outcome, "obs": obs}))
    except Exception as exc:
        try:
            conn.send(("error", describe_error(exc).to_dict()))
        except (OSError, ValueError):
            pass  # parent already gone; EOF detection covers us
    finally:
        conn.close()


def _split_envelope(data):
    """Worker wire payload -> ``(result_dict, obs_dict)``.

    Our workers always send the ``{"result", "obs"}`` envelope; anything
    else (a chaos-mangled or foreign payload) flows through whole so the
    existing corrupt-result handling judges it.
    """
    if isinstance(data, dict) and "result" in data and "obs" in data:
        return data["result"], data["obs"]
    return data, {}


def _absorb_obs(obs):
    """Fold a worker attempt's telemetry deltas into this process.

    Returns the attempt's phase-span rows (for the UnitCompleted event).
    """
    if not obs:
        return ()
    metrics = obs.get("metrics")
    if metrics:
        OBS_REGISTRY.merge(metrics)
    return tuple(tuple(row) for row in obs.get("phases", ()))


def _load_chaos():
    """The ``$MATCH_CHAOS`` injector, or None (workers only)."""
    from .chaos import ChaosInjector

    return ChaosInjector.from_env()


@dataclass
class _InFlight:
    """One dispatched unit attempt and the process running it."""

    unit: RunUnit
    attempt: int
    process: object
    conn: object
    deadline: float | None = None
    outcome: tuple = field(default=None)

    def kill(self) -> None:
        try:
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(2.0)
                if self.process.is_alive():
                    self.process.kill()
                    self.process.join(2.0)
        finally:
            self.conn.close()


class CampaignEngine:
    """Executes a list of :class:`RunUnit` with optional parallelism,
    shard selection, a resumable on-disk store, and a configurable
    failure policy.

    After :meth:`run`, :attr:`executed` / :attr:`skipped` say how many
    units were attempted versus satisfied from the store, and
    :attr:`failed` / :attr:`failures` describe the units whose failures
    were contained by ``on_error="continue"``.
    """

    def __init__(self, jobs: int = 1, store_path=None, resume: bool = False,
                 shard=None, plugins=(), on_error="abort", retries: int = 0,
                 timeout=None, sim_watchdog=None,
                 backoff_base: float = 0.5, backoff_cap: float = 30.0,
                 trace_phases: bool = False, profile_dir=None):
        if jobs < 1:
            raise ConfigurationError("--jobs must be >= 1")
        if resume and store_path is None:
            raise ConfigurationError(
                "--resume needs a result store (--store PATH) to resume "
                "from")
        self.jobs = jobs
        # store_path may be a path, a "backend:location" spec, or an
        # already-built store object (see repro.core.store.open_store)
        self.store = open_store(store_path)
        self.resume = resume
        self.plugins = tuple(plugins)
        mode, policy_retries = parse_on_error(on_error)
        self.on_error = mode
        if retries is None:
            retries = 0
        retries = int(retries)
        if retries < 0:
            raise ConfigurationError("--retries must be >= 0")
        self.retries = max(retries, policy_retries)
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                raise ConfigurationError("--timeout must be > 0 seconds")
        self.timeout = timeout
        if sim_watchdog is not None:
            sim_watchdog = int(sim_watchdog)
            if sim_watchdog < 1:
                raise ConfigurationError("--sim-watchdog must be >= 1")
        self.sim_watchdog = sim_watchdog
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ConfigurationError(
                "backoff needs 0 < base <= cap (got %r, %r)"
                % (backoff_base, backoff_cap))
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        if shard is None:
            self.shard = None
        else:
            # pre-parsed (K, N) pairs go through the same bounds check
            # as "K/N" strings — a 0-based index must raise, not
            # silently select the wrong slice
            if not isinstance(shard, str):
                try:
                    k, n = shard
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        "shard must be a 'K/N' string or a (K, N) pair")
                shard = "%s/%s" % (k, n)
            self.shard = parse_shard(shard)
        self.trace_phases = bool(trace_phases)
        self.profile_dir = str(profile_dir) if profile_dir else None
        self.executed = 0
        self.skipped = 0
        self.failed = 0
        self.retried = 0
        #: run key -> ErrorRecord for units that failed for good
        self.failures: dict = {}
        self._interrupt_reason = None

    # -- internals ----------------------------------------------------------
    def _record(self, unit: RunUnit, result_dict: dict) -> None:
        if self.store is not None:
            self.store.append(unit.key, config_to_dict(unit.config),
                              unit.rep, result_dict)

    def _record_failure(self, unit: RunUnit, record: ErrorRecord) -> None:
        self.failed += 1
        self.failures[unit.key] = record
        if self.store is not None:
            # failure records are an optional backend capability: a
            # third-party store without the hook degrades to in-memory
            # failure tracking only
            append_failure = getattr(self.store, "append_failure", None)
            if append_failure is not None:
                append_failure(unit.key, config_to_dict(unit.config),
                               unit.rep, record.to_dict())

    def _retry_delay(self, record: ErrorRecord, attempt: int):
        """Backoff before the next attempt, or None for no retry.

        Only transient (harness-level) errors retry — deterministic
        simulation outcomes would fail identically — with capped
        exponential backoff: base, 2·base, 4·base, … up to cap.
        """
        if not record.transient or attempt > self.retries:
            return None
        return min(self.backoff_cap,
                   self.backoff_base * (2.0 ** (attempt - 1)))

    def _completed(self, units) -> dict:
        """Deserialized results for exactly the units this sweep needs.

        Records the sweep doesn't reference (other configs, old
        run-key schemas, foreign tools sharing the store) are never
        deserialized, so they cannot break a resume; a referenced
        record whose payload won't deserialize is treated as not-done
        and simply re-executed — runs are deterministic, so re-running
        is always safe. Failure records never count as done (the store
        skips them), so a fixed bug re-runs the failed units.
        """
        if self.store is None or not self.resume:
            return {}
        records = self.store.load_completed()
        done = {}
        for unit in units:
            record = records.get(unit.key)
            if record is None:
                continue
            result = try_run_result_from_dict(record["result"])
            if result is not None:
                done[unit.key] = result
        return done

    @contextmanager
    def _signal_guard(self, raise_immediately: bool):
        """Turn SIGINT/SIGTERM into a graceful shutdown request.

        Serial mode raises KeyboardInterrupt straight from the handler
        (the signal must preempt the in-process simulation); the
        parallel dispatch loop instead polls the recorded reason every
        tick — its workers are separate processes, and raising into an
        arbitrary frame (possibly the *consumer's*, mid-yield) would
        bypass the drain. Installed only around execution, and only in
        the main thread — elsewhere default handling applies.
        """
        self._interrupt_reason = None
        self._interrupt_count = 0

        def handler(signum, frame):
            self._interrupt_reason = signal.Signals(signum).name
            self._interrupt_count += 1
            if raise_immediately:
                raise KeyboardInterrupt

        previous = {}
        try:
            for sig in (signal.SIGINT, signal.SIGTERM):
                previous[sig] = signal.signal(sig, handler)
        except ValueError:
            previous = {}
        try:
            yield
        finally:
            for sig, old in previous.items():
                signal.signal(sig, old)

    @contextmanager
    def _watchdog_env(self):
        """Expose the per-run sim-event budget to in-process execution."""
        if self.sim_watchdog is None:
            yield
            return
        old = os.environ.get(WATCHDOG_ENV)
        os.environ[WATCHDOG_ENV] = str(self.sim_watchdog)
        try:
            yield
        finally:
            if old is None:
                os.environ.pop(WATCHDOG_ENV, None)
            else:
                os.environ[WATCHDOG_ENV] = old

    # -- driver -------------------------------------------------------------
    def stream(self, units):
        """Execute ``units`` (minus shard filter and resumed runs) as a
        generator of typed :mod:`repro.core.events`.

        This is the single execution driver; :meth:`run` is just a
        consumer that drains it. Failure semantics follow ``on_error``
        — see the module docstring and :class:`repro.core.events`.
        """
        units = list(units)
        if self.shard is not None:
            sharded = shard_units(units, *self.shard)
            if units and not sharded:
                # a mistyped shard must not let a CI job pass green
                # having run nothing
                raise ConfigurationError(
                    "shard %d/%d selects zero of the sweep's %d runs"
                    % (self.shard[0], self.shard[1], len(units)))
            units = sharded
        keys = [u.key for u in units]
        if len(set(keys)) != len(keys):
            raise ConfigurationError("duplicate run units in sweep")
        done = self._completed(units)
        pending = [u for u in units if u.key not in done]
        self.skipped = len(units) - len(pending)
        self.executed = len(pending)
        self.failed = 0
        self.retried = 0
        self.failures = {}
        total = len(units)
        yield CampaignStarted(total=total, pending=len(pending),
                              resumed=self.skipped, jobs=self.jobs)
        results = {}
        completed = 0
        for unit in units:
            if unit.key in done:
                results[unit.key] = done[unit.key]
                completed += 1
                _UNITS_TOTAL.inc(outcome="skipped")
                yield UnitSkipped(unit=unit, result=done[unit.key],
                                  completed=completed, total=total)
        serial = ((self.jobs == 1 or len(pending) <= 1)
                  and self.timeout is None)
        with self._signal_guard(raise_immediately=serial):
            if serial:
                driver = self._stream_serial(pending, results,
                                             completed, total)
            else:
                driver = self._stream_dispatch(pending, results,
                                               completed, total)
            for event in driver:
                if isinstance(event, (UnitCompleted, UnitSkipped)):
                    completed = event.completed
                # one counting site for both drivers (and the shutdown
                # drain): every unit event flows through this loop
                if isinstance(event, UnitCompleted):
                    _UNITS_TOTAL.inc(outcome="completed")
                elif isinstance(event, UnitFailed):
                    _UNITS_TOTAL.inc(outcome="failed")
                elif isinstance(event, UnitRetrying):
                    _UNITS_TOTAL.inc(outcome="retried")
                yield event
        yield CampaignFinished(results=results, executed=self.executed,
                               skipped=self.skipped, failed=self.failed,
                               failures=dict(self.failures))

    # -- serial in-process execution ----------------------------------------
    def _stream_serial(self, pending, results, completed, total):
        for unit in pending:
            yield UnitStarted(unit=unit, completed=completed, total=total)
            attempt = 1
            while True:
                try:
                    with self._watchdog_env():
                        result, obs = _observed_execute(
                            unit, self.trace_phases, self.profile_dir,
                            attempt)
                except KeyboardInterrupt:
                    # graceful shutdown: everything completed so far is
                    # already flushed (the store fsyncs per record), so
                    # --resume picks up exactly past it
                    yield CampaignAborted(
                        completed=completed, total=total,
                        reason=self._interrupt_reason or "interrupted")
                    raise
                except Exception as exc:
                    record = describe_error(exc)
                    delay = self._retry_delay(record, attempt)
                    if delay is not None:
                        self.retried += 1
                        yield UnitRetrying(unit=unit, error=record,
                                           attempt=attempt, delay=delay,
                                           completed=completed, total=total)
                        time.sleep(delay)
                        attempt += 1
                        continue
                    yield UnitFailed(unit=unit, error=record.summary(),
                                     record=record, attempt=attempt,
                                     completed=completed, total=total)
                    if self.on_error == "abort":
                        raise
                    self._record_failure(unit, record)
                    break
                self._record(unit, run_result_to_dict(result))
                results[unit.key] = result
                completed += 1
                yield UnitCompleted(unit=unit, result=result,
                                    completed=completed, total=total,
                                    phases=tuple(obs.get("phases", ())))
                break

    # -- parallel dispatch loop ---------------------------------------------
    def _payload(self, unit: RunUnit, attempt: int = 1) -> dict:
        payload = {"key": unit.key, "rep": unit.rep,
                   "config": config_to_dict(unit.config),
                   "plugins": list(self.plugins)}
        if self.sim_watchdog is not None:
            payload["sim_watchdog"] = self.sim_watchdog
        if self.trace_phases:
            payload["trace"] = True
        if self.profile_dir is not None:
            payload["profile_dir"] = self.profile_dir
            payload["attempt"] = attempt
        return payload

    def _launch(self, ctx, unit: RunUnit, attempt: int) -> _InFlight:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(target=_proc_worker,
                              args=(self._payload(unit, attempt), send_conn))
        process.daemon = True
        process.start()
        send_conn.close()
        deadline = (time.monotonic() + self.timeout
                    if self.timeout is not None else None)
        return _InFlight(unit=unit, attempt=attempt, process=process,
                         conn=recv_conn, deadline=deadline)

    @staticmethod
    def _collect(flight: _InFlight) -> tuple:
        """``("ok", dict) | ("error", ErrorRecord)`` for a flight whose
        pipe signalled (result sent, or EOF from a dead worker)."""
        try:
            status, data = flight.conn.recv()
        except (EOFError, OSError):
            flight.process.join(5.0)
            code = flight.process.exitcode
            return ("error", describe_error(WorkerLostError(
                "worker process died without a result (exit code %s) "
                "while running %s" % (code, flight.unit.describe()))))
        finally:
            flight.conn.close()
        flight.process.join(5.0)
        if status == "error":
            return ("error", ErrorRecord.from_dict(data))
        return ("ok", data)

    def _expire(self, flight: _InFlight) -> tuple:
        """Kill a flight past its deadline; a timeout error outcome."""
        flight.kill()
        return ("error", describe_error(UnitTimeoutError(self.timeout)))

    def _stream_dispatch(self, pending, results, completed, total):
        """The async dispatch loop: at most ``jobs`` worker processes in
        flight, each watched for results, death and blown deadlines.

        Replaces the historical blind ``Pool.imap_unordered`` — which
        emitted every ``UnitStarted`` up front and blocked forever on a
        hung or OOM-killed worker — with per-unit processes (the
        ``maxtasksperchild=1`` isolation contract, kept) whose pipes
        double as both the result channel and the death detector.
        """
        ctx = multiprocessing.get_context("spawn")
        nworkers = min(self.jobs, max(1, len(pending)))
        queue = list((unit, 1) for unit in pending)
        queue.reverse()  # pop() from the tail preserves unit order
        retry_heap = []  # (ready_at, seq, unit, attempt)
        seq = itertools.count()
        in_flight = []
        abort_record = None
        interrupted = False
        try:
            while queue or retry_heap or in_flight:
                if self._interrupt_reason is not None:
                    interrupted = True
                if abort_record is not None or interrupted:
                    break
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    _, _, unit, attempt = heappop(retry_heap)
                    queue.append((unit, attempt))
                _QUEUE_DEPTH.set(len(queue) + len(retry_heap))
                while len(in_flight) < nworkers and queue:
                    unit, attempt = queue.pop()
                    in_flight.append(self._launch(ctx, unit, attempt))
                    if attempt == 1:
                        # started = actually dispatched, not merely
                        # queued: progress UIs see at most `jobs`
                        # in-flight units, in dispatch order
                        yield UnitStarted(unit=unit, completed=completed,
                                          total=total)
                if not in_flight:
                    # only backoff waits remain: sleep until the next
                    # retry matures (in ticks, to notice signals)
                    try:
                        wait = retry_heap[0][0] - time.monotonic()
                        time.sleep(min(max(wait, 0.0), DISPATCH_TICK))
                    except KeyboardInterrupt:
                        interrupted = True
                    continue
                wait_timeout = DISPATCH_TICK
                for flight in in_flight:
                    if flight.deadline is not None:
                        wait_timeout = min(wait_timeout,
                                           max(flight.deadline - now, 0.0))
                try:
                    ready = mp_connection.wait(
                        [f.conn for f in in_flight], timeout=wait_timeout)
                except KeyboardInterrupt:
                    interrupted = True
                    continue
                ready = set(ready)
                finished = []
                now = time.monotonic()
                for flight in in_flight:
                    if flight.conn in ready:
                        flight.outcome = self._collect(flight)
                        finished.append(flight)
                    elif flight.deadline is not None \
                            and now >= flight.deadline:
                        flight.outcome = self._expire(flight)
                        finished.append(flight)
                for flight in finished:
                    in_flight.remove(flight)
                    status, data = flight.outcome
                    if status == "ok":
                        result_dict, obs = _split_envelope(data)
                        phases = _absorb_obs(obs)
                        result = try_run_result_from_dict(result_dict)
                        if result is None:
                            status, data = "error", describe_error(
                                CorruptResultError(
                                    "worker returned an undecodable "
                                    "result payload for %s"
                                    % flight.unit.describe()))
                        else:
                            self._record(flight.unit, result_dict)
                            results[flight.unit.key] = result
                            completed += 1
                            yield UnitCompleted(unit=flight.unit,
                                                result=result,
                                                completed=completed,
                                                total=total,
                                                phases=phases)
                            continue
                    record = data
                    delay = self._retry_delay(record, flight.attempt)
                    if delay is not None:
                        self.retried += 1
                        yield UnitRetrying(unit=flight.unit, error=record,
                                           attempt=flight.attempt,
                                           delay=delay, completed=completed,
                                           total=total)
                        heappush(retry_heap,
                                 (time.monotonic() + delay, next(seq),
                                  flight.unit, flight.attempt + 1))
                        continue
                    yield UnitFailed(unit=flight.unit,
                                     error=record.summary(), record=record,
                                     attempt=flight.attempt,
                                     completed=completed, total=total)
                    if self.on_error == "abort":
                        abort_record = record
                        break
                    self._record_failure(flight.unit, record)
            if interrupted:
                # graceful shutdown: drain in-flight results into the
                # store (bounded), kill the stragglers, then surface the
                # interruption
                for event in self._drain(in_flight, results, completed,
                                         total):
                    if isinstance(event, UnitCompleted):
                        completed = event.completed
                    yield event
                yield CampaignAborted(
                    completed=completed, total=total,
                    reason=self._interrupt_reason or "interrupted")
                raise KeyboardInterrupt
        finally:
            _QUEUE_DEPTH.set(0)
            for flight in in_flight:
                flight.kill()
        if abort_record is not None:
            raise resurrect_error(abort_record)

    def _drain(self, in_flight, results, completed, total):
        """Wait (bounded) for in-flight workers, recording what lands."""
        grace = DRAIN_GRACE if self.timeout is None \
            else min(self.timeout, DRAIN_GRACE)
        deadline = time.monotonic() + grace
        signals_seen = self._interrupt_count
        while in_flight and time.monotonic() < deadline:
            if self._interrupt_count > signals_seen:
                break  # a second interrupt: stop waiting, kill them all
            try:
                ready = mp_connection.wait([f.conn for f in in_flight],
                                           timeout=DISPATCH_TICK)
            except KeyboardInterrupt:
                break
            for flight in list(in_flight):
                if flight.conn not in ready:
                    continue
                in_flight.remove(flight)
                status, data = self._collect(flight)
                if status == "ok":
                    result_dict, obs = _split_envelope(data)
                    phases = _absorb_obs(obs)
                    result = try_run_result_from_dict(result_dict)
                    if result is not None:
                        self._record(flight.unit, result_dict)
                        results[flight.unit.key] = result
                        completed += 1
                        yield UnitCompleted(unit=flight.unit, result=result,
                                            completed=completed, total=total,
                                            phases=phases)
                        continue
                if self.on_error != "abort":
                    record = data if isinstance(data, ErrorRecord) \
                        else describe_error(CorruptResultError(
                            "undecodable result payload during shutdown"))
                    self._record_failure(flight.unit, record)

    def run(self, units) -> dict:
        """Execute ``units``; returns ``{key: RunResult}`` for every
        selected unit (drains :meth:`stream`, discarding the events)."""
        results = {}
        for event in self.stream(units):
            if isinstance(event, CampaignFinished):
                results = event.results
        return results
