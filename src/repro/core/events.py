"""Typed run events: the campaign engine's streaming protocol.

:meth:`repro.core.engine.CampaignEngine.stream` (and therefore
:meth:`repro.api.Session.stream`) yields these instead of returning a
post-hoc record list, so live CLI progress, result stores and report
pipelines all consume one event stream. The sequence for a sweep is::

    CampaignStarted
    (UnitSkipped | UnitStarted UnitCompleted | UnitStarted UnitFailed)*
    CampaignFinished

Events are frozen dataclasses; ``completed``/``total`` carry monotonic
progress counts so a consumer can render ``[12/96]`` without keeping
its own tally. Under parallel execution (``jobs > 1``) the engine
submits the whole pending list to the worker pool at once, so every
:class:`UnitStarted` is emitted up front (each carrying the
submission-time ``completed`` count — the resumed-skip total) and
:class:`UnitCompleted` events then arrive in completion order; a
progress UI should key on completions, treating parallel starts as
"queued". The final result *set* is bit-identical to the serial path,
only the event interleaving differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RunEvent:
    """Base class for every event the engine streams."""


@dataclass(frozen=True)
class CampaignStarted(RunEvent):
    """The sweep is about to execute.

    ``total`` counts the units selected for this invocation (after
    shard filtering); ``pending`` of them will actually run, the rest
    are satisfied from the resume store.
    """

    total: int
    pending: int
    resumed: int
    jobs: int = 1


@dataclass(frozen=True)
class UnitStarted(RunEvent):
    """One run unit began executing (serial) or was submitted to a
    worker (parallel)."""

    unit: object
    completed: int
    total: int


@dataclass(frozen=True)
class UnitCompleted(RunEvent):
    """One run unit finished; ``result`` is its :class:`RunResult`."""

    unit: object
    result: object
    completed: int
    total: int


@dataclass(frozen=True)
class UnitSkipped(RunEvent):
    """One run unit was already in the resume store; ``result`` is the
    stored :class:`RunResult`."""

    unit: object
    result: object
    completed: int
    total: int


@dataclass(frozen=True)
class UnitFailed(RunEvent):
    """One run unit raised; the exception is re-raised right after this
    event, so the stream ends here — the event exists to let consumers
    attribute the failure to a unit before the traceback unwinds."""

    unit: object
    error: str
    completed: int
    total: int


@dataclass(frozen=True)
class CampaignFinished(RunEvent):
    """The sweep completed; ``results`` maps every selected unit's
    run key to its :class:`RunResult`."""

    results: dict = field(repr=False)
    executed: int = 0
    skipped: int = 0


__all__ = [
    "CampaignFinished",
    "CampaignStarted",
    "RunEvent",
    "UnitCompleted",
    "UnitFailed",
    "UnitSkipped",
    "UnitStarted",
]
