"""Typed run events: the campaign engine's streaming protocol.

:meth:`repro.core.engine.CampaignEngine.stream` (and therefore
:meth:`repro.api.Session.stream`) yields these instead of returning a
post-hoc record list, so live CLI progress, result stores and report
pipelines all consume one event stream. The sequence for a sweep is::

    CampaignStarted
    (UnitSkipped
     | UnitStarted (UnitRetrying)* (UnitCompleted | UnitFailed))*
    (CampaignFinished | CampaignAborted)

Events are frozen dataclasses; ``completed``/``total`` carry monotonic
progress counts so a consumer can render ``[12/96]`` without keeping
its own tally. Under parallel execution (``jobs > 1``) each
:class:`UnitStarted` is emitted when the unit is actually handed to a
worker process — at most ``jobs`` units are "started" at any moment, in
dispatch order — and :class:`UnitCompleted` events arrive in completion
order. The final result *set* is bit-identical to the serial path, only
the event interleaving differs.

Failure semantics depend on the engine's ``on_error`` policy: under
``abort`` (the default) a :class:`UnitFailed` is terminal — the
exception is re-raised right after it and the stream ends; under
``continue`` the failure is recorded (``final=True``) and the stream
carries on to the remaining units, finishing with a
:class:`CampaignFinished` whose ``failed`` count is non-zero. Transient
errors may be retried (:class:`UnitRetrying`) before either outcome.
:class:`CampaignAborted` replaces :class:`CampaignFinished` when a
SIGINT/SIGTERM drained the sweep early; completed units are already in
the store, so ``--resume`` picks up cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RunEvent:
    """Base class for every event the engine streams."""


@dataclass(frozen=True)
class CampaignStarted(RunEvent):
    """The sweep is about to execute.

    ``total`` counts the units selected for this invocation (after
    shard filtering); ``pending`` of them will actually run, the rest
    are satisfied from the resume store.
    """

    total: int
    pending: int
    resumed: int
    jobs: int = 1


@dataclass(frozen=True)
class UnitStarted(RunEvent):
    """One run unit began executing (serial) or was dispatched to a
    worker process (parallel)."""

    unit: object
    completed: int
    total: int


@dataclass(frozen=True)
class UnitCompleted(RunEvent):
    """One run unit finished; ``result`` is its :class:`RunResult`.

    ``phases`` carries the run's phase spans — wire rows of
    ``(anchor, rank, start, end, epoch)`` in *virtual* simulator time —
    when the campaign runs with tracing enabled (``Campaign.trace()`` /
    ``--trace``); empty otherwise. :class:`repro.obs.trace.Tracer`
    consumes them to nest sim phases inside the unit's wall-time span.
    """

    unit: object
    result: object
    completed: int
    total: int
    phases: tuple = ()


@dataclass(frozen=True)
class UnitSkipped(RunEvent):
    """One run unit was already in the resume store; ``result`` is the
    stored :class:`RunResult`."""

    unit: object
    result: object
    completed: int
    total: int


@dataclass(frozen=True)
class UnitRetrying(RunEvent):
    """One run unit hit a transient error and will be re-dispatched.

    ``attempt`` is the attempt that just failed (1-based); ``delay`` is
    the backoff in seconds before attempt ``attempt + 1`` launches.
    """

    unit: object
    error: object  # ErrorRecord
    attempt: int
    delay: float
    completed: int
    total: int


@dataclass(frozen=True)
class UnitFailed(RunEvent):
    """One run unit failed for good (retries exhausted or not allowed).

    ``error`` is a human-readable summary string; ``record`` the full
    structured :class:`~repro.errors.ErrorRecord`. Under
    ``on_error="abort"`` the exception is re-raised right after this
    event and the stream ends; under ``"continue"`` the failure is
    persisted as a store failure record and the stream carries on.
    """

    unit: object
    error: str
    completed: int
    total: int
    record: object = None
    attempt: int = 1


@dataclass(frozen=True)
class CampaignAborted(RunEvent):
    """The sweep was interrupted (SIGINT/SIGTERM) and shut down
    gracefully: in-flight results were drained into the store first, so
    a ``--resume`` continues exactly past the completed units."""

    completed: int
    total: int
    reason: str = "interrupted"


@dataclass(frozen=True)
class ExploreStarted(RunEvent):
    """A worst-case fault-timing search is about to probe candidates.

    ``candidates`` counts the schedules the strategy will evaluate (0
    when the strategy enumerates lazily); ``anchors`` is the probed
    timeline's phase catalog.
    """

    config_label: str
    strategy: str
    candidates: int
    anchors: tuple = ()


@dataclass(frozen=True)
class ScheduleProbed(RunEvent):
    """One candidate schedule was evaluated during a search.

    ``best`` / ``best_spec`` carry the running worst case so a consumer
    can render live progress without its own tally.
    """

    spec: str
    makespan: float
    best_spec: str
    best: float
    probes: int


@dataclass(frozen=True)
class ExploreFinished(RunEvent):
    """The search finished; ``best_spec`` is the certified worst-case
    schedule (an ``at-phase`` spec) and ``best`` its makespan."""

    best_spec: str
    best: float
    probes: int
    baseline: float = 0.0


@dataclass(frozen=True)
class CampaignFinished(RunEvent):
    """The sweep completed; ``results`` maps every selected unit's
    run key to its :class:`RunResult`. ``failed`` counts units whose
    failures were contained by ``on_error="continue"`` (their error
    records are in ``failures``, keyed by run key)."""

    results: dict = field(repr=False)
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    failures: dict = field(default_factory=dict, repr=False)


__all__ = [
    "CampaignAborted",
    "CampaignFinished",
    "CampaignStarted",
    "ExploreFinished",
    "ExploreStarted",
    "RunEvent",
    "ScheduleProbed",
    "UnitCompleted",
    "UnitFailed",
    "UnitRetrying",
    "UnitSkipped",
    "UnitStarted",
]
