"""MATCH core: designs, experiment harness, Table I configurations."""

from .breakdown import RunResult, TimeBreakdown, average_breakdowns
from .configs import (
    DESIGN_NAMES,
    INPUT_SIZES,
    SCALING_SIZES,
    TABLE1,
    ExperimentConfig,
    input_matrix,
    scaling_matrix,
    valid_proc_counts,
)
from .designs import DESIGNS, ReinitFti, RestartFti, UlfmFti
from .harness import (
    AveragedResult,
    run_experiment,
    run_experiment_averaged,
)

__all__ = [
    "AveragedResult",
    "DESIGNS",
    "DESIGN_NAMES",
    "ExperimentConfig",
    "INPUT_SIZES",
    "ReinitFti",
    "RestartFti",
    "RunResult",
    "SCALING_SIZES",
    "TABLE1",
    "TimeBreakdown",
    "UlfmFti",
    "average_breakdowns",
    "input_matrix",
    "run_experiment",
    "run_experiment_averaged",
    "scaling_matrix",
    "valid_proc_counts",
]
