"""ASCII stacked-bar charts: render the paper's figures in a terminal.

The paper's Figures 5/6/8/9 are stacked bars (Application / Write
Checkpoints / Recovery) grouped by scaling size or input size; Figures
7/10 are plain bars. These renderers draw the same charts with unicode
block characters so the benchmark output is visually comparable to the
paper without any plotting dependency.
"""

from __future__ import annotations

from .breakdown import TimeBreakdown

#: glyphs per stacked segment, in draw order
SEGMENT_GLYPHS = (
    ("application", "#"),
    ("write_checkpoints", "="),
    ("recovery", "%"),
)

LEGEND = "legend: '#' application   '=' write checkpoints   '%' recovery"


def _bar(parts: list, width: int, scale: float) -> str:
    """Render one stacked bar of (glyph, seconds) parts."""
    chunks = []
    for glyph, seconds in parts:
        cells = int(round(seconds * scale))
        chunks.append(glyph * cells)
    bar = "".join(chunks)
    return bar[:width]


def stacked_bar_chart(title: str, rows: list, width: int = 60) -> str:
    """Rows: (label, TimeBreakdown). One stacked bar per row."""
    if not rows:
        return title + "\n(no data)"
    peak = max(b.total_seconds for _, b in rows)
    scale = (width / peak) if peak > 0 else 0.0
    label_width = max(len(str(label)) for label, _ in rows)
    lines = [title, "-" * len(title)]
    for label, breakdown in rows:
        d = breakdown.as_dict()
        parts = [(glyph, d[key]) for key, glyph in SEGMENT_GLYPHS]
        lines.append("%-*s |%s %.1fs"
                     % (label_width, label, _bar(parts, width, scale),
                        breakdown.total_seconds))
    lines.append(LEGEND)
    return "\n".join(lines)


def bar_chart(title: str, rows: list, width: int = 60,
              unit: str = "s") -> str:
    """Rows: (label, value). Plain horizontal bars (Figures 7/10)."""
    if not rows:
        return title + "\n(no data)"
    peak = max(value for _, value in rows)
    scale = (width / peak) if peak > 0 else 0.0
    label_width = max(len(str(label)) for label, _ in rows)
    lines = [title, "-" * len(title)]
    for label, value in rows:
        cells = int(round(value * scale))
        lines.append("%-*s |%s %.2f%s"
                     % (label_width, label, "#" * cells, value, unit))
    return "\n".join(lines)


def figure_chart(title: str, cells: list, width: int = 48) -> str:
    """Render a full figure: cells are (group, design, TimeBreakdown),
    grouped the way the paper groups bars under each x-axis value."""
    lines = [title, "=" * len(title)]
    groups: dict = {}
    for group, design, breakdown in cells:
        groups.setdefault(group, []).append((design.upper(), breakdown))
    peak = max(b.total_seconds for _, _, b in cells) or 1.0
    scale = width / peak
    for group, bars in groups.items():
        lines.append("")
        lines.append("%s:" % (group,))
        label_width = max(len(name) for name, _ in bars)
        for name, breakdown in bars:
            d = breakdown.as_dict()
            parts = [(glyph, d[key]) for key, glyph in SEGMENT_GLYPHS]
            lines.append("  %-*s |%s %.1fs"
                         % (label_width, name, _bar(parts, width, scale),
                            breakdown.total_seconds))
    lines.append("")
    lines.append(LEGEND)
    return "\n".join(lines)
