"""Execution-time breakdown, matching the paper's stacked bars.

Figures 5/6/8/9 split total execution into *Application*, *Write
Checkpoints* and (with failures) *Recovery*; checkpoint *reads* are
measured but excluded from the bars because they are tiny (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimeBreakdown:
    """Virtual-second totals for one experiment run."""

    total_seconds: float = 0.0
    ckpt_write_seconds: float = 0.0
    recovery_seconds: float = 0.0
    ckpt_read_seconds: float = 0.0

    @property
    def application_seconds(self) -> float:
        """Everything that is not checkpointing or MPI recovery."""
        return max(0.0, self.total_seconds - self.ckpt_write_seconds
                   - self.recovery_seconds - self.ckpt_read_seconds)

    def as_dict(self) -> dict:
        return {
            "application": self.application_seconds,
            "write_checkpoints": self.ckpt_write_seconds,
            "recovery": self.recovery_seconds,
            "read_checkpoints": self.ckpt_read_seconds,
            "total": self.total_seconds,
        }

    def __str__(self):
        return ("total=%.2fs app=%.2fs ckpt=%.2fs recovery=%.2fs "
                "(read=%.3fs)" % (self.total_seconds,
                                  self.application_seconds,
                                  self.ckpt_write_seconds,
                                  self.recovery_seconds,
                                  self.ckpt_read_seconds))


@dataclass
class RunResult:
    """Outcome of one experiment run (one repetition)."""

    config_label: str
    breakdown: TimeBreakdown
    verified: bool
    ckpt_count: int = 0
    recovery_episodes: int = 0
    relaunches: int = 0
    fault_events: tuple = ()
    details: dict = field(default_factory=dict)


def breakdown_to_dict(breakdown: TimeBreakdown) -> dict:
    """JSON-safe form; floats round-trip exactly (json uses repr)."""
    return {
        "total_seconds": breakdown.total_seconds,
        "ckpt_write_seconds": breakdown.ckpt_write_seconds,
        "recovery_seconds": breakdown.recovery_seconds,
        "ckpt_read_seconds": breakdown.ckpt_read_seconds,
    }


def breakdown_from_dict(data: dict) -> TimeBreakdown:
    return TimeBreakdown(**data)


def _fault_event_to_wire(event) -> list:
    """Wire form of one fault event.

    Iteration-indexed events keep the original 3-element shape so every
    pre-existing store record and determinism pin stays byte-identical;
    exact-time events (``TimedFault``, iteration == -1) need their
    ``time``/``epoch`` carried too or replay-from-store would decode a
    different experiment.
    """
    if getattr(event, "time", None) is not None:
        return [event.rank, event.iteration, event.kind,
                event.time, event.epoch]
    return [event.rank, event.iteration, event.kind]


def _fault_event_from_wire(entry):
    if len(entry) == 5:
        from ..faults.plans import TimedFault

        rank, _iteration, kind, time, epoch = entry
        return TimedFault(time=time, rank=rank, kind=kind, epoch=epoch)
    from ..faults.plans import FaultEvent

    rank, iteration, kind = entry
    return FaultEvent(rank, iteration, kind)


def result_fingerprint(result: RunResult) -> dict:
    """Full-precision, JSON-safe fingerprint of one run.

    The single definition shared by the determinism-pin capture script
    (``tests/data/capture_seed.py``) and the determinism regression
    test, so the recorded and replayed sides can never drift apart.
    ``repr()`` keeps exact float bits; the test compares exactly.
    """
    b = result.breakdown
    return {
        "total_seconds": repr(b.total_seconds),
        "ckpt_write_seconds": repr(b.ckpt_write_seconds),
        "recovery_seconds": repr(b.recovery_seconds),
        "ckpt_read_seconds": repr(b.ckpt_read_seconds),
        "verified": result.verified,
        "ckpt_count": result.ckpt_count,
        "recovery_episodes": result.recovery_episodes,
        "relaunches": result.relaunches,
        "fault_events": [_fault_event_to_wire(e)
                         for e in result.fault_events],
        "runtime_stats": result.details["runtime_stats"],
    }


def run_result_to_dict(result: RunResult) -> dict:
    """Serialize a run for the campaign result store (lossless for
    everything campaign summaries and reports consume)."""
    return {
        "config_label": result.config_label,
        "breakdown": breakdown_to_dict(result.breakdown),
        "verified": bool(result.verified),
        "ckpt_count": result.ckpt_count,
        "recovery_episodes": result.recovery_episodes,
        "relaunches": result.relaunches,
        "fault_events": [_fault_event_to_wire(e)
                         for e in result.fault_events],
        "details": result.details,
    }


def run_result_from_dict(data: dict) -> RunResult:
    return RunResult(
        config_label=data["config_label"],
        breakdown=breakdown_from_dict(data["breakdown"]),
        verified=data["verified"],
        ckpt_count=data.get("ckpt_count", 0),
        recovery_episodes=data.get("recovery_episodes", 0),
        relaunches=data.get("relaunches", 0),
        fault_events=tuple(_fault_event_from_wire(entry)
                           for entry in data.get("fault_events", ())),
        details=data.get("details", {}),
    )


def try_run_result_from_dict(data):
    """``run_result_from_dict`` or ``None`` on undecodable payloads.

    The single definition of "usable record" shared by the engine's
    resume path, store summarisation and the completeness check, so the
    three can never disagree about which stored runs count: foreign
    tools, old schemas or hand-edited records yield ``None`` (the run
    is simply treated as not-done; re-running is always safe because
    runs are deterministic).
    """
    from ..errors import ConfigurationError

    try:
        return run_result_from_dict(data)
    except (ConfigurationError, KeyError, TypeError, ValueError):
        return None


def average_breakdowns(breakdowns) -> TimeBreakdown:
    """Mean of several repetitions (the paper averages five runs)."""
    breakdowns = list(breakdowns)
    n = len(breakdowns)
    if n == 0:
        raise ValueError("cannot average zero runs")
    return TimeBreakdown(
        total_seconds=sum(b.total_seconds for b in breakdowns) / n,
        ckpt_write_seconds=sum(b.ckpt_write_seconds
                               for b in breakdowns) / n,
        recovery_seconds=sum(b.recovery_seconds for b in breakdowns) / n,
        ckpt_read_seconds=sum(b.ckpt_read_seconds for b in breakdowns) / n,
    )
