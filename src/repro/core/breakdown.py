"""Execution-time breakdown, matching the paper's stacked bars.

Figures 5/6/8/9 split total execution into *Application*, *Write
Checkpoints* and (with failures) *Recovery*; checkpoint *reads* are
measured but excluded from the bars because they are tiny (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimeBreakdown:
    """Virtual-second totals for one experiment run."""

    total_seconds: float = 0.0
    ckpt_write_seconds: float = 0.0
    recovery_seconds: float = 0.0
    ckpt_read_seconds: float = 0.0

    @property
    def application_seconds(self) -> float:
        """Everything that is not checkpointing or MPI recovery."""
        return max(0.0, self.total_seconds - self.ckpt_write_seconds
                   - self.recovery_seconds - self.ckpt_read_seconds)

    def as_dict(self) -> dict:
        return {
            "application": self.application_seconds,
            "write_checkpoints": self.ckpt_write_seconds,
            "recovery": self.recovery_seconds,
            "read_checkpoints": self.ckpt_read_seconds,
            "total": self.total_seconds,
        }

    def __str__(self):
        return ("total=%.2fs app=%.2fs ckpt=%.2fs recovery=%.2fs "
                "(read=%.3fs)" % (self.total_seconds,
                                  self.application_seconds,
                                  self.ckpt_write_seconds,
                                  self.recovery_seconds,
                                  self.ckpt_read_seconds))


@dataclass
class RunResult:
    """Outcome of one experiment run (one repetition)."""

    config_label: str
    breakdown: TimeBreakdown
    verified: bool
    ckpt_count: int = 0
    recovery_episodes: int = 0
    relaunches: int = 0
    fault_events: tuple = ()
    details: dict = field(default_factory=dict)


def average_breakdowns(breakdowns) -> TimeBreakdown:
    """Mean of several repetitions (the paper averages five runs)."""
    breakdowns = list(breakdowns)
    n = len(breakdowns)
    if n == 0:
        raise ValueError("cannot average zero runs")
    return TimeBreakdown(
        total_seconds=sum(b.total_seconds for b in breakdowns) / n,
        ckpt_write_seconds=sum(b.ckpt_write_seconds
                               for b in breakdowns) / n,
        recovery_seconds=sum(b.recovery_seconds for b in breakdowns) / n,
        ckpt_read_seconds=sum(b.ckpt_read_seconds for b in breakdowns) / n,
    )
