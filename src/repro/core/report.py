"""Render experiment results as the rows/series the paper reports.

Each figure becomes a text table with one row per (scale-or-input,
design) and stacked-bar columns (Application / Write Checkpoints /
Recovery), which is exactly the data behind the paper's bar charts.

Campaign-summary *renderers* are registry-driven: ``RENDERERS`` is the
``renderer`` :class:`repro.registry.Registry`, mapping format names to
``render(summaries, title=...) -> str`` callables over a
``{label: CampaignResult}`` mapping. The CLI's ``campaign-report
--format`` flag and :func:`render_campaign` resolve through it, so a
new output format (HTML, JSON lines, a plotting hook) is one
registered function away.
"""

from __future__ import annotations

from .breakdown import TimeBreakdown
from .configs import TABLE1
from ..registry import Registry

#: the ``renderer`` registry: format name -> render(summaries, title=...)
RENDERERS = Registry("renderer", noun="report renderer")


def format_breakdown_series(title: str, rows: list,
                            x_label: str = "#Processes") -> str:
    """``rows``: list of (x_value, design_name, TimeBreakdown)."""
    lines = [title, "-" * len(title),
             "%-12s %-14s %12s %12s %12s %12s"
             % (x_label, "Design", "App(s)", "Ckpt(s)", "Recovery(s)",
                "Total(s)")]
    for x_value, design, breakdown in rows:
        lines.append("%-12s %-14s %12.2f %12.2f %12.2f %12.2f"
                     % (x_value, design.upper(),
                        breakdown.application_seconds,
                        breakdown.ckpt_write_seconds,
                        breakdown.recovery_seconds,
                        breakdown.total_seconds))
    return "\n".join(lines)


def format_recovery_series(title: str, rows: list,
                           x_label: str = "#Processes") -> str:
    """``rows``: list of (x_value, design_name, recovery_seconds)."""
    lines = [title, "-" * len(title),
             "%-12s %-14s %14s" % (x_label, "Design", "Recovery(s)")]
    for x_value, design, seconds in rows:
        lines.append("%-12s %-14s %14.2f" % (x_value, design.upper(),
                                             seconds))
    return "\n".join(lines)


def format_table1() -> str:
    """Render Table I as the paper prints it."""
    header = ("%-10s %-26s %-26s %-26s %s"
              % ("App", "Small Input", "Medium Input", "Large Input",
                 "Processes"))
    lines = ["TABLE I: Experimentation configuration for proxy applications",
             header, "-" * len(header)]
    for row in TABLE1:
        lines.append("%-10s %-26s %-26s %-26s %s"
                     % (row.app, row.small, row.medium, row.large,
                        ", ".join(str(p) for p in row.nprocs)))
    return "\n".join(lines)


@RENDERERS.register("matrix")
def format_campaign_matrix(summaries: dict, title: str = "Campaign matrix",
                           ) -> str:
    """Render ``{label: CampaignResult}`` (e.g. a merged store) as rows.

    One row per configuration with the recovery/total distributions the
    campaign engine produced; the per-config run counts make shard
    coverage visible at a glance. The ``Flt/run`` column is the mean
    number of injected events per run (scenario intensity), so
    multi-fault scenario rows are distinguishable from the paper's
    single-kill rows at a glance.
    """
    header = ("%-40s %5s %8s %20s %20s %9s"
              % ("Configuration", "Runs", "Flt/run", "Recovery mean+-std",
                 "Total mean+-std", "Verified"))
    lines = [title, "-" * len(header), header]
    for label, result in summaries.items():
        recovery, total = result.recovery, result.total
        lines.append("%-40s %5d %8.1f %11.2f +- %5.2f %11.2f +- %5.2f %9s"
                     % (label, len(result.runs),
                        result.faults_per_run.mean, recovery.mean,
                        recovery.std, total.mean, total.std,
                        result.all_verified))
    return "\n".join(lines)


@RENDERERS.register("report")
def format_campaign_reports(summaries: dict,
                            title: str = "Campaign matrix") -> str:
    """One full per-configuration report block per campaign row."""
    return "\n\n".join(result.report() for result in summaries.values())


@RENDERERS.register("csv")
def format_campaign_csv(summaries: dict,
                        title: str = "Campaign matrix") -> str:
    """Machine-readable rows (spreadsheet / pandas-ready)."""
    lines = ["label,runs,faults_per_run_mean,recovery_mean,recovery_std,"
             "total_mean,total_std,rework_mean,verified"]
    for label, result in summaries.items():
        recovery, total, rework = (result.recovery, result.total,
                                   result.rework)
        lines.append("%s,%d,%r,%r,%r,%r,%r,%r,%s"
                     % (label, len(result.runs),
                        result.faults_per_run.mean, recovery.mean,
                        recovery.std, total.mean, total.std, rework.mean,
                        result.all_verified))
    return "\n".join(lines)


def render_campaign(summaries: dict, fmt: str = "matrix",
                    title: str = "Campaign matrix") -> str:
    """Render ``{label: CampaignResult}`` with a registered renderer."""
    return RENDERERS.resolve(fmt)(summaries, title=title)


def summarize_ratios(recovery: dict) -> str:
    """Headline ratios (§I contribution 3) from a {design: [seconds]} map."""
    def mean(xs):
        xs = list(xs)
        return sum(xs) / len(xs) if xs else float("nan")

    reinit = mean(recovery.get("reinit-fti", []))
    ulfm = mean(recovery.get("ulfm-fti", []))
    restart = mean(recovery.get("restart-fti", []))
    lines = ["Headline recovery ratios (cf. paper: ULFM/Reinit ~4x, "
             "Restart/Reinit ~16x, Restart/ULFM 2-3x):"]
    if reinit and ulfm:
        lines.append("  ULFM    / Reinit : %5.1fx" % (ulfm / reinit))
    if reinit and restart:
        lines.append("  Restart / Reinit : %5.1fx" % (restart / reinit))
    if ulfm and restart:
        lines.append("  Restart / ULFM   : %5.1fx" % (restart / ulfm))
    return "\n".join(lines)
