"""Chaos fault injection for the campaign harness itself.

The simulator injects faults into *simulated* jobs; this module injects
faults into the *harness that runs them*, so the failure-containment
layer (``on_error`` / retries / timeouts, see
:mod:`repro.core.engine`) can be tested deliberately instead of waiting
for a real OOM kill mid-campaign. A chaos spec makes pool workers
crash, hang, raise, or return corrupt payloads on demand::

    {
      "dir": "/tmp/chaos-state",
      "rules": [
        {"mode": "crash", "match": "*minivite*#rep0", "times": 1},
        {"mode": "hang",  "match": "*hpccg*", "times": 1,
         "hang_seconds": 3600},
        {"mode": "error", "match": "*reinit*#rep1", "times": -1}
      ]
    }

* ``mode`` — one of :data:`CHAOS_MODES`:
  ``crash`` (hard ``os._exit``: the worker dies without a result, like
  an OOM kill), ``hang`` (sleep past any sane deadline, like a wedged
  I/O call), ``error`` (raise :class:`ChaosError` — a deterministic,
  never-retried "poisoned config"), ``unpicklable`` (raise an exception
  whose class cannot survive a pickle round-trip, the classic pool
  killer), ``corrupt`` (complete the run but ship back garbage instead
  of the result payload).
* ``match`` — an :func:`fnmatch.fnmatch` pattern over the unit
  description ``"<config.label()>#rep<rep>"``.
* ``times`` — how many times the rule fires across *all* worker
  processes (claims are files in ``dir``, created with ``O_EXCL`` so
  exactly one process wins each slot). ``-1`` means unlimited — a
  deterministic poison rather than a transient glitch.

Workers pick the spec up from the ``MATCH_CHAOS`` environment variable
(inline JSON, or ``@/path/to/spec.json``), which the ``spawn`` start
method propagates automatically — no engine plumbing, and production
code paths contain nothing chaos-specific beyond the two hook calls in
the worker.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass
from fnmatch import fnmatch

from ..errors import ConfigurationError, ReproError

#: environment variable carrying the chaos spec (JSON or ``@path``)
CHAOS_ENV = "MATCH_CHAOS"

CHAOS_MODES = ("crash", "hang", "error", "unpicklable", "corrupt")


class ChaosError(ReproError):
    """A deliberately injected, deterministic unit failure."""


class StubbornChaosError(Exception):
    """An exception that cannot survive a pickle round-trip.

    ``Exception.__reduce__`` replays ``cls(*self.args)``, and ``args``
    here holds one element while ``__init__`` demands two — exactly the
    shape of real-world exception classes that used to crash the old
    ship-the-exception pool protocol in the *parent*, far from the
    culprit unit. The engine's structured error records must contain
    it instead.
    """

    def __init__(self, code, detail):
        self.code = code
        self.detail = detail
        super().__init__("stubborn chaos failure %s" % (code,))


@dataclass(frozen=True)
class ChaosRule:
    """One injection rule of a chaos spec."""

    mode: str
    match: str = "*"
    #: maximum firings across all processes; -1 = unlimited
    times: int = 1
    hang_seconds: float = 3600.0

    def __post_init__(self):
        if self.mode not in CHAOS_MODES:
            raise ConfigurationError(
                "unknown chaos mode %r (have %s)"
                % (self.mode, ", ".join(CHAOS_MODES)))
        if self.times < -1 or self.times == 0:
            raise ConfigurationError(
                "chaos rule times must be positive or -1 (unlimited), "
                "got %r" % (self.times,))


class ChaosInjector:
    """Executes the rules of a chaos spec inside pool workers."""

    def __init__(self, rules, state_dir):
        self.rules = tuple(rules)
        self.state_dir = pathlib.Path(state_dir)

    # -- construction -------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: dict) -> "ChaosInjector":
        if not isinstance(spec, dict) or "rules" not in spec:
            raise ConfigurationError(
                "chaos spec must be a dict with a 'rules' list")
        rules = []
        for raw in spec["rules"]:
            unknown = set(raw) - {"mode", "match", "times", "hang_seconds"}
            if unknown:
                raise ConfigurationError(
                    "unknown chaos rule fields %s" % sorted(unknown))
            rules.append(ChaosRule(**raw))
        state_dir = spec.get("dir")
        if state_dir is None:
            raise ConfigurationError(
                "chaos spec needs a 'dir' for cross-process firing "
                "claims (each worker is a separate process)")
        return cls(rules, state_dir)

    @classmethod
    def from_env(cls):
        """The injector described by ``$MATCH_CHAOS``, or ``None``."""
        text = os.environ.get(CHAOS_ENV, "").strip()
        if not text:
            return None
        if text.startswith("@"):
            with open(text[1:], "r", encoding="utf-8") as handle:
                text = handle.read()
        try:
            spec = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(
                "%s is not valid JSON: %s" % (CHAOS_ENV, exc)) from exc
        return cls.from_spec(spec)

    # -- firing -------------------------------------------------------------
    def _claim(self, index: int, rule: ChaosRule) -> bool:
        """Atomically claim one firing slot for ``rule`` (cross-process)."""
        if rule.times < 0:
            return True
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for slot in range(rule.times):
            path = self.state_dir / ("rule%d.slot%d" % (index, slot))
            try:
                fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def _matching(self, unit_desc: str, modes):
        for index, rule in enumerate(self.rules):
            if rule.mode in modes and fnmatch(unit_desc, rule.match):
                yield index, rule

    def fire(self, unit_desc: str) -> None:
        """Pre-execution hook: crash, hang or raise if a rule matches.

        ``unit_desc`` is ``"<config.label()>#rep<rep>"``.
        """
        for index, rule in self._matching(
                unit_desc, ("crash", "hang", "error", "unpicklable")):
            if not self._claim(index, rule):
                continue
            if rule.mode == "crash":
                # bypass all exception handling and atexit machinery:
                # indistinguishable from an OOM kill to the parent
                os._exit(67)
            if rule.mode == "hang":
                time.sleep(rule.hang_seconds)
                return
            if rule.mode == "error":
                raise ChaosError(
                    "chaos: injected deterministic failure for %s"
                    % unit_desc)
            raise StubbornChaosError(13, unit_desc)

    def corrupt(self, unit_desc: str, result_dict: dict) -> dict:
        """Post-execution hook: swap the result payload for garbage."""
        for index, rule in self._matching(unit_desc, ("corrupt",)):
            if self._claim(index, rule):
                return {"chaos": "corrupted payload for %s" % unit_desc}
        return result_dict


def chaos_spec_to_env(spec: dict) -> str:
    """The ``MATCH_CHAOS`` value for a spec dict (validates it first)."""
    ChaosInjector.from_spec(spec)
    return json.dumps(spec, sort_keys=True)


__all__ = [
    "CHAOS_ENV",
    "CHAOS_MODES",
    "ChaosError",
    "ChaosInjector",
    "ChaosRule",
    "StubbornChaosError",
    "chaos_spec_to_env",
]
