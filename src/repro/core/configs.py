"""Experiment configurations — the paper's Table I, §V-B defaults.

Default scaling size: 64 processes. Default input problem: small.
Checkpoints every ten iterations, FTI L1 to RAMFS, five repetitions
averaged. LULESH only runs on cube process counts (64, 512).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace

from ..apps import APP_REGISTRY, LULESH_PROC_COUNTS
from ..errors import ConfigurationError
from ..faults.scenarios import FaultScenario, parse_scenario_spec
from ..fti.config import FtiConfig

#: the paper's evaluated designs (§V-B) — the canonical trio; custom
#: designs registered in the ``design`` registry are equally valid in
#: configs, they just are not part of the default matrices
DESIGN_NAMES = ("restart-fti", "reinit-fti", "ulfm-fti")

#: the evaluated scaling sizes, all on 32 nodes (§V-B)
SCALING_SIZES = (64, 128, 256, 512)

#: the evaluated input problem sizes
INPUT_SIZES = ("small", "medium", "large")

#: nodes in every experiment (§V-B: "on 32 nodes")
NNODES = 32

#: repetitions per configuration (§V-B: "five times ... average")
DEFAULT_REPETITIONS = 5


@dataclass(frozen=True)
class AppConfigRow:
    """One row of Table I."""

    app: str
    small: str
    medium: str
    large: str
    nprocs: tuple

    def cmdline(self, input_size: str) -> str:
        return {"small": self.small, "medium": self.medium,
                "large": self.large}[input_size]


#: Table I verbatim
TABLE1 = (
    AppConfigRow("amg", "-problem 2 -n 20 20 20", "-problem 2 -n 40 40 40",
                 "-problem 2 -n 60 60 60", (64, 128, 256, 512)),
    AppConfigRow("comd", "-nx 128 -ny 128 -nz 128", "-nx 256 -ny 256 -nz 256",
                 "-nx 512 -ny 512 -nz 512", (64, 128, 256, 512)),
    AppConfigRow("hpccg", "64 64 64", "128 128 128", "192 192 192",
                 (64, 128, 256, 512)),
    AppConfigRow("lulesh", "-s 30 -p", "-s 40 -p", "-s 50 -p", (64, 512)),
    AppConfigRow("minife", "-nx 20 -ny 20 -nz 20", "-nx 40 -ny 40 -nz 40",
                 "-nx 60 -ny 60 -nz 60", (64, 128, 256, 512)),
    AppConfigRow("minivite", "-p 3 -l -n 128000", "-p 3 -l -n 256000",
                 "-p 3 -l -n 512000", (64, 128, 256, 512)),
)

TABLE1_BY_APP = {row.app: row for row in TABLE1}


@dataclass(frozen=True)
class ExperimentConfig:
    """One cell of the paper's evaluation matrix.

    The failure regime is a first-class :class:`FaultScenario` in
    ``faults``; ``inject_fault`` survives as the legacy shorthand for
    the paper's single-SIGTERM scenario and is kept in sync (it is
    always ``faults.injects`` after construction; passing a bool that
    contradicts the scenario raises). ``faults`` accepts a
    :class:`FaultScenario`, a serialized scenario dict, or a CLI spec
    string like ``"independent:3:node=1"``.

    The checkpoint interval has one canonical home —
    ``fti.ckpt_stride`` — and ``interval`` is the config-level way to
    set it: an ``int`` overrides the stride, the string ``"auto"``
    resolves the Young/Daly-optimal stride for this config's scenario
    through the ``model`` registry (:mod:`repro.modeling`), and
    ``None`` (the default) keeps whatever ``fti`` says. After
    construction ``interval`` always equals ``fti.ckpt_stride``, and it
    never enters the run-key payload (the stride inside ``fti``
    already does), so the legacy implicit interval and an explicit
    ``interval=10`` produce bit-identical run keys.
    """

    app: str
    design: str
    nprocs: int = 64
    input_size: str = "small"
    #: tri-state at construction (None = derive from ``faults``);
    #: always a bool equal to ``faults.injects`` afterwards
    inject_fault: bool | None = None
    seed: int = 0
    fti: FtiConfig = field(default_factory=FtiConfig)
    nnodes: int = NNODES
    faults: FaultScenario = None
    #: canonical checkpoint interval: None (keep ``fti.ckpt_stride``),
    #: an int stride, or ``"auto"`` (Young/Daly via the model registry);
    #: always an int equal to ``fti.ckpt_stride`` after construction
    interval: int | str | None = None

    def __post_init__(self):
        # registry lookups (not membership in the paper's tuples) so a
        # plugin-registered app or design is a first-class config value;
        # .resolve raises ConfigurationError naming the known entries
        APP_REGISTRY.resolve(self.app)
        from .designs import DESIGNS

        DESIGNS.resolve(self.design)
        if self.input_size not in INPUT_SIZES:
            raise ConfigurationError("unknown input size %r"
                                     % (self.input_size,))
        if self.nprocs < 2:
            raise ConfigurationError("need at least two processes")
        if self.app == "lulesh" and self.nprocs not in LULESH_PROC_COUNTS:
            raise ConfigurationError(
                "LULESH runs only on cube process counts %s"
                % (LULESH_PROC_COUNTS,))
        faults = self.faults
        if isinstance(faults, str):
            faults = parse_scenario_spec(faults)
        elif isinstance(faults, dict):
            faults = FaultScenario.from_dict(faults)
        if faults is None:
            faults = (FaultScenario.single() if self.inject_fault
                      else FaultScenario.none())
        elif not isinstance(faults, FaultScenario):
            raise ConfigurationError(
                "faults must be a FaultScenario, scenario dict or spec "
                "string (got %r)" % (faults,))
        if self.inject_fault is not None \
                and bool(self.inject_fault) != faults.injects:
            raise ConfigurationError(
                "inject_fault=%s contradicts the %r fault scenario; "
                "drop one of the two" % (self.inject_fault, faults.kind))
        object.__setattr__(self, "faults", faults)
        object.__setattr__(self, "inject_fault", faults.injects)
        self._resolve_interval()

    def _resolve_interval(self) -> None:
        """Normalise ``interval`` into ``fti.ckpt_stride`` (see the
        class docstring): afterwards the two always agree, so the run
        key — which hashes only ``fti`` — is identical however the
        stride was spelled."""
        interval = self.interval
        if interval is None:
            object.__setattr__(self, "interval", self.fti.ckpt_stride)
            return
        if interval == "auto":
            from ..modeling.interval import auto_stride

            interval = auto_stride(self)
        elif isinstance(interval, bool) or not isinstance(interval, int):
            raise ConfigurationError(
                "interval must be None, an int stride or 'auto' "
                "(got %r)" % (interval,))
        if interval < 1:
            raise ConfigurationError("interval must be >= 1")
        default_stride = FtiConfig().ckpt_stride
        if self.fti.ckpt_stride not in (default_stride, interval):
            raise ConfigurationError(
                "interval=%d contradicts fti.ckpt_stride=%d; set the "
                "stride through one of the two" % (interval,
                                                   self.fti.ckpt_stride))
        object.__setattr__(self, "fti",
                           replace(self.fti, ckpt_stride=interval))
        object.__setattr__(self, "interval", interval)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)

    def with_faults(self, faults) -> "ExperimentConfig":
        """A copy running under a different fault scenario."""
        return replace(self, faults=faults, inject_fault=None)

    def with_interval(self, interval) -> "ExperimentConfig":
        """A copy checkpointing at a different interval (int or
        ``"auto"``); the stride inside ``fti`` follows along.

        ``None`` is rejected rather than treated as "keep": the stride
        reset below would silently turn it into the default stride,
        and a caller plumbing an unset optional through here should
        hear about it."""
        if interval is None:
            raise ConfigurationError(
                "with_interval needs an int stride or 'auto' (to keep "
                "the current interval, keep the config)")
        return replace(
            self, interval=interval,
            fti=replace(self.fti, ckpt_stride=FtiConfig().ckpt_stride))

    def make_app(self):
        return APP_REGISTRY[self.app].from_input(self.nprocs,
                                                 self.input_size)

    def label(self) -> str:
        if not self.inject_fault:
            suffix = ""
        elif self.faults.kind == "single":
            suffix = "/fault"  # the legacy label, kept stable
        else:
            suffix = "/fault=%s" % self.faults.label()
        return "%s/%s/p%d/%s%s" % (
            self.app, self.design.upper(), self.nprocs, self.input_size,
            suffix)


#: bump when the run-key payload layout changes (invalidates old stores)
#: — schema 2: configs carry a canonical ``faults`` scenario. The
#: ``interval`` field deliberately did NOT bump it: the stride it sets
#: already lives in the payload as ``fti.ckpt_stride``, so the field is
#: dropped from the payload and schema-2 keys stay valid.
RUN_KEY_SCHEMA = 2


def config_to_dict(config: "ExperimentConfig") -> dict:
    """A JSON-safe dict capturing every field that affects a run.

    The inverse of :func:`config_from_dict`; the pair is how configs
    cross process boundaries (campaign workers) and land in result
    stores. ``interval`` is omitted: after construction it always
    equals ``fti.ckpt_stride`` (which *is* in the payload), so keeping
    it out makes the legacy implicit interval, ``interval=N`` and a
    resolved ``interval="auto"`` map to the same run keys — and legacy
    payloads without the key round-trip unchanged.
    """
    data = dataclasses.asdict(config)
    del data["interval"]
    # route faults through its own to_dict: fields added to FaultScenario
    # after schema 2 serialize only when non-default, so legacy payloads
    # (and their run keys) stay byte-identical
    data["faults"] = config.faults.to_dict()
    return data


def config_from_dict(data: dict) -> "ExperimentConfig":
    """Rebuild an :class:`ExperimentConfig` from `config_to_dict` output."""
    data = dict(data)
    fti = data.pop("fti", None)
    unknown = set(data) - {f.name for f in
                           dataclasses.fields(ExperimentConfig)}
    if unknown:
        raise ConfigurationError(
            "config dict has unknown fields %s" % sorted(unknown))
    # `faults` may be a serialized dict (or absent, for legacy payloads);
    # __post_init__ normalises either into a FaultScenario
    return ExperimentConfig(
        fti=FtiConfig(**fti) if fti is not None else FtiConfig(), **data)


def run_key(config: "ExperimentConfig", rep: int) -> str:
    """Stable content key for one ``(config, repetition)`` run.

    A sha256 prefix over the canonical JSON of the config plus the
    repetition index. Independent of ``PYTHONHASHSEED``, process,
    platform and dict ordering, so a resumed or sharded sweep agrees
    with the sweep that wrote the store about which runs are done.
    """
    payload = {"schema": RUN_KEY_SCHEMA, "rep": int(rep),
               "config": config_to_dict(config)}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def campaign_matrix(apps, designs=DESIGN_NAMES, nprocs: int = 64,
                    input_size: str = "small", seed: int = 0,
                    nnodes: int = NNODES, faults=None, fti=None):
    """Fault-injection configs for a campaign sweep, in stable order.

    Enumeration order (apps outer, designs inner) is part of the shard
    contract: ``--shard K/N`` slices this ordering, so the same flags
    always produce the same shard membership. ``faults`` selects the
    scenario every cell runs under (scenario, dict or spec string;
    default: the paper's single kill); ``fti`` overrides the checkpoint
    policy (node-failure scenarios need ``FtiConfig(level=2)`` or
    higher to stay recoverable).
    """
    if faults is None:
        faults = FaultScenario.single()
    configs = []
    for app in apps:
        for design in designs:
            configs.append(ExperimentConfig(
                app=app, design=design, nprocs=nprocs,
                input_size=input_size, seed=seed, nnodes=nnodes,
                faults=faults, fti=fti if fti is not None else FtiConfig()))
    labels = [c.label() for c in configs]
    if len(set(labels)) != len(labels):
        raise ConfigurationError("campaign matrix has duplicate cells")
    return configs


def valid_proc_counts(app: str) -> tuple:
    """The scaling sizes Table I runs this app at."""
    return TABLE1_BY_APP[app].nprocs


def scaling_matrix(designs=DESIGN_NAMES, inject_fault: bool = False):
    """Every (app, design, nprocs) cell of Figures 5-7 (small input)."""
    cells = []
    for row in TABLE1:
        for nprocs in row.nprocs:
            for design in designs:
                cells.append(ExperimentConfig(
                    app=row.app, design=design, nprocs=nprocs,
                    input_size="small", inject_fault=inject_fault))
    return cells


def input_matrix(designs=DESIGN_NAMES, inject_fault: bool = False):
    """Every (app, design, input) cell of Figures 8-10 (64 processes)."""
    cells = []
    for row in TABLE1:
        for input_size in INPUT_SIZES:
            for design in designs:
                cells.append(ExperimentConfig(
                    app=row.app, design=design, nprocs=64,
                    input_size=input_size, inject_fault=inject_fault))
    return cells
