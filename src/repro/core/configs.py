"""Experiment configurations — the paper's Table I, §V-B defaults.

Default scaling size: 64 processes. Default input problem: small.
Checkpoints every ten iterations, FTI L1 to RAMFS, five repetitions
averaged. LULESH only runs on cube process counts (64, 512).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..apps import APP_REGISTRY, LULESH_PROC_COUNTS
from ..errors import ConfigurationError
from ..fti.config import FtiConfig

#: the evaluated designs (§V-B)
DESIGN_NAMES = ("restart-fti", "reinit-fti", "ulfm-fti")

#: the evaluated scaling sizes, all on 32 nodes (§V-B)
SCALING_SIZES = (64, 128, 256, 512)

#: the evaluated input problem sizes
INPUT_SIZES = ("small", "medium", "large")

#: nodes in every experiment (§V-B: "on 32 nodes")
NNODES = 32

#: repetitions per configuration (§V-B: "five times ... average")
DEFAULT_REPETITIONS = 5


@dataclass(frozen=True)
class AppConfigRow:
    """One row of Table I."""

    app: str
    small: str
    medium: str
    large: str
    nprocs: tuple

    def cmdline(self, input_size: str) -> str:
        return {"small": self.small, "medium": self.medium,
                "large": self.large}[input_size]


#: Table I verbatim
TABLE1 = (
    AppConfigRow("amg", "-problem 2 -n 20 20 20", "-problem 2 -n 40 40 40",
                 "-problem 2 -n 60 60 60", (64, 128, 256, 512)),
    AppConfigRow("comd", "-nx 128 -ny 128 -nz 128", "-nx 256 -ny 256 -nz 256",
                 "-nx 512 -ny 512 -nz 512", (64, 128, 256, 512)),
    AppConfigRow("hpccg", "64 64 64", "128 128 128", "192 192 192",
                 (64, 128, 256, 512)),
    AppConfigRow("lulesh", "-s 30 -p", "-s 40 -p", "-s 50 -p", (64, 512)),
    AppConfigRow("minife", "-nx 20 -ny 20 -nz 20", "-nx 40 -ny 40 -nz 40",
                 "-nx 60 -ny 60 -nz 60", (64, 128, 256, 512)),
    AppConfigRow("minivite", "-p 3 -l -n 128000", "-p 3 -l -n 256000",
                 "-p 3 -l -n 512000", (64, 128, 256, 512)),
)

TABLE1_BY_APP = {row.app: row for row in TABLE1}


@dataclass(frozen=True)
class ExperimentConfig:
    """One cell of the paper's evaluation matrix."""

    app: str
    design: str
    nprocs: int = 64
    input_size: str = "small"
    inject_fault: bool = False
    seed: int = 0
    fti: FtiConfig = field(default_factory=FtiConfig)
    nnodes: int = NNODES

    def __post_init__(self):
        if self.app not in APP_REGISTRY:
            raise ConfigurationError(
                "unknown app %r (have %s)" % (self.app,
                                              sorted(APP_REGISTRY)))
        if self.design not in DESIGN_NAMES:
            raise ConfigurationError(
                "unknown design %r (have %s)" % (self.design, DESIGN_NAMES))
        if self.input_size not in INPUT_SIZES:
            raise ConfigurationError("unknown input size %r"
                                     % (self.input_size,))
        if self.nprocs < 2:
            raise ConfigurationError("need at least two processes")
        if self.app == "lulesh" and self.nprocs not in LULESH_PROC_COUNTS:
            raise ConfigurationError(
                "LULESH runs only on cube process counts %s"
                % (LULESH_PROC_COUNTS,))

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)

    def make_app(self):
        return APP_REGISTRY[self.app].from_input(self.nprocs,
                                                 self.input_size)

    def label(self) -> str:
        return "%s/%s/p%d/%s%s" % (
            self.app, self.design.upper(), self.nprocs, self.input_size,
            "/fault" if self.inject_fault else "")


def valid_proc_counts(app: str) -> tuple:
    """The scaling sizes Table I runs this app at."""
    return TABLE1_BY_APP[app].nprocs


def scaling_matrix(designs=DESIGN_NAMES, inject_fault: bool = False):
    """Every (app, design, nprocs) cell of Figures 5-7 (small input)."""
    cells = []
    for row in TABLE1:
        for nprocs in row.nprocs:
            for design in designs:
                cells.append(ExperimentConfig(
                    app=row.app, design=design, nprocs=nprocs,
                    input_size="small", inject_fault=inject_fault))
    return cells


def input_matrix(designs=DESIGN_NAMES, inject_fault: bool = False):
    """Every (app, design, input) cell of Figures 8-10 (64 processes)."""
    cells = []
    for row in TABLE1:
        for input_size in INPUT_SIZES:
            for design in designs:
                cells.append(ExperimentConfig(
                    app=row.app, design=design, nprocs=64,
                    input_size=input_size, inject_fault=inject_fault))
    return cells
