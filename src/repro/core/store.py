"""On-disk resumable result store for campaign sweeps.

A store is a JSONL file: one line per completed run, written append-only
and flushed to disk as each run finishes, so a killed sweep loses at
most the line it was writing. Each record is content-keyed by
:func:`repro.core.configs.run_key`, which hashes the full configuration
plus the repetition index — resuming therefore never trusts file order
or in-memory state, only the keys::

    {"key": "3f2a…", "rep": 0, "config": {...}, "result": {...}}

``load_completed`` tolerates a truncated or corrupt trailing line (the
signature of a mid-write kill) by skipping undecodable lines and
counting them in :attr:`ResultStore.corrupt_lines`.

A second record kind marks *failures*: under a fail-soft campaign
(``on_error=continue``) a unit whose run failed for good is recorded
with an ``error`` payload instead of a ``result``::

    {"key": "3f2a…", "rep": 0, "config": {...},
     "error": {"type": ..., "message": ..., "traceback": ..., ...}}

Failure records are *ignored by resume* — ``load_completed`` never
returns them — so a re-run after a bug fix executes the failed units
again instead of skipping them; ``load_failures`` surfaces them for
reporting. They are not counted as corrupt lines.

Store *backends* are registry-driven: ``STORES`` is the ``store``
:class:`repro.registry.Registry`, mapping backend names to classes with
the ``append``/``load_completed`` protocol. :func:`open_store` resolves
a ``"backend:location"`` spec (a bare path means ``jsonl``), so the
engine, CLI and :class:`repro.api.Campaign` accept any registered
backend without caring which one they got.
"""

from __future__ import annotations

import json
import os
import pathlib

from ..errors import ConfigurationError
from ..obs.metrics import REGISTRY as OBS_REGISTRY
from ..registry import Registry

#: store instruments (metric catalog: docs/OBSERVABILITY.md); shared by
#: every backend so a campaign's append/resume traffic is visible
#: regardless of where the records land
_STORE_APPENDS = OBS_REGISTRY.counter(
    "match_store_appends_total",
    "Records appended to a result store, by kind (result/failure)")
_STORE_LOADS = OBS_REGISTRY.counter(
    "match_store_loads_total", "load_completed() passes over a store")
_STORE_RECORDS_LOADED = OBS_REGISTRY.counter(
    "match_store_records_loaded_total",
    "Result records deserialized by load_completed()")
_STORE_CORRUPT = OBS_REGISTRY.counter(
    "match_store_corrupt_lines_total",
    "Undecodable JSONL lines skipped while loading")


def _check_store(name, cls):
    for hook in ("append", "load_completed"):
        if not callable(getattr(cls, hook, None)):
            raise ConfigurationError(
                "store backend %r must provide %s()" % (name, hook))


#: the ``store`` registry: backend name -> store class taking one
#: location argument
STORES = Registry("store", validate=_check_store, noun="store backend")


@STORES.register("jsonl")
class ResultStore:
    """Append-only JSONL store of completed campaign runs."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        #: undecodable lines skipped by the last ``load_completed``
        self.corrupt_lines = 0

    def append(self, key: str, config_dict: dict, rep: int,
               result_dict: dict) -> None:
        """Durably record one completed run (flush + fsync per line)."""
        self._append_record({"key": key, "rep": int(rep),
                             "config": config_dict, "result": result_dict})

    def append_failure(self, key: str, config_dict: dict, rep: int,
                       error_dict: dict) -> None:
        """Durably record one *failed* run (ignored by resume)."""
        self._append_record({"key": key, "rep": int(rep),
                             "config": config_dict, "error": error_dict})

    def _append_record(self, record: dict) -> None:
        _STORE_APPENDS.inc(
            kind="failure" if "error" in record else "result")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # a file killed mid-write ends in a truncated line with no
        # newline; appending straight onto it would weld this record to
        # the garbage and corrupt *both* — seal the tail first
        seal = b""
        if self.path.exists() and self.path.stat().st_size > 0:
            with open(self.path, "rb") as tail:
                tail.seek(-1, os.SEEK_END)
                if tail.read(1) != b"\n":
                    seal = b"\n"
        with open(self.path, "ab") as handle:
            handle.write(seal + line.encode("utf-8") + b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load_completed(self) -> dict:
        """``{key: record}`` of every decodable *result* record (last
        key wins).

        Missing file means an empty store (a sweep that has not started
        yet); corrupt lines are skipped, not fatal, because the one
        expected corruption is the final partially-written line of a
        killed sweep. Failure records are skipped too — a failed unit
        must re-run on resume — without counting as corruption.
        """
        records, _ = self._load()
        _STORE_LOADS.inc()
        _STORE_RECORDS_LOADED.inc(len(records))
        if self.corrupt_lines:
            _STORE_CORRUPT.inc(self.corrupt_lines)
        return records

    def load_failures(self) -> dict:
        """``{key: record}`` of every decodable failure record.

        A key that later completed successfully (e.g. a retry of the
        whole sweep after a bug fix) is dropped: the success supersedes
        the stale failure.
        """
        records, failures = self._load()
        return {key: record for key, record in failures.items()
                if key not in records}

    def _load(self):
        self.corrupt_lines = 0
        records, failures = {}, {}
        if not self.path.exists():
            return records, failures
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    record["rep"], record["config"]
                    if "error" in record:
                        failures[key] = record
                        continue
                    record["result"]
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                records[key] = record
        return records, failures


@STORES.register("memory")
class MemoryStore:
    """In-process store backend: the JSONL record layout without disk.

    Useful for embedding (collect a streaming session's records for
    later summarisation) and for tests. The engine records completed
    runs from the parent process, so it works under ``jobs > 1`` too;
    being process-local, it simply has nothing to resume from after an
    interpreter restart.
    """

    def __init__(self, location=""):
        self.location = str(location)
        self.corrupt_lines = 0
        self._records: dict = {}
        self._failures: dict = {}

    def append(self, key: str, config_dict: dict, rep: int,
               result_dict: dict) -> None:
        # round-trip through JSON so stored payloads are exactly what a
        # JSONL backend would return on load (no live object aliasing)
        record = {"key": key, "rep": int(rep), "config": config_dict,
                  "result": result_dict}
        _STORE_APPENDS.inc(kind="result")
        self._records[key] = json.loads(json.dumps(record))

    def append_failure(self, key: str, config_dict: dict, rep: int,
                       error_dict: dict) -> None:
        record = {"key": key, "rep": int(rep), "config": config_dict,
                  "error": error_dict}
        _STORE_APPENDS.inc(kind="failure")
        self._failures[key] = json.loads(json.dumps(record))

    def load_completed(self) -> dict:
        self.corrupt_lines = 0
        _STORE_LOADS.inc()
        _STORE_RECORDS_LOADED.inc(len(self._records))
        return dict(self._records)

    def load_failures(self) -> dict:
        return {key: record for key, record in self._failures.items()
                if key not in self._records}


def open_store(spec):
    """Resolve a store spec into a backend instance.

    ``spec`` may already be a store object (anything with ``append`` and
    ``load_completed``), a ``"backend:location"`` string naming any
    registered backend, or a bare filesystem path (the ``jsonl``
    default). A path containing ``:`` only routes to a backend when the
    prefix actually names one, so ordinary paths never misparse.
    """
    if spec is None:
        return None
    if callable(getattr(spec, "append", None)) \
            and callable(getattr(spec, "load_completed", None)):
        return spec
    text = str(spec)
    if ":" in text:
        backend, _, location = text.partition(":")
        if backend in STORES:
            return STORES.resolve(backend)(location)
    return STORES.resolve("jsonl")(text)


def merge_store_paths(specs) -> dict:
    """Union the records of several stores (e.g. one per shard).

    Each entry is anything :func:`open_store` accepts — a path, a
    ``backend:location`` spec, or a store object — so the same
    ``--store`` argument works on the sweep and report sides. Raises
    :class:`ConfigurationError` when given no stores, a missing path,
    or a store with zero decodable records — an empty input is almost
    always a sweep that never ran, and silently summarising nothing
    would report std=0.0 distributions that look real.
    """
    specs = list(specs)
    if not specs:
        raise ConfigurationError(
            "store merge needs at least one result-store path")
    merged = {}
    for spec in specs:
        store = open_store(spec)
        path = getattr(store, "path", None)
        if path is not None and not pathlib.Path(path).exists():
            raise ConfigurationError(
                "result store %s does not exist (shard never ran?)" % path)
        records = store.load_completed()
        if not records:
            raise ConfigurationError(
                "result store %s holds no completed runs" % (spec,))
        merged.update(records)
    return merged
