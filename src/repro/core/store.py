"""On-disk resumable result store for campaign sweeps.

A store is a JSONL file: one line per completed run, written append-only
and flushed to disk as each run finishes, so a killed sweep loses at
most the line it was writing. Each record is content-keyed by
:func:`repro.core.configs.run_key`, which hashes the full configuration
plus the repetition index — resuming therefore never trusts file order
or in-memory state, only the keys::

    {"key": "3f2a…", "rep": 0, "config": {...}, "result": {...}}

``load_completed`` tolerates a truncated or corrupt trailing line (the
signature of a mid-write kill) by skipping undecodable lines and
counting them in :attr:`ResultStore.corrupt_lines`.

Store *backends* are registry-driven: ``STORES`` is the ``store``
:class:`repro.registry.Registry`, mapping backend names to classes with
the ``append``/``load_completed`` protocol. :func:`open_store` resolves
a ``"backend:location"`` spec (a bare path means ``jsonl``), so the
engine, CLI and :class:`repro.api.Campaign` accept any registered
backend without caring which one they got.
"""

from __future__ import annotations

import json
import os
import pathlib

from ..errors import ConfigurationError
from ..registry import Registry


def _check_store(name, cls):
    for hook in ("append", "load_completed"):
        if not callable(getattr(cls, hook, None)):
            raise ConfigurationError(
                "store backend %r must provide %s()" % (name, hook))


#: the ``store`` registry: backend name -> store class taking one
#: location argument
STORES = Registry("store", validate=_check_store, noun="store backend")


@STORES.register("jsonl")
class ResultStore:
    """Append-only JSONL store of completed campaign runs."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        #: undecodable lines skipped by the last ``load_completed``
        self.corrupt_lines = 0

    def append(self, key: str, config_dict: dict, rep: int,
               result_dict: dict) -> None:
        """Durably record one completed run (flush + fsync per line)."""
        record = {"key": key, "rep": int(rep), "config": config_dict,
                  "result": result_dict}
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load_completed(self) -> dict:
        """``{key: record}`` of every decodable record (last key wins).

        Missing file means an empty store (a sweep that has not started
        yet); corrupt lines are skipped, not fatal, because the one
        expected corruption is the final partially-written line of a
        killed sweep.
        """
        self.corrupt_lines = 0
        records = {}
        if not self.path.exists():
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    record["rep"], record["config"], record["result"]
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                records[key] = record
        return records


@STORES.register("memory")
class MemoryStore:
    """In-process store backend: the JSONL record layout without disk.

    Useful for embedding (collect a streaming session's records for
    later summarisation) and for tests. The engine records completed
    runs from the parent process, so it works under ``jobs > 1`` too;
    being process-local, it simply has nothing to resume from after an
    interpreter restart.
    """

    def __init__(self, location=""):
        self.location = str(location)
        self.corrupt_lines = 0
        self._records: dict = {}

    def append(self, key: str, config_dict: dict, rep: int,
               result_dict: dict) -> None:
        # round-trip through JSON so stored payloads are exactly what a
        # JSONL backend would return on load (no live object aliasing)
        record = {"key": key, "rep": int(rep), "config": config_dict,
                  "result": result_dict}
        self._records[key] = json.loads(json.dumps(record))

    def load_completed(self) -> dict:
        self.corrupt_lines = 0
        return dict(self._records)


def open_store(spec):
    """Resolve a store spec into a backend instance.

    ``spec`` may already be a store object (anything with ``append`` and
    ``load_completed``), a ``"backend:location"`` string naming any
    registered backend, or a bare filesystem path (the ``jsonl``
    default). A path containing ``:`` only routes to a backend when the
    prefix actually names one, so ordinary paths never misparse.
    """
    if spec is None:
        return None
    if callable(getattr(spec, "append", None)) \
            and callable(getattr(spec, "load_completed", None)):
        return spec
    text = str(spec)
    if ":" in text:
        backend, _, location = text.partition(":")
        if backend in STORES:
            return STORES.resolve(backend)(location)
    return STORES.resolve("jsonl")(text)


def merge_store_paths(specs) -> dict:
    """Union the records of several stores (e.g. one per shard).

    Each entry is anything :func:`open_store` accepts — a path, a
    ``backend:location`` spec, or a store object — so the same
    ``--store`` argument works on the sweep and report sides. Raises
    :class:`ConfigurationError` when given no stores, a missing path,
    or a store with zero decodable records — an empty input is almost
    always a sweep that never ran, and silently summarising nothing
    would report std=0.0 distributions that look real.
    """
    specs = list(specs)
    if not specs:
        raise ConfigurationError(
            "store merge needs at least one result-store path")
    merged = {}
    for spec in specs:
        store = open_store(spec)
        path = getattr(store, "path", None)
        if path is not None and not pathlib.Path(path).exists():
            raise ConfigurationError(
                "result store %s does not exist (shard never ran?)" % path)
        records = store.load_completed()
        if not records:
            raise ConfigurationError(
                "result store %s holds no completed runs" % (spec,))
        merged.update(records)
    return merged
