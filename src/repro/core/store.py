"""On-disk resumable result store for campaign sweeps.

A store is a JSONL file: one line per completed run, written append-only
and flushed to disk as each run finishes, so a killed sweep loses at
most the line it was writing. Each record is content-keyed by
:func:`repro.core.configs.run_key`, which hashes the full configuration
plus the repetition index — resuming therefore never trusts file order
or in-memory state, only the keys::

    {"key": "3f2a…", "rep": 0, "config": {...}, "result": {...}}

``load_completed`` tolerates a truncated or corrupt trailing line (the
signature of a mid-write kill) by skipping undecodable lines and
counting them in :attr:`ResultStore.corrupt_lines`.
"""

from __future__ import annotations

import json
import os
import pathlib

from ..errors import ConfigurationError


class ResultStore:
    """Append-only JSONL store of completed campaign runs."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        #: undecodable lines skipped by the last ``load_completed``
        self.corrupt_lines = 0

    def append(self, key: str, config_dict: dict, rep: int,
               result_dict: dict) -> None:
        """Durably record one completed run (flush + fsync per line)."""
        record = {"key": key, "rep": int(rep), "config": config_dict,
                  "result": result_dict}
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load_completed(self) -> dict:
        """``{key: record}`` of every decodable record (last key wins).

        Missing file means an empty store (a sweep that has not started
        yet); corrupt lines are skipped, not fatal, because the one
        expected corruption is the final partially-written line of a
        killed sweep.
        """
        self.corrupt_lines = 0
        records = {}
        if not self.path.exists():
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    record["rep"], record["config"], record["result"]
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                records[key] = record
        return records


def merge_store_paths(paths) -> dict:
    """Union the records of several stores (e.g. one per shard).

    Raises :class:`ConfigurationError` when given no paths, a missing
    path, or a store with zero decodable records — an empty input is
    almost always a sweep that never ran, and silently summarising
    nothing would report std=0.0 distributions that look real.
    """
    paths = [pathlib.Path(p) for p in paths]
    if not paths:
        raise ConfigurationError(
            "store merge needs at least one result-store path")
    merged = {}
    for path in paths:
        if not path.exists():
            raise ConfigurationError(
                "result store %s does not exist (shard never ran?)" % path)
        records = ResultStore(path).load_completed()
        if not records:
            raise ConfigurationError(
                "result store %s holds no completed runs" % path)
        merged.update(records)
    return merged
