"""The three fault-tolerance designs the paper evaluates (§IV).

Each design composes a proxy application with FTI checkpointing and one
MPI recovery framework, mirroring the paper's code structure:

* :class:`RestartFti` — Figure 1: FATAL error handler; on failure the job
  aborts and the launcher redeploys it; FTI restores state.
* :class:`ReinitFti`  — Figure 2: ``OMPI_Reinit(resilient_main)``; the
  runtime rolls every rank back to the restart point on failure.
* :class:`UlfmFti`    — Figure 3: errors returned to the application;
  survivors run revoke/shrink/spawn/merge/agree, then longjmp back to the
  setjmp point (the re-entered main body), recover from FTI and resume.
"""

from __future__ import annotations

from ..apps.base import AppState, ProxyApp
from ..cluster.machine import Cluster
from ..core.breakdown import RunResult, TimeBreakdown
from ..errors import ConfigurationError, JobAbortedError
from ..faults.plans import FaultPlan
from ..fti.api import Fti, FtiStats
from ..fti.metadata import CheckpointRegistry
from ..recovery import (
    RECOVERY_TRIGGERS,
    ReinitRecovery,
    RestartRecovery,
    UlfmRecovery,
)
from ..registry import Registry
from ..simmpi.errhandler import ErrHandler
from ..simmpi.runtime import Runtime

#: safety valve against pathological restart loops
MAX_RELAUNCHES = 8


def _check_design(name, cls):
    if not callable(getattr(cls, "run_job", None)):
        raise ConfigurationError(
            "design %r must provide run_job(app, fti_config, fault_plan, "
            "label=...)" % name)


#: the ``design`` registry: name -> DesignBase subclass. A custom
#: recovery design registers itself the same way the built-ins do:
#: ``@DESIGNS.register("my-design")`` on a class taking a Cluster.
DESIGNS = Registry("design", validate=_check_design)


def _resilient_body(mpi, app: ProxyApp, fti: Fti):
    """The shared main body (Figure 1's loop): init-or-recover, iterate,
    checkpoint every stride. Returns the final AppState."""
    yield from fti.init()
    state = yield from app.make_state(mpi)
    state.protect_with(fti)
    fti.set_nominal_bytes(state.nominal_ckpt_bytes)
    start = 0
    if fti.status() != 0:
        start = (yield from fti.recover()) + 1
        app.rebind(state)
    for i in range(start, app.niters):
        yield from mpi.iteration(i)
        state.iteration.value = i
        yield from app.iterate(mpi, state, i)
        if fti.checkpoint_due(i):
            yield from fti.checkpoint(i)
    yield from fti.finalize()
    return state


class DesignBase:
    """Shared run bookkeeping for the three designs."""

    name = "base"

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    # -- hooks --------------------------------------------------------------
    def build_runtime(self, app, registry, fti_config, fault_plan,
                      fti_stats) -> Runtime:
        raise NotImplementedError

    def recovery_seconds_per_episode(self) -> list:
        """Per-episode recovery durations recorded during the last run."""
        raise NotImplementedError

    # -- driver -----------------------------------------------------------------
    def run_job(self, app: ProxyApp, fti_config, fault_plan: FaultPlan,
                label: str = "") -> RunResult:
        """Execute the job to completion, surviving injected failures."""
        registry = CheckpointRegistry()
        fti_stats = [FtiStats() for _ in range(app.nprocs)]
        total = 0.0
        relaunches = 0
        results = None
        #: timed plans scope events to a job incarnation; iteration plans
        #: have no epoch attribute and ignore all of this
        timed = hasattr(fault_plan, "epoch")
        hook = getattr(fault_plan, "phase_hook", None)
        while True:
            if timed:
                fault_plan.epoch = relaunches
            if hook is not None and hasattr(hook, "epoch"):
                hook.epoch(relaunches)
            runtime = self.build_runtime(app, registry, fti_config,
                                         fault_plan, fti_stats)
            try:
                results = runtime.run()
                total += runtime.makespan()
                break
            except JobAbortedError:
                if not isinstance(self, RestartFti):
                    raise
                total += runtime.abort_time
                redeploy = self.restart.on_abort(app.nprocs)
                if hook is not None:
                    hook.span(-1, "restart.redeploy", total, total + redeploy)
                total += redeploy
                relaunches += 1
                if relaunches > MAX_RELAUNCHES:
                    raise ConfigurationError(
                        "job for %s keeps dying after %d relaunches"
                        % (label, relaunches))
        episodes = self.recovery_seconds_per_episode()
        ckpt_write = sum(s.ckpt_seconds for s in fti_stats) / len(fti_stats)
        ckpt_read = sum(s.recover_seconds for s in fti_stats) / len(fti_stats)
        breakdown = TimeBreakdown(
            total_seconds=total,
            ckpt_write_seconds=ckpt_write,
            recovery_seconds=sum(episodes),
            ckpt_read_seconds=ckpt_read,
        )
        verified = bool(results) and all(
            r["verified"] for r in results.values())
        return RunResult(
            config_label=label,
            breakdown=breakdown,
            verified=verified,
            ckpt_count=max((s.ckpt_count for s in fti_stats), default=0),
            recovery_episodes=len(episodes),
            relaunches=relaunches,
            fault_events=tuple(fault_plan.events),
            details={"runtime_stats": dict(runtime.stats)},
        )


@DESIGNS.register("restart-fti")
class RestartFti(DesignBase):
    """RESTART-FTI: FTI checkpointing + full job restart (Figure 1)."""

    name = "restart-fti"

    def __init__(self, cluster: Cluster):
        super().__init__(cluster)
        self.restart = RestartRecovery(cluster)

    def build_runtime(self, app, registry, fti_config, fault_plan,
                      fti_stats) -> Runtime:
        cluster = self.cluster

        def entry(mpi):
            fti = Fti(mpi, cluster, registry, fti_config,
                      stats=fti_stats[mpi.rank])
            state = yield from _resilient_body(mpi, app, fti)
            return {"verified": app.verify(state), "rank": mpi.rank}

        return Runtime(cluster, app.nprocs, entry, fault_plan=fault_plan,
                       errhandler=ErrHandler.FATAL)

    def recovery_seconds_per_episode(self) -> list:
        episodes = list(self.restart.stats.durations)
        self.restart.reset_stats()
        return episodes


@DESIGNS.register("reinit-fti")
class ReinitFti(DesignBase):
    """REINIT-FTI: FTI checkpointing + Reinit global restart (Figure 2)."""

    name = "reinit-fti"

    def __init__(self, cluster: Cluster):
        super().__init__(cluster)
        self.reinit = ReinitRecovery(cluster)

    def build_runtime(self, app, registry, fti_config, fault_plan,
                      fti_stats) -> Runtime:
        cluster = self.cluster

        def resilient_main(mpi):
            # FTI_Init/Finalize live inside resilient_main (§IV-B)
            fti = Fti(mpi, cluster, registry, fti_config,
                      stats=fti_stats[mpi.rank])
            state = yield from _resilient_body(mpi, app, fti)
            return {"verified": app.verify(state), "rank": mpi.rank}

        runtime = Runtime(cluster, app.nprocs, resilient_main,
                          fault_plan=fault_plan, errhandler=ErrHandler.FATAL)
        self.reinit.install(runtime)
        return runtime

    def recovery_seconds_per_episode(self) -> list:
        episodes = list(self.reinit.stats.durations)
        self.reinit.reset_stats()
        return episodes


@DESIGNS.register("ulfm-fti")
class UlfmFti(DesignBase):
    """ULFM-FTI: FTI checkpointing + ULFM non-shrinking recovery (Fig. 3)."""

    name = "ulfm-fti"

    def __init__(self, cluster: Cluster):
        super().__init__(cluster)
        self.ulfm = UlfmRecovery()

    def build_runtime(self, app, registry, fti_config, fault_plan,
                      fti_stats) -> Runtime:
        cluster = self.cluster
        ulfm = self.ulfm

        def entry(mpi):
            if mpi.is_respawned:
                yield from ulfm.replacement_join(mpi)
            while True:  # setjmp point (Figure 3, line 12)
                try:
                    fti = Fti(mpi, cluster, registry, fti_config,
                              stats=fti_stats[mpi.rank])
                    state = yield from _resilient_body(mpi, app, fti)
                    return {"verified": app.verify(state), "rank": mpi.rank}
                except RECOVERY_TRIGGERS:
                    yield from ulfm.survivor_repair(mpi)
                    # longjmp back to the setjmp point

        return Runtime(cluster, app.nprocs, entry, fault_plan=fault_plan,
                       errhandler=ErrHandler.RETURN,
                       overhead=ulfm.overhead)

    def recovery_seconds_per_episode(self) -> list:
        """One episode per failure: the protocol's critical-path time
        after the last survivor enters repair (see
        :meth:`UlfmRecovery.episode_list`)."""
        episodes = self.ulfm.episode_list()
        self.ulfm.reset_stats()
        self.ulfm.clear_intervals()
        return episodes
