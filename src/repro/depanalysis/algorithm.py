"""Algorithm 1: find data objects for checkpointing (paper §III-A).

The three principles:

1. checkpointable objects are *defined before* the main computation loop
   (objects local to the loop body are excluded);
2. they are *used* (read or written) across iterations of the loop;
3. their *values vary* across iterations.

The implementation follows the paper's pseudo-code exactly: filter
in-loop locations by value variation, remove repetitions from both sets,
then intersect in-loop locations with before-loop allocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .trace import InstructionTrace


@dataclass
class CheckpointObject:
    """One detected data object, with the evidence behind its selection."""

    location: str
    source_line: int
    distinct_values: int
    iterations_used: int


@dataclass
class AnalysisResult:
    """Output of Algorithm 1 plus per-location diagnostics."""

    cpk_locs: list = field(default_factory=list)
    #: in-loop locations rejected because their value never varies
    constant_locs: list = field(default_factory=list)
    #: in-loop locations rejected because they are loop-local
    loop_local_locs: list = field(default_factory=list)

    @property
    def locations(self) -> list:
        return [obj.location for obj in self.cpk_locs]


def values_vary(values: list) -> bool:
    """Principle 3: the invocation values must not all be the same.

    Mirrors the paper's check "the invocation values of l are not the
    same". Arrays compare by content; a single observation counts as
    non-varying (nothing changed across iterations).
    """
    if len(values) < 2:
        return False
    first = values[0]
    for value in values[1:]:
        if not _equal(first, value):
            return True
    return False


def _equal(a, b) -> bool:
    try:
        import numpy as np

        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return bool(np.array_equal(a, b))
    except ImportError:  # pragma: no cover - numpy is a hard dep anyway
        pass
    return a == b


def find_checkpoint_objects(trace: InstructionTrace) -> AnalysisResult:
    """Run Algorithm 1 on a dynamic trace."""
    locs_in_loop = trace.locations_in_loop()
    locs_before_loop = trace.locations_before_loop()

    # Step 1: check values of locations in Locs_in_loop (principle 3)
    varying, constant = [], []
    for location in locs_in_loop:
        if values_vary(trace.invocation_values(location)):
            varying.append(location)
        else:
            constant.append(location)

    # Step 2: remove repetition in both sets (order-preserving)
    varying = list(dict.fromkeys(varying))
    constant = list(dict.fromkeys(constant))
    before = list(dict.fromkeys(locs_before_loop))
    before_set = set(before)

    # Step 3: match in-loop locations against before-loop allocations
    # (principles 1 + 2)
    result = AnalysisResult()
    for location in varying:
        if location in before_set:
            result.cpk_locs.append(CheckpointObject(
                location=location,
                source_line=trace.line_of(location) or -1,
                distinct_values=_distinct_count(
                    trace.invocation_values(location)),
                iterations_used=len(trace.iterations_touching(location)),
            ))
        else:
            result.loop_local_locs.append(location)
    # hoisted: building set(result.locations) per element made this
    # O(n^2) in the number of constant locations
    selected = set(result.locations)
    result.constant_locs = [loc for loc in constant
                            if loc not in selected]
    return result


def _distinct_count(values: list) -> int:
    distinct: list = []
    for value in values:
        if not any(_equal(value, seen) for seen in distinct):
            distinct.append(value)
    return len(distinct)
