"""Data-dependency analysis for checkpoint-object detection (paper §III)."""

from .algorithm import (
    AnalysisResult,
    CheckpointObject,
    find_checkpoint_objects,
    values_vary,
)
from .autoprotect import (
    ProtectionPlan,
    apply_protection,
    build_protection_plan,
)
from .report import format_report
from .trace import InstructionTrace, TraceOp, TraceRecord
from .tracer import (
    REFERENCE_PROGRAMS,
    Tracer,
    traced_cg_loop,
    traced_md_loop,
    traced_stencil_loop,
)

__all__ = [
    "AnalysisResult",
    "CheckpointObject",
    "InstructionTrace",
    "ProtectionPlan",
    "REFERENCE_PROGRAMS",
    "apply_protection",
    "build_protection_plan",
    "TraceOp",
    "TraceRecord",
    "Tracer",
    "find_checkpoint_objects",
    "format_report",
    "traced_cg_loop",
    "traced_md_loop",
    "traced_stencil_loop",
    "values_vary",
]
