"""Generate dynamic traces from instrumented Python computations.

The paper uses LLVM-Tracer on the compiled proxy apps; the Python
equivalent is a :class:`Tracer` whose tracked variables record their
allocations, loads and stores into an :class:`InstructionTrace`. The
``traced_*`` reference programs instrument miniature versions of the
proxy-app main loops, giving the analysis realistic inputs with known
ground truth.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np

from .trace import InstructionTrace


def _caller_line() -> int:
    frame = inspect.currentframe()
    try:
        # two frames up: past this helper and the Tracer method
        return frame.f_back.f_back.f_lineno
    finally:
        del frame


class Tracer:
    """Records allocations/loads/stores of named program variables."""

    def __init__(self):
        self.trace = InstructionTrace()
        self._iteration = -1

    # -- phase control -------------------------------------------------------
    def enter_loop_iteration(self, i: int) -> None:
        self._iteration = i

    def exit_loop(self) -> None:
        self._iteration = -(10 ** 9)  # post-loop records are ignored anyway

    # -- instrumentation points ------------------------------------------------
    def alloc(self, name: str, value: Any = None) -> Any:
        self.trace.alloc(name, _caller_line())
        if value is not None:
            self.trace.store(name, _snapshot(value), _caller_line(), -1)
        return value

    def load(self, name: str, value: Any) -> Any:
        self.trace.load(name, _snapshot(value), _caller_line(),
                        self._iteration)
        return value

    def store(self, name: str, value: Any) -> Any:
        self.trace.store(name, _snapshot(value), _caller_line(),
                         self._iteration)
        return value


def _snapshot(value: Any) -> Any:
    """Deep-enough copy so later mutation doesn't rewrite trace history."""
    if isinstance(value, np.ndarray):
        return value.copy()
    return value


# --------------------------------------------------------------------- #
# instrumented reference programs with known checkpoint ground truth    #
# --------------------------------------------------------------------- #

def traced_cg_loop(niters: int = 6, n: int = 16) -> tuple:
    """A miniature CG main loop, instrumented.

    Ground truth: ``x``, ``r``, ``p`` and ``rho`` are checkpoint objects
    (defined before the loop, used and varying across iterations);
    ``A_diag`` and ``b`` are used but constant; ``q`` and ``alpha`` are
    loop-local.
    """
    tracer = Tracer()
    rng = np.random.default_rng(7)
    # SPD operator: dominant varying diagonal plus a weak cyclic coupling,
    # so CG needs many iterations (a pure diagonal converges in one step)
    A_diag = tracer.alloc("A_diag", 4.0 + rng.random(n))
    b = tracer.alloc("b", rng.random(n))
    x = tracer.alloc("x", np.zeros(n))
    r = tracer.alloc("r", b.copy())
    p = tracer.alloc("p", b.copy())
    rho = tracer.alloc("rho", float(r @ r))

    def op(vec):
        return A_diag * vec + 0.25 * (np.roll(vec, 1) + np.roll(vec, -1))

    for i in range(niters):
        tracer.enter_loop_iteration(i)
        q = tracer.store("q", op(tracer.load("p", p)))
        alpha = tracer.store("alpha",
                             tracer.load("rho", rho) / float(p @ q))
        x = tracer.store("x", tracer.load("x", x) + alpha * p)
        r = tracer.store("r", tracer.load("r", r) - alpha * q)
        tracer.load("b", b)
        tracer.load("A_diag", A_diag)
        new_rho = float(r @ r)
        beta = new_rho / rho
        rho = tracer.store("rho", new_rho)
        p = tracer.store("p", r + beta * p)
    tracer.exit_loop()
    expected = {"x", "r", "p", "rho"}
    return tracer.trace, expected


def traced_md_loop(niters: int = 5, natoms: int = 12) -> tuple:
    """A miniature MD loop: positions/velocities checkpointable, masses
    constant, per-step forces loop-local."""
    tracer = Tracer()
    rng = np.random.default_rng(13)
    masses = tracer.alloc("masses", np.ones((natoms, 1)))
    pos = tracer.alloc("pos", rng.random((natoms, 3)))
    vel = tracer.alloc("vel", rng.normal(size=(natoms, 3)))
    dt = tracer.alloc("dt", 0.01)
    for i in range(niters):
        tracer.enter_loop_iteration(i)
        forces = tracer.store("forces", -0.1 * tracer.load("pos", pos))
        vel = tracer.store(
            "vel", tracer.load("vel", vel)
            + tracer.load("dt", dt) * forces / tracer.load("masses", masses))
        pos = tracer.store("pos", pos + dt * vel)
    tracer.exit_loop()
    expected = {"pos", "vel"}
    return tracer.trace, expected


def traced_stencil_loop(niters: int = 5, n: int = 20) -> tuple:
    """A Jacobi-style stencil loop: the grid is checkpointable, the rhs
    constant, scratch buffers loop-local."""
    tracer = Tracer()
    rng = np.random.default_rng(3)
    grid = tracer.alloc("grid", np.zeros(n))
    rhs = tracer.alloc("rhs", rng.random(n))
    for i in range(niters):
        tracer.enter_loop_iteration(i)
        scratch = tracer.store(
            "scratch",
            0.5 * (np.roll(tracer.load("grid", grid), 1)
                   + np.roll(grid, -1)) + 0.25 * tracer.load("rhs", rhs))
        grid = tracer.store("grid", scratch)
    tracer.exit_loop()
    expected = {"grid"}
    return tracer.trace, expected


REFERENCE_PROGRAMS = {
    "cg": traced_cg_loop,
    "md": traced_md_loop,
    "stencil": traced_stencil_loop,
}
