"""Human-readable reporting for the dependency-analysis tool (§V-E)."""

from __future__ import annotations

from .algorithm import AnalysisResult


def format_report(result: AnalysisResult, program: str = "program") -> str:
    """Render the tool's output the way a programmer would consume it."""
    lines = ["Checkpoint-object analysis for %s" % program,
             "=" * (31 + len(program))]
    if result.cpk_locs:
        lines.append("Data objects to checkpoint (CPK_Locs):")
        for obj in result.cpk_locs:
            lines.append(
                "  %-12s line %-4d  %d distinct values over %d iterations"
                % (obj.location, obj.source_line, obj.distinct_values,
                   obj.iterations_used))
    else:
        lines.append("No checkpoint objects detected.")
    if result.constant_locs:
        lines.append("Excluded (constant across iterations): %s"
                     % ", ".join(result.constant_locs))
    if result.loop_local_locs:
        lines.append("Excluded (defined inside the loop): %s"
                     % ", ".join(result.loop_local_locs))
    return "\n".join(lines)
