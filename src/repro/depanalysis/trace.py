"""Dynamic instruction-trace format (LLVM-Tracer style, §III-A).

The paper's analysis consumes a dynamic execution trace with, per
operation: the register name or memory location, the operator, the value
and the source line. :class:`TraceRecord` carries exactly those fields;
:class:`InstructionTrace` is an ordered container with the accessors
Algorithm 1 needs (locations allocated before the main loop, locations
used inside it, and per-location value histories across iterations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ConfigurationError


class TraceOp(enum.Enum):
    """Operation kinds recorded in the trace."""

    ALLOC = "alloc"
    LOAD = "load"
    STORE = "store"


@dataclass(frozen=True)
class TraceRecord:
    """One dynamic operation."""

    op: TraceOp
    #: register name or memory location identifier (e.g. "x", "A[12]")
    location: str
    #: line number in the source where the operation executes
    line: int
    #: value observed/produced (None for pure allocations)
    value: Any = None
    #: main-loop iteration index; -1 = before the loop started
    iteration: int = -1


class InstructionTrace:
    """An ordered dynamic trace plus the index structures Algorithm 1 uses."""

    def __init__(self):
        self.records: list = []
        self._loop_started = False

    # -- construction -------------------------------------------------------
    def append(self, record: TraceRecord) -> None:
        if record.iteration >= 0:
            self._loop_started = True
        elif self._loop_started:
            raise ConfigurationError(
                "trace records before the loop must precede loop records")
        self.records.append(record)

    def alloc(self, location: str, line: int) -> None:
        self.append(TraceRecord(TraceOp.ALLOC, location, line))

    def store(self, location: str, value, line: int,
              iteration: int = -1) -> None:
        self.append(TraceRecord(TraceOp.STORE, location, line, value,
                                iteration))

    def load(self, location: str, value, line: int,
             iteration: int = -1) -> None:
        self.append(TraceRecord(TraceOp.LOAD, location, line, value,
                                iteration))

    # -- Algorithm 1 inputs --------------------------------------------------
    def locations_before_loop(self) -> list:
        """Locations defined or allocated before the main loop (may repeat,
        as in the raw trace; the algorithm removes repetitions)."""
        return [r.location for r in self.records
                if r.iteration < 0 and r.op in (TraceOp.ALLOC, TraceOp.STORE)]

    def locations_in_loop(self) -> list:
        """Locations used (read or written) inside the main loop."""
        return [r.location for r in self.records if r.iteration >= 0
                and r.op in (TraceOp.LOAD, TraceOp.STORE)]

    def invocation_values(self, location: str) -> list:
        """Values this location held at each in-loop touch, in order."""
        return [r.value for r in self.records
                if r.location == location and r.iteration >= 0
                and r.value is not None]

    def iterations_touching(self, location: str) -> set:
        return {r.iteration for r in self.records
                if r.location == location and r.iteration >= 0}

    def line_of(self, location: str) -> Optional[int]:
        for r in self.records:
            if r.location == location:
                return r.line
        return None

    def __len__(self):
        return len(self.records)
