"""SCR-style checkpointing interface (the paper's §V-E extension).

The paper proposes swapping FTI for SCR (the Scalable Checkpoint/Restart
library, Mohror et al., TPDS 2014) as future work. SCR's programming
model differs from FTI's in two ways this module reproduces:

* **file-oriented flow** — the application *writes its own checkpoint
  files*; SCR only routes paths and manages redundancy. The cycle is
  ``need_checkpoint -> start_checkpoint -> route_file -> write ->
  complete_checkpoint`` rather than FTI's protect/checkpoint of
  registered buffers.
* **output-complete semantics** — a checkpoint becomes valid only at
  ``complete_checkpoint(valid=True)``; an exception between start and
  complete leaves the previous generation as the restart point.

Redundancy reuses the same storage substrate as FTI: SINGLE (node-local),
PARTNER (ring-neighbour copy) and XOR (RAID-5-like parity across a set,
implemented with the Reed-Solomon coder at m=1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import (
    CheckpointError,
    ConfigurationError,
    InsufficientRedundancyError,
    NoCheckpointError,
)
from ..fti.metadata import CheckpointRegistry, RankEntry
from ..fti.rs_encoding import pad_to_equal_length, rs_code
from ..simmpi import ops


class ScrRedundancy(enum.Enum):
    """SCR redundancy schemes."""

    SINGLE = "single"
    PARTNER = "partner"
    XOR = "xor"


@dataclass(frozen=True)
class ScrConfig:
    """SCR policy knobs."""

    scheme: ScrRedundancy = ScrRedundancy.SINGLE
    #: checkpoint every N iterations (SCR_CHECKPOINT_INTERVAL)
    interval: int = 10
    #: XOR set size (SCR_SET_SIZE)
    set_size: int = 4
    keep_last: int = 1

    def __post_init__(self):
        if self.interval < 1:
            raise ConfigurationError("interval must be >= 1")
        if self.set_size < 2:
            raise ConfigurationError("XOR set size must be >= 2")


class Scr:
    """One rank's SCR instance."""

    def __init__(self, mpi, cluster, registry: CheckpointRegistry,
                 config: ScrConfig | None = None):
        self.mpi = mpi
        self.cluster = cluster
        self.registry = registry
        self.config = config or ScrConfig()
        self.rank = mpi.rank
        self.nprocs = mpi.size
        self.node_id = cluster.node_of(mpi.rank)
        self._initialized = False
        self._open_record = None
        self._have_restart = False
        self.set_comm = self._build_set_comm()

    def _build_set_comm(self):
        size = self.config.set_size
        start = (self.rank // size) * size
        members = list(range(start, min(start + size, self.nprocs)))
        if len(members) < 2:
            members = list(range(max(0, self.nprocs - size), self.nprocs))
            start = members[0]
        return self.mpi.cached_comm(members, "scr.set%d" % start)

    # -- lifecycle ---------------------------------------------------------
    def init(self):
        """``SCR_Init``: detect whether a restart generation exists."""
        has = self.registry.has_checkpoint()
        agreed = yield from self.mpi.bcast(1 if has else 0, root=0, nbytes=8)
        self._have_restart = bool(agreed)
        self._initialized = True

    def finalize(self):
        """``SCR_Finalize``."""
        self._require_init()
        yield from self.mpi.barrier()
        self._initialized = False

    def have_restart(self) -> bool:
        """``SCR_Have_restart``: is there a generation to read?"""
        self._require_init()
        return self._have_restart

    def need_checkpoint(self, iteration: int) -> bool:
        """``SCR_Need_checkpoint``: interval policy."""
        self._require_init()
        return iteration > 0 and iteration % self.config.interval == 0

    # -- writing -----------------------------------------------------------
    def start_checkpoint(self, iteration: int):
        """``SCR_Start_checkpoint``: open a new generation."""
        self._require_init()
        if self._open_record is not None:
            raise CheckpointError("previous checkpoint was never completed")
        self._open_record = self.registry.open_checkpoint(
            iteration, level=self._level_tag(), nprocs=self.nprocs)
        yield from self.mpi.barrier()

    def route_file(self, name: str) -> str:
        """``SCR_Route_file``: where this rank should write ``name``."""
        self._require_record()
        return "scr/ckpt%06d/rank%05d/%s" % (
            self._open_record.ckpt_id, self.rank, name)

    def write_file(self, path: str, data: bytes):
        """Write one checkpoint file to the routed node-local path."""
        self._require_record()
        store = self.cluster.ramfs_of(self.rank)
        yield from self.mpi.store_write(store, path, data)
        entry = RankEntry(rank=self.rank, node_id=self.node_id, path=path,
                          nbytes=len(data),
                          crc32=CheckpointRegistry.checksum(data))
        yield from self._apply_redundancy(entry, data)
        self._open_record.commit_rank(entry)

    def _apply_redundancy(self, entry: RankEntry, data: bytes):
        scheme = self.config.scheme
        if scheme is ScrRedundancy.SINGLE:
            return
        if scheme is ScrRedundancy.PARTNER:
            partner = self.cluster.partner_node(self.node_id)
            partner_store = self.cluster.node_storage[partner].ramfs
            transfer = self.cluster.network.ptp_time(len(data),
                                                     intra_node=False)
            yield from self.mpi.sleep(transfer)
            yield from self.mpi.store_write(partner_store,
                                            entry.path + ".partner", data)
            entry.partner_node = partner
            entry.partner_path = entry.path + ".partner"
            return
        # XOR: one parity shard per set (RS with m=1), stored round-robin
        blobs = yield from self.mpi.allgather(data, comm=self.set_comm,
                                              nbytes=len(data))
        padded, _ = pad_to_equal_length(blobs)
        k = self.set_comm.size
        yield from self.mpi.compute(bytes_moved=2.0 * k * len(padded[0]))
        code = rs_code(k, 1)
        parity = code.encode(padded)[0]
        my_index = self.set_comm.rank_of(self.rank)
        parity_holder = self._open_record.iteration % k
        if my_index == parity_holder:
            store = self.cluster.ramfs_of(self.rank)
            yield from self.mpi.store_write(store, entry.path + ".xor",
                                            parity)
        entry.parity_path = entry.path + ".xor" \
            if my_index == parity_holder else None
        entry.group_index = my_index
        entry.group_ranks = tuple(self.set_comm.world_ranks)
        entry.padded_len = len(padded[0])

    def complete_checkpoint(self, valid: bool = True):
        """``SCR_Complete_checkpoint``: global commit or discard."""
        self._require_record()
        flag = yield from self.mpi.allreduce(1 if valid else 0, op=ops.MIN,
                                             nbytes=8)
        record, self._open_record = self._open_record, None
        if not flag:
            self.registry.discard(record.ckpt_id)
            return False
        if record.complete:
            for victim in self.registry.garbage_collect(self.config.keep_last):
                self._delete_generation(victim)
        self._have_restart = True
        return True

    def _delete_generation(self, record) -> None:
        entry = record.entries.get(self.rank)
        if entry is None:
            return
        store = self.cluster.node_storage[entry.node_id].ramfs
        store.delete(entry.path)
        if entry.partner_path and entry.partner_node is not None:
            self.cluster.node_storage[entry.partner_node].ramfs.delete(
                entry.partner_path)
        if entry.parity_path:
            store.delete(entry.parity_path)

    # -- reading ---------------------------------------------------------------
    def start_restart(self):
        """``SCR_Start_restart``: returns the generation's iteration."""
        self._require_init()
        record = self.registry.latest_complete()
        if record is None:
            raise NoCheckpointError("SCR has no restart generation")
        yield from self.mpi.barrier()
        return record.iteration

    def read_file(self, name: str):
        """Fetch this rank's file, using redundancy if the local copy died."""
        self._require_init()
        record = self.registry.latest_complete()
        if record is None:
            raise NoCheckpointError("SCR has no restart generation")
        entry = record.entry(self.rank)
        store = self.cluster.node_storage[entry.node_id].ramfs
        if store.exists(entry.path):
            data = yield from self.mpi.store_read(store, entry.path)
            if CheckpointRegistry.checksum(data) == entry.crc32:
                return data
        data = yield from self._rebuild(record, entry)
        return data

    def _rebuild(self, record, entry: RankEntry):
        scheme = self.config.scheme
        if scheme is ScrRedundancy.PARTNER and entry.partner_path:
            partner_store = self.cluster.node_storage[
                entry.partner_node].ramfs
            if partner_store.exists(entry.partner_path):
                transfer = self.cluster.network.ptp_time(
                    entry.nbytes, intra_node=False)
                yield from self.mpi.sleep(transfer)
                data = yield from self.mpi.store_read(partner_store,
                                                      entry.partner_path)
                return data
            raise InsufficientRedundancyError(
                "SCR PARTNER lost both copies of rank %d" % self.rank)
        if scheme is ScrRedundancy.XOR:
            data = yield from self._rebuild_xor(record, entry)
            return data
        raise NoCheckpointError(
            "SCR SINGLE checkpoint of rank %d is gone" % self.rank)

    def _rebuild_xor(self, record, entry: RankEntry):
        group = entry.group_ranks
        k = len(group)
        shards: dict = {}
        parity = None
        for member in group:
            m_entry = record.entry(member)
            m_store = self.cluster.node_storage[m_entry.node_id].ramfs
            if m_store.exists(m_entry.path):
                raw, _ = m_store.read(m_entry.path)
                padded, _ = pad_to_equal_length([raw])
                shard = padded[0][:entry.padded_len]
                shard += b"\x00" * (entry.padded_len - len(shard))
                shards[m_entry.group_index] = shard
            if m_entry.parity_path and m_store.exists(m_entry.parity_path):
                raw, _ = m_store.read(m_entry.parity_path)
                parity = raw
        if parity is not None:
            shards[k] = parity
        if len(shards) < k:
            raise InsufficientRedundancyError(
                "SCR XOR set of rank %d lost more than one member"
                % self.rank)
        yield from self.mpi.compute(bytes_moved=2.0 * k * entry.padded_len)
        code = rs_code(k, 1)
        data = code.decode(shards, entry.padded_len)
        from ..fti.levels import _strip_pad

        return _strip_pad(data[entry.group_index])

    # -- helpers --------------------------------------------------------------------
    def _level_tag(self) -> int:
        return {ScrRedundancy.SINGLE: 1, ScrRedundancy.PARTNER: 2,
                ScrRedundancy.XOR: 3}[self.config.scheme]

    def _require_init(self) -> None:
        if not self._initialized:
            raise CheckpointError("SCR_Init was not called")

    def _require_record(self) -> None:
        self._require_init()
        if self._open_record is None:
            raise CheckpointError("no checkpoint is open: call "
                                  "start_checkpoint first")
