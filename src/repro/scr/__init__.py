"""SCR-style checkpoint/restart interface (paper §V-E extension)."""

from .api import Scr, ScrConfig, ScrRedundancy

__all__ = ["Scr", "ScrConfig", "ScrRedundancy"]
