"""Vectorized evaluation of the analytic models: arrays in, arrays out.

The scalar model stack (:mod:`~repro.modeling.costs` →
:mod:`~repro.modeling.interval` → :mod:`~repro.modeling.makespan`)
answers one (design, level, interval, MTBF) cell per call; a serving
layer fronting batches of thousands of queries cannot afford a Python
round-trip per cell. This module re-states the same closed forms over
numpy arrays, evaluating whole (query × cell) grids at once.

**Bit-identity contract.** Every function here reproduces its scalar
counterpart's arithmetic *operation for operation, in the same order* —
IEEE-754 double ops are deterministic, so equal inputs through equal
operation sequences produce equal bits. The equivalence tests
(``tests/service/test_vector.py``, ``tests/modeling/test_vector.py``)
pin exact ``==`` equality against the scalar path over the full
app × design × level grid; any edit here or in the scalar modules must
keep the two in lockstep or those tests fail.

The split of labour mirrors the scalar advisor: per-*cell* constants
(iteration time, checkpoint write/read cost, repair cost — functions of
the app, design, level and scale, but not of the MTBF) are priced once
through the scalar model protocol into a :class:`CellGrid`; the
per-*query* work (Daly interval, stride, expected failures, makespan
composition) is pure numpy over that grid. Cost models remain ordinary
scalar Python objects — plugins need no numpy awareness.

One caveat for custom models: the scalar path prices the recovery read
with the cell's *resolved* stride in its
:class:`~repro.fti.config.FtiConfig`, while the grid prices it once per
(design, level). The built-in ``analytic`` and calibrated models read
the level only, so the two agree bit-for-bit; a custom model whose
``ckpt_read_seconds`` depends on ``ckpt_stride`` should use the scalar
advisor instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .costs import resolve_model
from ..apps import APP_REGISTRY
from ..core.configs import DESIGN_NAMES, NNODES
from ..errors import ConfigurationError
from ..fti.config import VALID_LEVELS, FtiConfig


def _as_float_array(value) -> np.ndarray:
    return np.asarray(value, dtype=np.float64)


def _check_cm_arrays(ckpt: np.ndarray, mtbf: np.ndarray) -> None:
    # mirrors interval._check_cm; ~(x > 0) also catches NaN
    if np.any(ckpt < 0):
        raise ConfigurationError("checkpoint cost must be >= 0")
    if np.any(~(mtbf > 0)):
        raise ConfigurationError("MTBF must be positive")


def young_interval_array(ckpt_seconds, mtbf_seconds) -> np.ndarray:
    """Elementwise :func:`~repro.modeling.interval.young_interval` over
    broadcastable arrays (bit-identical)."""
    ckpt = _as_float_array(ckpt_seconds)
    mtbf = _as_float_array(mtbf_seconds)
    _check_cm_arrays(ckpt, mtbf)
    with np.errstate(invalid="ignore", over="ignore"):
        tau = np.sqrt(2.0 * ckpt * mtbf)
        return np.where(np.isinf(mtbf), np.inf, tau)


def daly_interval_array(ckpt_seconds, mtbf_seconds) -> np.ndarray:
    """Elementwise :func:`~repro.modeling.interval.daly_interval` over
    broadcastable arrays (bit-identical, including the thrash cap and
    the infinite-MTBF short-circuit)."""
    ckpt = _as_float_array(ckpt_seconds)
    mtbf = _as_float_array(mtbf_seconds)
    _check_cm_arrays(ckpt, mtbf)
    with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
        # the exact scalar expression: sqrt((2.0*C)*M) * (1.0 +
        # sqrt(C/(2.0*M))/3.0 + (C/(2.0*M))/9.0) - C
        ratio = ckpt / (2.0 * mtbf)
        tau = (np.sqrt(2.0 * ckpt * mtbf)
               * (1.0 + np.sqrt(ratio) / 3.0 + ratio / 9.0)
               - ckpt)
        tau = np.where(ckpt >= 2.0 * mtbf, mtbf, tau)
        return np.where(np.isinf(mtbf), np.inf, tau)


_INTERVAL_ORDERS = {"young": young_interval_array,
                    "daly": daly_interval_array}


def optimal_stride_array(ckpt_seconds, mtbf_seconds, iter_seconds,
                         niters: int, order: str = "daly") -> np.ndarray:
    """Elementwise :func:`~repro.modeling.interval.optimal_stride`:
    the integer iteration stride, clamped to ``[1, niters]``."""
    if niters < 2:
        raise ConfigurationError("need at least two iterations")
    iter_arr = _as_float_array(iter_seconds)
    if np.any(iter_arr <= 0):
        raise ConfigurationError("iteration time must be positive")
    try:
        interval = _INTERVAL_ORDERS[order]
    except KeyError:
        raise ConfigurationError(
            "interval order must be 'young' or 'daly' (got %r)"
            % (order,)) from None
    tau = interval(ckpt_seconds, mtbf_seconds)
    with np.errstate(invalid="ignore"):
        # round-half-even == Python round(); an infinite tau survives
        # rint and is clamped to niters, exactly the scalar
        # short-circuit
        stride = np.rint(tau / iter_arr)
    stride = np.minimum(float(niters), stride)
    stride = np.maximum(1.0, stride)
    return stride.astype(np.int64)


@dataclass(frozen=True, eq=False)
class CellGrid:
    """Scalar-priced constants for every (design × level) cell of one
    workload — the MTBF-independent half of an advisor query.

    Built once per (app, nprocs, input, nnodes, designs, levels, model)
    signature (the grid cache memoizes exactly this), then shared by
    every query against that workload. Cell order is the scalar
    advisor's: designs outer, levels inner.
    """

    app: str
    nprocs: int
    input_size: str
    nnodes: int
    niters: int
    designs: tuple
    levels: tuple
    #: per-cell arrays, all shaped (len(designs) * len(levels),)
    iter_seconds: np.ndarray
    ckpt_seconds: np.ndarray
    read_seconds: np.ndarray
    repair_seconds: np.ndarray
    work_seconds: np.ndarray

    @property
    def ncells(self) -> int:
        return len(self.designs) * len(self.levels)

    def cell(self, index: int) -> tuple:
        """The (design, level) pair at a flat cell index."""
        return (self.designs[index // len(self.levels)],
                self.levels[index % len(self.levels)])


def build_cell_grid(app: str, nprocs: int, *, input_size: str = "small",
                    nnodes: int = NNODES, designs=DESIGN_NAMES,
                    levels=VALID_LEVELS, model="analytic") -> CellGrid:
    """Price one workload's (design × level) grid through the scalar
    model — the same calls, in the same order, as
    :func:`repro.modeling.advisor.advise` makes per query."""
    model = resolve_model(model)
    designs = tuple(designs)
    levels = tuple(int(level) for level in levels)
    if not designs or not levels:
        raise ConfigurationError("advice grid needs designs and levels")
    app_obj = APP_REGISTRY.resolve(app).from_input(nprocs, input_size)
    nbytes = app_obj.nominal_ckpt_bytes()
    iter_list, ckpt_list, read_list, repair_list, work_list = \
        [], [], [], [], []
    for design in designs:
        iter_seconds = model.iteration_seconds(app_obj, design, nprocs,
                                               nnodes)
        repair = model.recovery_seconds(design, nprocs, nnodes)
        for level in levels:
            fti = FtiConfig(level=level)
            iter_list.append(iter_seconds)
            ckpt_list.append(model.ckpt_write_seconds(
                fti, nbytes, nprocs, nnodes, design=design))
            read_list.append(model.ckpt_read_seconds(
                fti, nbytes, nprocs, nnodes, design=design))
            repair_list.append(repair)
            # predict_cell's W: Python int * float, computed here so the
            # array holds the scalar path's exact product
            work_list.append(app_obj.niters * iter_seconds)
    return CellGrid(
        app=app_obj.name, nprocs=nprocs, input_size=input_size,
        nnodes=nnodes, niters=app_obj.niters, designs=designs,
        levels=levels,
        iter_seconds=np.array(iter_list, dtype=np.float64),
        ckpt_seconds=np.array(ckpt_list, dtype=np.float64),
        read_seconds=np.array(read_list, dtype=np.float64),
        repair_seconds=np.array(repair_list, dtype=np.float64),
        work_seconds=np.array(work_list, dtype=np.float64))


@dataclass(frozen=True, eq=False)
class GridPredictions:
    """Every (query × cell) prediction component, as ``(Q, ncells)``
    arrays — the vectorized image of ``ncells`` scalar
    :class:`~repro.modeling.makespan.MakespanPrediction` calls per
    query."""

    grid: CellGrid
    stride: np.ndarray
    n_ckpt: np.ndarray
    expected_failures: np.ndarray
    ckpt_total: np.ndarray
    recovery_total: np.ndarray
    rework_total: np.ndarray
    total: np.ndarray
    efficiency: np.ndarray


def evaluate_grid(grid: CellGrid, mtbf_seconds) -> GridPredictions:
    """Evaluate a workload grid against a vector of query MTBFs.

    Per (query, cell): the Daly-optimal stride for the cell's own
    checkpoint cost, then the expected-makespan composition of
    :func:`repro.modeling.makespan.predict_cell` — bit-identical to the
    scalar advisor's pricing of the same cell.
    """
    mtbf = _as_float_array(mtbf_seconds).reshape(-1, 1)       # (Q, 1)
    if np.any(~(mtbf > 0)):
        raise ConfigurationError("MTBF must be positive")
    stride = optimal_stride_array(grid.ckpt_seconds, mtbf,
                                  grid.iter_seconds, grid.niters)
    n_ckpt = (grid.niters - 1) // stride
    # work / inf == +0.0, the scalar path's explicit zero
    expected_failures = grid.work_seconds / mtbf
    failing = expected_failures > 0.0
    repair = np.where(failing, grid.repair_seconds, 0.0)
    read = np.where(failing, grid.read_seconds, 0.0)
    # stride is already clamped to <= niters, so 0.5 * min(stride,
    # niters) == 0.5 * stride, an exact float product
    lost_iters = 0.5 * stride
    rework_per_failure = lost_iters * grid.iter_seconds + read
    recovery_total = expected_failures * repair
    rework_total = expected_failures * rework_per_failure
    ckpt_total = n_ckpt * grid.ckpt_seconds
    total = (grid.work_seconds + ckpt_total + recovery_total
             + rework_total)
    with np.errstate(invalid="ignore"):
        efficiency = grid.work_seconds / total
    return GridPredictions(
        grid=grid, stride=stride, n_ckpt=n_ckpt,
        expected_failures=expected_failures, ckpt_total=ckpt_total,
        recovery_total=recovery_total, rework_total=rework_total,
        total=total, efficiency=efficiency)


def top_cell_indexes(predictions: GridPredictions,
                     objective: str = "makespan") -> np.ndarray:
    """Per query, the flat cell index the scalar advisor would rank
    first — the first occurrence of the minimal sort key, matching the
    stable ``list.sort`` over :func:`~repro.modeling.advisor._rank_key`.
    """
    if objective == "makespan":
        return np.argmin(predictions.total, axis=1)
    if objective == "efficiency":
        return np.argmin(-predictions.efficiency, axis=1)
    if objective == "recovery":
        # lexicographic (recovery, makespan): among the cells tied on
        # minimal recovery seconds, the first with minimal makespan
        recovery = predictions.recovery_total
        least = recovery.min(axis=1, keepdims=True)
        tied_totals = np.where(recovery == least, predictions.total,
                               np.inf)
        return np.argmin(tied_totals, axis=1)
    raise ConfigurationError(
        "unknown objective %r (have ('makespan', 'efficiency', "
        "'recovery'))" % (objective,))


def predict_configs(configs, model="analytic") -> list:
    """Vectorized ``[predict(c) for c in configs]`` — bit-identical.

    Model pricing (the Python-protocol calls) is memoized across the
    batch: a campaign matrix re-uses each distinct (app, design, scale)
    iteration price and each distinct checkpoint spec price instead of
    re-deriving them per cell, and the makespan composition runs once
    over numpy arrays. Backs :meth:`repro.api.Campaign.predict_many`.
    """
    from .makespan import MakespanPrediction

    configs = list(configs)
    if not configs:
        return []
    model = resolve_model(model)
    iter_memo, ckpt_memo, read_memo, repair_memo = {}, {}, {}, {}
    names, levels, iter_list, work_list, ckpt_list = [], [], [], [], []
    read_list, repair_list, stride_list, niters_list, ef_list = \
        [], [], [], [], []
    for config in configs:
        app_obj = config.make_app()
        niters = app_obj.niters
        stride = min(config.fti.ckpt_stride, niters)
        if not 1 <= stride:
            raise ConfigurationError(
                "stride must be >= 1 for %s (got %r)"
                % (config.app, stride))
        iter_key = (config.app, config.input_size, config.nprocs,
                    config.nnodes, config.design)
        iter_seconds = iter_memo.get(iter_key)
        if iter_seconds is None:
            iter_seconds = model.iteration_seconds(
                app_obj, config.design, config.nprocs, config.nnodes)
            iter_memo[iter_key] = iter_seconds
        fti = FtiConfig(level=config.fti.level, ckpt_stride=stride)
        nbytes = app_obj.nominal_ckpt_bytes()
        cost_key = (fti, nbytes, config.nprocs, config.nnodes,
                    config.design)
        ckpt_cost = ckpt_memo.get(cost_key)
        if ckpt_cost is None:
            ckpt_cost = model.ckpt_write_seconds(
                fti, nbytes, config.nprocs, config.nnodes,
                design=config.design)
            ckpt_memo[cost_key] = ckpt_cost
        expected = config.faults.expected_events(niters) \
            if config.inject_fault else 0.0
        if expected < 0:
            raise ConfigurationError("expected failures must be >= 0")
        read = repair = 0.0
        if expected > 0:
            read = read_memo.get(cost_key)
            if read is None:
                read = model.ckpt_read_seconds(
                    fti, nbytes, config.nprocs, config.nnodes,
                    design=config.design)
                read_memo[cost_key] = read
            repair_key = (config.design, config.nprocs, config.nnodes)
            repair = repair_memo.get(repair_key)
            if repair is None:
                repair = model.recovery_seconds(
                    config.design, config.nprocs, config.nnodes)
                repair_memo[repair_key] = repair
        names.append(app_obj.name)
        levels.append(config.fti.level)
        iter_list.append(iter_seconds)
        work_list.append(niters * iter_seconds)
        ckpt_list.append(ckpt_cost)
        read_list.append(read)
        repair_list.append(repair)
        stride_list.append(stride)
        niters_list.append(niters)
        ef_list.append(expected)
    iter_arr = np.array(iter_list, dtype=np.float64)
    work = np.array(work_list, dtype=np.float64)
    ckpt = np.array(ckpt_list, dtype=np.float64)
    read = np.array(read_list, dtype=np.float64)
    repair = np.array(repair_list, dtype=np.float64)
    stride = np.array(stride_list, dtype=np.int64)
    niters = np.array(niters_list, dtype=np.int64)
    expected_failures = np.array(ef_list, dtype=np.float64)
    n_ckpt = (niters - 1) // stride
    lost_iters = 0.5 * np.minimum(stride, niters)
    rework_per_failure = lost_iters * iter_arr + read
    recovery_total = expected_failures * repair
    rework_total = expected_failures * rework_per_failure
    ckpt_total = n_ckpt * ckpt
    total = work + ckpt_total + recovery_total + rework_total
    rows = zip(configs, names, levels, stride.tolist(), work.tolist(),
               ckpt_total.tolist(), recovery_total.tolist(),
               rework_total.tolist(), expected_failures.tolist(),
               total.tolist())
    return [
        (config, MakespanPrediction(
            app=name, design=config.design, nprocs=config.nprocs,
            fti_level=level, interval=cell_stride, app_seconds=app_s,
            ckpt_write_seconds=ckpt_s, recovery_seconds=recovery_s,
            rework_seconds=rework_s, expected_failures=failures,
            total_seconds=total_s))
        for config, name, level, cell_stride, app_s, ckpt_s, recovery_s,
        rework_s, failures, total_s in rows]


__all__ = [
    "CellGrid",
    "GridPredictions",
    "build_cell_grid",
    "daly_interval_array",
    "evaluate_grid",
    "optimal_stride_array",
    "predict_configs",
    "top_cell_indexes",
    "young_interval_array",
]
