"""Optimal checkpoint intervals: Young/Daly for MATCH's failure regimes.

The classic analysis (Young 1974; Daly, FGCS 2006) balances the cost of
writing checkpoints against the expected rollback rework when a failure
strikes: for a per-checkpoint cost ``C`` and an exponential failure
process with mean time between failures ``M``, the first-order optimum is
``sqrt(2*C*M)`` seconds of work between checkpoints, and Daly's
higher-order expansion refines it when ``C`` is not negligible against
``M``.

MATCH's scenarios (:mod:`repro.faults.scenarios`) express hazard in
*iterations*, not seconds, via their :meth:`~ScenarioKind.rate` hook;
:func:`scenario_mtbf_seconds` converts through the modeled per-iteration
time, and :func:`optimal_stride` lands on the integer iteration stride
the FTI config actually takes. ``interval="auto"`` on an
:class:`~repro.core.configs.ExperimentConfig` resolves through
:func:`auto_stride`.
"""

from __future__ import annotations

import math

from .costs import resolve_model
from ..errors import ConfigurationError


def young_interval(ckpt_seconds: float, mtbf_seconds: float) -> float:
    """Young's first-order optimum: ``sqrt(2 * C * M)`` seconds."""
    _check_cm(ckpt_seconds, mtbf_seconds)
    if math.isinf(mtbf_seconds):
        return math.inf
    return math.sqrt(2.0 * ckpt_seconds * mtbf_seconds)


def daly_interval(ckpt_seconds: float, mtbf_seconds: float) -> float:
    """Daly's higher-order optimum (FGCS 2006, eq. 37).

    For ``C < 2M``::

        sqrt(2*C*M) * (1 + (1/3)*sqrt(C/(2M)) + (1/9)*(C/(2M))) - C

    and ``M`` itself once checkpoints cost more than ``2M`` (the system
    thrashes; checkpoint once per failure). Converges to Young's value
    as ``C/M -> 0``.
    """
    _check_cm(ckpt_seconds, mtbf_seconds)
    if math.isinf(mtbf_seconds):
        return math.inf
    if ckpt_seconds >= 2.0 * mtbf_seconds:
        return mtbf_seconds
    ratio = ckpt_seconds / (2.0 * mtbf_seconds)
    return (math.sqrt(2.0 * ckpt_seconds * mtbf_seconds)
            * (1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0)
            - ckpt_seconds)


def _check_cm(ckpt_seconds: float, mtbf_seconds: float) -> None:
    if ckpt_seconds < 0:
        raise ConfigurationError("checkpoint cost must be >= 0")
    if mtbf_seconds <= 0:
        raise ConfigurationError("MTBF must be positive")


def scenario_mtbf_seconds(scenario, niters: int,
                          iter_seconds: float) -> float:
    """The scenario's mean time between failures, in virtual seconds.

    Uses the scenario kind's :meth:`~ScenarioKind.rate` hook (events per
    iteration) and the modeled per-iteration time; a non-injecting
    scenario has an infinite MTBF.
    """
    if iter_seconds <= 0:
        raise ConfigurationError("iteration time must be positive")
    rate = scenario.rate(niters)
    if rate <= 0:
        return math.inf
    return iter_seconds / rate


def optimal_stride(ckpt_seconds: float, mtbf_seconds: float,
                   iter_seconds: float, niters: int,
                   order: str = "daly") -> int:
    """The integer iteration stride closest to the optimal interval.

    Clamped to ``[1, niters]``: a stride of ``niters`` means the run
    never checkpoints (``iter % stride == 0`` cannot fire inside the
    loop), which is exactly right when the hazard is zero or the
    checkpoint never pays for itself within one run.
    """
    if niters < 2:
        raise ConfigurationError("need at least two iterations")
    if iter_seconds <= 0:
        raise ConfigurationError("iteration time must be positive")
    if order == "young":
        tau = young_interval(ckpt_seconds, mtbf_seconds)
    elif order == "daly":
        tau = daly_interval(ckpt_seconds, mtbf_seconds)
    else:
        raise ConfigurationError(
            "interval order must be 'young' or 'daly' (got %r)"
            % (order,))
    if math.isinf(tau):
        return niters
    stride = int(round(tau / iter_seconds))
    return max(1, min(niters, stride))


def auto_stride(config, model="analytic") -> int:
    """Resolve ``interval="auto"`` for one experiment configuration.

    Prices the config's own checkpoint level, scale and fault scenario
    through the cost model and returns the Daly-optimal stride. Pure
    arithmetic (no simulation), so configs resolve in microseconds and
    deterministically — the resolved stride is part of the run key like
    any explicitly chosen one.
    """
    model = resolve_model(model)
    app = config.make_app()
    iter_seconds = model.iteration_seconds(
        app, config.design, config.nprocs, config.nnodes)
    ckpt_seconds = model.ckpt_write_seconds(
        config.fti, app.nominal_ckpt_bytes(), config.nprocs,
        config.nnodes, design=config.design)
    mtbf = scenario_mtbf_seconds(config.faults, app.niters, iter_seconds)
    return optimal_stride(ckpt_seconds, mtbf, iter_seconds, app.niters)


__all__ = [
    "auto_stride",
    "daly_interval",
    "optimal_stride",
    "scenario_mtbf_seconds",
    "young_interval",
]
