"""Expected-makespan prediction: E[T(design, level, interval, P, MTBF)].

Composes the per-design cost models (:mod:`repro.modeling.costs`) and
the interval analysis (:mod:`repro.modeling.interval`) into the quantity
the paper's figures plot — total execution time split into application
work, checkpoint writes, MPI recovery and rollback rework::

    E[T] = W + n_ckpt * C + N_f * (R + rework)

where ``W`` is the failure-free work (niters iterations at the modeled
per-iteration time, including the design's always-on overhead tax),
``n_ckpt`` the checkpoints the stride schedules, ``C`` the per-checkpoint
cost at the FTI level, ``N_f`` the expected failure count (the
scenario's expected events, or ``W/MTBF`` for a seconds-denominated
failure process), ``R`` the design's per-failure repair cost and
``rework`` the expected re-execution back to the last checkpoint
(half a stride of iterations, plus the checkpoint restore read).

The prediction is pure arithmetic — microseconds per cell — which is
what lets the advisor sweep MTBF × design × level × interval spaces the
simulator would take hours to cover. :mod:`repro.modeling.validate`
cross-checks it against simulated campaigns under an error budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .costs import resolve_model
from ..apps import APP_REGISTRY
from ..core.configs import NNODES
from ..errors import ConfigurationError
from ..fti.config import FtiConfig


@dataclass(frozen=True)
class MakespanPrediction:
    """One cell's predicted execution-time breakdown."""

    app: str
    design: str
    nprocs: int
    fti_level: int
    interval: int
    #: failure-free application seconds (includes the design's tax)
    app_seconds: float
    #: total checkpoint-write seconds across the run
    ckpt_write_seconds: float
    #: total MPI repair seconds (expected_failures × per-failure cost)
    recovery_seconds: float
    #: expected rollback re-execution seconds
    rework_seconds: float
    #: expected number of fault events over the run
    expected_failures: float
    total_seconds: float

    @property
    def efficiency(self) -> float:
        """Fraction of the makespan doing application work."""
        if self.total_seconds <= 0:
            return 0.0
        return self.app_seconds / self.total_seconds

    def as_dict(self) -> dict:
        return {
            "app": self.app, "design": self.design, "nprocs": self.nprocs,
            "fti_level": self.fti_level, "interval": self.interval,
            "app_seconds": self.app_seconds,
            "ckpt_write_seconds": self.ckpt_write_seconds,
            "recovery_seconds": self.recovery_seconds,
            "rework_seconds": self.rework_seconds,
            "expected_failures": self.expected_failures,
            "total_seconds": self.total_seconds,
            "efficiency": self.efficiency,
        }

    def __str__(self):
        return ("E[T]=%.2fs app=%.2fs ckpt=%.2fs recovery=%.2fs "
                "rework=%.2fs (%.1f%% efficient, %.2f failures)"
                % (self.total_seconds, self.app_seconds,
                   self.ckpt_write_seconds, self.recovery_seconds,
                   self.rework_seconds, 100.0 * self.efficiency,
                   self.expected_failures))

    @classmethod
    def from_dict(cls, data: dict) -> "MakespanPrediction":
        """Inverse of :meth:`as_dict` (the derived ``efficiency`` entry
        is recomputed, not read). JSON round-trips exactly: Python's
        ``json`` serializes floats via ``repr``, which is lossless for
        doubles, so ``from_dict(json.loads(json.dumps(p.as_dict())))``
        equals ``p`` field-for-field."""
        try:
            return cls(
                app=data["app"], design=data["design"],
                nprocs=int(data["nprocs"]),
                fti_level=int(data["fti_level"]),
                interval=int(data["interval"]),
                app_seconds=float(data["app_seconds"]),
                ckpt_write_seconds=float(data["ckpt_write_seconds"]),
                recovery_seconds=float(data["recovery_seconds"]),
                rework_seconds=float(data["rework_seconds"]),
                expected_failures=float(data["expected_failures"]),
                total_seconds=float(data["total_seconds"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                "malformed makespan-prediction dict: %s" % (exc,)) \
                from exc


def predict_cell(*, app: str, design: str, nprocs: int = 64,
                 input_size: str = "small", nnodes: int = NNODES,
                 level: int = 1, stride: int = 10,
                 mtbf_seconds: float = math.inf,
                 expected_failures: float | None = None,
                 model="analytic", app_obj=None, iter_seconds=None,
                 ckpt_cost=None) -> MakespanPrediction:
    """Predict one (app, design, level, stride) cell.

    ``expected_failures`` pins the failure count directly (the fixed
    per-run regimes: single, independent:K); otherwise it is derived
    from ``mtbf_seconds`` against the failure-free work time (Young/
    Daly's convention). Sweep callers that already priced the cell
    (the advisor derives the Daly stride from the same numbers) pass
    ``app_obj``/``iter_seconds``/``ckpt_cost`` to avoid re-pricing.
    """
    model = resolve_model(model)
    if app_obj is None:
        app_obj = APP_REGISTRY.resolve(app).from_input(nprocs, input_size)
    niters = app_obj.niters
    if not 1 <= stride <= niters:
        raise ConfigurationError(
            "stride must be in [1, %d] for %s (got %r)"
            % (niters, app, stride))
    if iter_seconds is None:
        iter_seconds = model.iteration_seconds(app_obj, design, nprocs,
                                               nnodes)
    work = niters * iter_seconds
    fti = FtiConfig(level=level, ckpt_stride=stride)
    nbytes = app_obj.nominal_ckpt_bytes()
    if ckpt_cost is None:
        ckpt_cost = model.ckpt_write_seconds(fti, nbytes, nprocs, nnodes,
                                             design=design)
    n_ckpt = (niters - 1) // stride
    if expected_failures is None:
        if mtbf_seconds <= 0:
            raise ConfigurationError("MTBF must be positive")
        expected_failures = (0.0 if math.isinf(mtbf_seconds)
                             else work / mtbf_seconds)
    elif expected_failures < 0:
        raise ConfigurationError("expected failures must be >= 0")
    repair = model.recovery_seconds(design, nprocs, nnodes) \
        if expected_failures > 0 else 0.0
    read = model.ckpt_read_seconds(fti, nbytes, nprocs, nnodes,
                                   design=design) \
        if expected_failures > 0 else 0.0
    # rollback rework: a failure lands uniformly within a checkpoint
    # segment, so on average half a stride of iterations (capped by the
    # run) is re-executed, and the restore read is paid once
    lost_iters = 0.5 * min(stride, niters)
    rework_per_failure = lost_iters * iter_seconds + read
    recovery_total = expected_failures * repair
    rework_total = expected_failures * rework_per_failure
    total = work + n_ckpt * ckpt_cost + recovery_total + rework_total
    return MakespanPrediction(
        app=app_obj.name, design=design, nprocs=nprocs, fti_level=level,
        interval=stride, app_seconds=work,
        ckpt_write_seconds=n_ckpt * ckpt_cost,
        recovery_seconds=recovery_total, rework_seconds=rework_total,
        expected_failures=expected_failures, total_seconds=total)


def predict(config, model="analytic") -> MakespanPrediction:
    """Predict one :class:`~repro.core.configs.ExperimentConfig` cell.

    The failure count comes from the config's own fault scenario via
    its :meth:`~repro.faults.scenarios.FaultScenario.expected_events`
    hook, and the checkpoint level/stride from its ``fti`` — i.e. this
    predicts exactly the run the simulator would execute, which is what
    :mod:`repro.modeling.validate` holds it accountable to.
    """
    app_obj = config.make_app()
    return predict_cell(
        app=config.app, design=config.design, nprocs=config.nprocs,
        input_size=config.input_size, nnodes=config.nnodes,
        level=config.fti.level, stride=min(config.fti.ckpt_stride,
                                           app_obj.niters),
        expected_failures=config.faults.expected_events(app_obj.niters)
        if config.inject_fault else 0.0,
        model=model, app_obj=app_obj)


def suggest_timeout(configs, slack: float = 5.0,
                    floor: float = 30.0) -> float:
    """A per-unit wall-clock timeout (seconds) for a sweep's configs.

    ``--timeout auto`` resolves through here: the slowest cell's
    predicted makespan, times a generous ``slack`` factor, floored at
    ``floor`` seconds. Predicted makespan is *simulated* seconds, but it
    scales with the work the scheduler must replay (iterations,
    failures, recoveries), so it is a usable proxy for relative harness
    wall-clock — the slack factor absorbs the absolute offset. The
    point of an auto timeout is catching *hung* workers (a wedged run
    sits forever, not 5× too long), so generous is correct: a timeout
    that occasionally kills a slow healthy run would break campaign
    completeness, while a generous one still converts every livelock
    into a contained, retryable :class:`~repro.errors.UnitTimeoutError`.
    """
    configs = list(configs)
    if not configs:
        return floor
    if slack <= 0:
        raise ConfigurationError("timeout slack must be > 0")
    worst = max(predict(config).total_seconds for config in configs)
    return max(float(floor), worst * float(slack))


__all__ = [
    "MakespanPrediction",
    "predict",
    "predict_cell",
    "suggest_timeout",
]
