"""The design advisor: "which design/level/interval for this workload?"

Answers the question the paper's cost curves (Figs. 5-10) raise but a
simulator can only answer by running: given a workload, a scale and a
machine MTBF, rank every (recovery design, FTI level, checkpoint
interval) combination by predicted makespan (or efficiency, or raw
recovery cost). Each cell is priced in microseconds through
:mod:`repro.modeling.makespan`, with the interval itself set to the
Daly optimum for that cell's checkpoint cost — so the advisor explores
the MTBF × design × level axis analytically, for free.

Cost models resolve through the ``model`` registry
(:data:`repro.modeling.costs.MODELS`), so a calibrated or custom model
(:mod:`repro.modeling.fit`) slots into ``advise(..., model=...)`` —
or registers under a name and is selected from the CLI.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from .costs import model_version, resolve_model
from .interval import optimal_stride
from .makespan import MakespanPrediction, predict_cell
from ..apps import APP_REGISTRY
from ..core.configs import DESIGN_NAMES, NNODES
from ..core.report import RENDERERS
from ..errors import ConfigurationError
from ..fti.config import VALID_LEVELS, FtiConfig

#: ranking objectives: name -> (sort key over Advice, direction note)
OBJECTIVES = ("makespan", "efficiency", "recovery")

_MTBF_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}

_MTBF_GRAMMAR = ("use seconds or a number with an s/m/h/d suffix — "
                 "'7200', '1.5e3', '30m', '4h', '1d' — or 'inf' for "
                 "no failures")


def parse_mtbf(text) -> float:
    """MTBF in seconds from ``"4h"``, ``"30m"``, ``"86400"``, ``1800``,
    or ``"inf"`` (no failures).

    Grammar: an optional-whitespace-wrapped float in any Python
    ``float()`` syntax (``"7200"``, ``"1.5e3"``), optionally followed
    by one of the unit suffixes ``s``/``m``/``h``/``d``; or one of
    ``inf``/``infinity``/``none``. Anything else raises
    :class:`~repro.errors.ConfigurationError` stating this grammar.
    """
    if isinstance(text, bool):
        raise ConfigurationError(
            "cannot parse MTBF %r (%s)" % (text, _MTBF_GRAMMAR))
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        raw = str(text).strip().lower()
        if raw in ("inf", "infinity", "none"):
            return math.inf
        unit = 1.0
        if raw[-1:] in _MTBF_UNITS:
            unit = _MTBF_UNITS[raw[-1]]
            raw = raw[:-1].rstrip()
        try:
            value = float(raw)
        except ValueError:
            raise ConfigurationError(
                "cannot parse MTBF %r (%s)"
                % (text, _MTBF_GRAMMAR)) from None
        if math.isnan(value):
            raise ConfigurationError(
                "cannot parse MTBF %r (%s)" % (text, _MTBF_GRAMMAR))
        value *= unit
    if value <= 0:
        raise ConfigurationError(
            "MTBF must be positive (got %r; %s)" % (text, _MTBF_GRAMMAR))
    return value


@dataclass(frozen=True)
class Advice:
    """One ranked advisor row.

    ``calibration`` records which cost-model version priced the row
    (:func:`~repro.modeling.costs.model_version`) — the provenance tag
    that lets a cached or served answer be traced to the constants that
    produced it.
    """

    design: str
    fti_level: int
    interval: int
    prediction: MakespanPrediction
    calibration: str = "analytic"

    @property
    def makespan(self) -> float:
        return self.prediction.total_seconds

    @property
    def efficiency(self) -> float:
        return self.prediction.efficiency

    @property
    def recovery(self) -> float:
        """Expected MPI repair seconds (the ``recovery`` objective's
        primary sort key)."""
        return self.prediction.recovery_seconds

    def to_dict(self) -> dict:
        return {"design": self.design, "fti_level": self.fti_level,
                "interval": self.interval,
                "calibration": self.calibration,
                "prediction": self.prediction.as_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "Advice":
        """Inverse of :meth:`to_dict`; JSON round-trips exactly (floats
        serialize via lossless ``repr``)."""
        try:
            return cls(
                design=data["design"], fti_level=int(data["fti_level"]),
                interval=int(data["interval"]),
                prediction=MakespanPrediction.from_dict(
                    data["prediction"]),
                calibration=str(data.get("calibration", "analytic")))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                "malformed advice dict: %s" % (exc,)) from exc


def _rank_key(objective: str):
    if objective == "makespan":
        return lambda row: row.makespan
    if objective == "efficiency":
        return lambda row: -row.efficiency
    if objective == "recovery":
        return lambda row: (row.prediction.recovery_seconds, row.makespan)
    raise ConfigurationError(
        "unknown objective %r (have %s)" % (objective, OBJECTIVES))


def advise(app: str, nprocs: int, mtbf, *, input_size: str = "small",
           nnodes: int = NNODES, designs=DESIGN_NAMES,
           levels=VALID_LEVELS, objective: str = "makespan",
           model="analytic") -> list:
    """Rank (design, level, interval) combinations for one workload.

    ``mtbf`` is seconds or a suffixed string (``"4h"``). For each
    design × level cell the checkpoint interval is set to the Daly
    optimum for that cell's own checkpoint cost, then the cell's
    expected makespan is predicted; rows come back sorted best-first by
    ``objective`` (``makespan`` | ``efficiency`` | ``recovery``).
    """
    mtbf_seconds = parse_mtbf(mtbf)
    model = resolve_model(model)
    key = _rank_key(objective)
    calibration = model_version(model)
    app_obj = APP_REGISTRY.resolve(app).from_input(nprocs, input_size)
    rows = []
    for design in designs:
        iter_seconds = model.iteration_seconds(app_obj, design, nprocs,
                                               nnodes)
        for level in levels:
            fti = FtiConfig(level=level)
            ckpt_cost = model.ckpt_write_seconds(
                fti, app_obj.nominal_ckpt_bytes(), nprocs, nnodes,
                design=design)
            stride = optimal_stride(ckpt_cost, mtbf_seconds, iter_seconds,
                                    app_obj.niters)
            prediction = predict_cell(
                app=app, design=design, nprocs=nprocs,
                input_size=input_size, nnodes=nnodes, level=level,
                stride=stride, mtbf_seconds=mtbf_seconds, model=model,
                app_obj=app_obj, iter_seconds=iter_seconds,
                ckpt_cost=ckpt_cost)
            rows.append(Advice(design=design, fti_level=level,
                               interval=stride, prediction=prediction,
                               calibration=calibration))
    rows.sort(key=key)
    return rows


@RENDERERS.register("advice-table")
def render_advice_table(rows, title: str = "") -> str:
    """Render ranked advice as the CLI's fixed-width table.

    The ``recov`` column is exactly the quantity the ``recovery``
    objective sorts by (expected MPI repair seconds); rollback rework
    gets its own column so the two are never conflated.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append("%-4s %-12s %-3s %-9s %12s %11s %9s %9s %9s"
                 % ("rank", "design", "L", "interval", "E[T] (s)",
                    "efficiency", "ckpt (s)", "recov (s)", "rework(s)"))
    for index, row in enumerate(rows, start=1):
        p = row.prediction
        lines.append("%-4d %-12s %-3d %-9d %12.2f %10.1f%% %9.2f %9.2f "
                     "%8.2f"
                     % (index, row.design, row.fti_level, row.interval,
                        p.total_seconds, 100.0 * p.efficiency,
                        p.ckpt_write_seconds, p.recovery_seconds,
                        p.rework_seconds))
    return "\n".join(lines)


@RENDERERS.register("advice-json")
def render_advice_json(rows, title: str = "") -> str:
    """Ranked advice as a JSON document (rank order preserved); the
    optional title becomes a ``"title"`` field."""
    payload = {"advice": [row.to_dict() for row in rows]}
    if title:
        payload["title"] = title
    return json.dumps(payload, indent=2, sort_keys=True)


@RENDERERS.register("advice-csv")
def render_advice_csv(rows, title: str = "") -> str:
    """Ranked advice as CSV rows (the title is not representable in
    CSV and is ignored)."""
    lines = ["rank,design,fti_level,interval,makespan_seconds,"
             "efficiency,ckpt_seconds,recovery_seconds,rework_seconds,"
             "expected_failures,calibration"]
    for index, row in enumerate(rows, start=1):
        p = row.prediction
        lines.append("%d,%s,%d,%d,%r,%r,%r,%r,%r,%r,%s"
                     % (index, row.design, row.fti_level, row.interval,
                        p.total_seconds, p.efficiency,
                        p.ckpt_write_seconds, p.recovery_seconds,
                        p.rework_seconds, p.expected_failures,
                        row.calibration))
    return "\n".join(lines)


def format_advice(rows, title: str = "") -> str:
    """Back-compat shim: the ``advice-table`` renderer by its old name."""
    return render_advice_table(rows, title=title)


def render_advice(rows, fmt: str = "table", title: str = "") -> str:
    """Render ranked advice through the renderer registry.

    ``fmt`` may be a short advisor format (``table``/``json``/``csv``,
    resolved as ``advice-<fmt>``) or any registered renderer name —
    the same extension point campaign reports use.
    """
    try:
        renderer = RENDERERS.resolve("advice-" + fmt)
    except ConfigurationError:
        renderer = RENDERERS.resolve(fmt)
    return renderer(rows, title=title)


__all__ = [
    "Advice",
    "OBJECTIVES",
    "advise",
    "format_advice",
    "parse_mtbf",
    "render_advice",
    "render_advice_csv",
    "render_advice_json",
    "render_advice_table",
]
