"""The design advisor: "which design/level/interval for this workload?"

Answers the question the paper's cost curves (Figs. 5-10) raise but a
simulator can only answer by running: given a workload, a scale and a
machine MTBF, rank every (recovery design, FTI level, checkpoint
interval) combination by predicted makespan (or efficiency, or raw
recovery cost). Each cell is priced in microseconds through
:mod:`repro.modeling.makespan`, with the interval itself set to the
Daly optimum for that cell's checkpoint cost — so the advisor explores
the MTBF × design × level axis analytically, for free.

Cost models resolve through the ``model`` registry
(:data:`repro.modeling.costs.MODELS`), so a calibrated or custom model
(:mod:`repro.modeling.fit`) slots into ``advise(..., model=...)`` —
or registers under a name and is selected from the CLI.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from .costs import resolve_model
from .interval import optimal_stride
from .makespan import MakespanPrediction, predict_cell
from ..apps import APP_REGISTRY
from ..core.configs import DESIGN_NAMES, NNODES
from ..errors import ConfigurationError
from ..fti.config import VALID_LEVELS, FtiConfig

#: ranking objectives: name -> (sort key over Advice, direction note)
OBJECTIVES = ("makespan", "efficiency", "recovery")

_MTBF_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_mtbf(text) -> float:
    """MTBF in seconds from ``"4h"``, ``"30m"``, ``"86400"``, ``1800``,
    or ``"inf"`` (no failures)."""
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        raw = str(text).strip().lower()
        if raw in ("inf", "infinity", "none"):
            return math.inf
        match = re.fullmatch(r"([0-9.]+)\s*([smhd]?)", raw)
        if not match:
            raise ConfigurationError(
                "cannot parse MTBF %r (use seconds, or a number with "
                "an s/m/h/d suffix, e.g. '4h')" % (text,))
        try:
            value = float(match.group(1))
        except ValueError:
            raise ConfigurationError("cannot parse MTBF %r" % (text,))
        value *= _MTBF_UNITS.get(match.group(2) or "s")
    if value <= 0:
        raise ConfigurationError("MTBF must be positive")
    return value


@dataclass(frozen=True)
class Advice:
    """One ranked advisor row."""

    design: str
    fti_level: int
    interval: int
    prediction: MakespanPrediction

    @property
    def makespan(self) -> float:
        return self.prediction.total_seconds

    @property
    def efficiency(self) -> float:
        return self.prediction.efficiency


def _rank_key(objective: str):
    if objective == "makespan":
        return lambda row: row.makespan
    if objective == "efficiency":
        return lambda row: -row.efficiency
    if objective == "recovery":
        return lambda row: (row.prediction.recovery_seconds, row.makespan)
    raise ConfigurationError(
        "unknown objective %r (have %s)" % (objective, OBJECTIVES))


def advise(app: str, nprocs: int, mtbf, *, input_size: str = "small",
           nnodes: int = NNODES, designs=DESIGN_NAMES,
           levels=VALID_LEVELS, objective: str = "makespan",
           model="analytic") -> list:
    """Rank (design, level, interval) combinations for one workload.

    ``mtbf`` is seconds or a suffixed string (``"4h"``). For each
    design × level cell the checkpoint interval is set to the Daly
    optimum for that cell's own checkpoint cost, then the cell's
    expected makespan is predicted; rows come back sorted best-first by
    ``objective`` (``makespan`` | ``efficiency`` | ``recovery``).
    """
    mtbf_seconds = parse_mtbf(mtbf)
    model = resolve_model(model)
    key = _rank_key(objective)
    app_obj = APP_REGISTRY.resolve(app).from_input(nprocs, input_size)
    rows = []
    for design in designs:
        iter_seconds = model.iteration_seconds(app_obj, design, nprocs,
                                               nnodes)
        for level in levels:
            fti = FtiConfig(level=level)
            ckpt_cost = model.ckpt_write_seconds(
                fti, app_obj.nominal_ckpt_bytes(), nprocs, nnodes,
                design=design)
            stride = optimal_stride(ckpt_cost, mtbf_seconds, iter_seconds,
                                    app_obj.niters)
            prediction = predict_cell(
                app=app, design=design, nprocs=nprocs,
                input_size=input_size, nnodes=nnodes, level=level,
                stride=stride, mtbf_seconds=mtbf_seconds, model=model,
                app_obj=app_obj, iter_seconds=iter_seconds,
                ckpt_cost=ckpt_cost)
            rows.append(Advice(design=design, fti_level=level,
                               interval=stride, prediction=prediction))
    rows.sort(key=key)
    return rows


def format_advice(rows, title: str = "") -> str:
    """Render ranked advice as the CLI's fixed-width table.

    The ``recov`` column is exactly the quantity the ``recovery``
    objective sorts by (expected MPI repair seconds); rollback rework
    gets its own column so the two are never conflated.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append("%-4s %-12s %-3s %-9s %12s %11s %9s %9s %9s"
                 % ("rank", "design", "L", "interval", "E[T] (s)",
                    "efficiency", "ckpt (s)", "recov (s)", "rework(s)"))
    for index, row in enumerate(rows, start=1):
        p = row.prediction
        lines.append("%-4d %-12s %-3d %-9d %12.2f %10.1f%% %9.2f %9.2f "
                     "%8.2f"
                     % (index, row.design, row.fti_level, row.interval,
                        p.total_seconds, 100.0 * p.efficiency,
                        p.ckpt_write_seconds, p.recovery_seconds,
                        p.rework_seconds))
    return "\n".join(lines)


__all__ = [
    "Advice",
    "OBJECTIVES",
    "advise",
    "format_advice",
    "parse_mtbf",
]
