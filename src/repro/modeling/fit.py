"""Calibrate model constants against campaign results, by least squares.

The analytic model predicts the simulator from shared mechanism
constants; as the simulator evolves (new kernels, recalibrated specs),
predictions can drift. This module closes the loop: given recorded runs
— a :class:`repro.core.store` record dict, a result-store path, or a
finished :class:`repro.api.Session` — it fits one multiplicative scale
per component group:

* ``app_scale[app]`` — observed application seconds vs the modeled
  failure-free work,
* ``ckpt_scale[level]`` — observed checkpoint-write seconds vs the
  modeled per-checkpoint cost times the observed checkpoint count,
* ``recovery_scale[design]`` — observed recovery seconds vs the modeled
  per-failure repair cost times the observed episode count.

Each scale is the closed-form least-squares slope through the origin
(``sum(p*o) / sum(p*p)``) over that group's (predicted, observed)
pairs, so one bad run cannot flip a sign and a group with no samples
keeps scale 1.0. :class:`CalibratedModel` wraps any base model with the
fitted constants and satisfies the same ``model``-registry protocol, so
a calibrated model drops into the advisor, ``interval="auto"`` and
validation unchanged.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from .costs import model_version, resolve_model
from ..core.configs import config_from_dict
from ..errors import ConfigurationError


@dataclass
class FittedConstants:
    """Per-group multiplicative corrections, with provenance counts."""

    app_scale: dict = field(default_factory=dict)
    ckpt_scale: dict = field(default_factory=dict)
    recovery_scale: dict = field(default_factory=dict)
    #: (predicted, observed) pairs each fit consumed, per group kind
    samples: int = 0

    def to_dict(self) -> dict:
        return {"app_scale": dict(self.app_scale),
                "ckpt_scale": {str(k): v
                               for k, v in self.ckpt_scale.items()},
                "recovery_scale": dict(self.recovery_scale),
                "samples": self.samples}

    @classmethod
    def from_dict(cls, data: dict) -> "FittedConstants":
        unknown = set(data) - {"app_scale", "ckpt_scale",
                               "recovery_scale", "samples"}
        if unknown:
            raise ConfigurationError(
                "fitted-constants dict has unknown fields %s"
                % sorted(unknown))
        return cls(app_scale=dict(data.get("app_scale", {})),
                   ckpt_scale={int(k): v for k, v in
                               data.get("ckpt_scale", {}).items()},
                   recovery_scale=dict(data.get("recovery_scale", {})),
                   samples=int(data.get("samples", 0)))

    def digest(self) -> str:
        """Content digest of the fitted constants.

        Two fits that landed on the same scales digest identically (the
        calibration *is* the constants — sample counts are provenance,
        not behaviour), and any constant change produces a new digest.
        This is what versions the serving caches: see
        :func:`repro.modeling.costs.model_version`.
        """
        payload = {"app_scale": self.app_scale,
                   "ckpt_scale": {str(k): v
                                  for k, v in self.ckpt_scale.items()},
                   "recovery_scale": self.recovery_scale}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _slope(pairs) -> float:
    """Least-squares slope through the origin for (predicted, observed)
    pairs; 1.0 when the group has no usable signal."""
    num = sum(p * o for p, o in pairs)
    den = sum(p * p for p, _ in pairs)
    if den <= 0:
        return 1.0
    return num / den


class CalibratedModel:
    """A base cost model with fitted per-group scales applied."""

    name = "calibrated"

    def __init__(self, constants: FittedConstants, base="analytic"):
        self.base = resolve_model(base)
        self.constants = constants
        #: calibration version: base version + constants digest, so a
        #: recalibration (or a different base model) is a new version
        #: and every serving-layer cache keyed on it invalidates
        self.version = "calibrated:%s:%s" % (model_version(self.base),
                                             constants.digest())

    def iteration_seconds(self, app, design, nprocs, nnodes):
        scale = self.constants.app_scale.get(
            getattr(app, "name", None), 1.0)
        return scale * self.base.iteration_seconds(app, design, nprocs,
                                                   nnodes)

    def ckpt_write_seconds(self, fti, nbytes, nprocs, nnodes,
                           design="reinit-fti"):
        scale = self.constants.ckpt_scale.get(fti.level, 1.0)
        return scale * self.base.ckpt_write_seconds(
            fti, nbytes, nprocs, nnodes, design=design)

    def ckpt_read_seconds(self, fti, nbytes, nprocs, nnodes,
                          design="reinit-fti"):
        scale = self.constants.ckpt_scale.get(fti.level, 1.0)
        return scale * self.base.ckpt_read_seconds(
            fti, nbytes, nprocs, nnodes, design=design)

    def recovery_seconds(self, design, nprocs, nnodes):
        scale = self.constants.recovery_scale.get(design, 1.0)
        return scale * self.base.recovery_seconds(design, nprocs, nnodes)


def pairs_from_records(records) -> list:
    """``(config, RunResult)`` pairs from store records.

    ``records`` is the ``{key: record}`` mapping
    :func:`repro.core.store.merge_store_paths` /
    ``load_completed`` return; undecodable payloads are skipped (they
    are re-executable holes, not fitting signal).
    """
    from ..core.breakdown import try_run_result_from_dict

    pairs = []
    for record in records.values():
        result = try_run_result_from_dict(record.get("result"))
        if result is None:
            continue
        pairs.append((config_from_dict(record["config"]), result))
    return pairs


def fit_pairs(pairs, base="analytic") -> FittedConstants:
    """Fit constants from explicit ``(config, RunResult)`` pairs."""
    base = resolve_model(base)
    pairs = list(pairs)
    if not pairs:
        raise ConfigurationError(
            "model fitting needs at least one completed run")
    app_groups: dict = {}
    ckpt_groups: dict = {}
    recovery_groups: dict = {}
    for config, result in pairs:
        app_obj = config.make_app()
        breakdown = result.breakdown
        iter_seconds = base.iteration_seconds(
            app_obj, config.design, config.nprocs, config.nnodes)
        # application_seconds includes the rollback re-execution after
        # each recovery; subtract the modeled rework so the fit target
        # is the failure-free work the model's W predicts (otherwise
        # failure-heavy campaigns inflate app_scale and the calibrated
        # prediction double-counts rework)
        rework = 0.0
        if result.recovery_episodes > 0:
            stride = min(config.fti.ckpt_stride, app_obj.niters)
            read = base.ckpt_read_seconds(
                config.fti, app_obj.nominal_ckpt_bytes(), config.nprocs,
                config.nnodes, design=config.design)
            rework = result.recovery_episodes * (
                0.5 * stride * iter_seconds + read)
        app_groups.setdefault(config.app, []).append(
            (app_obj.niters * iter_seconds,
             max(0.0, breakdown.application_seconds - rework)))
        if result.ckpt_count > 0:
            ckpt_cost = base.ckpt_write_seconds(
                config.fti, app_obj.nominal_ckpt_bytes(), config.nprocs,
                config.nnodes, design=config.design)
            ckpt_groups.setdefault(config.fti.level, []).append(
                (result.ckpt_count * ckpt_cost,
                 breakdown.ckpt_write_seconds))
        if result.recovery_episodes > 0:
            repair = base.recovery_seconds(config.design, config.nprocs,
                                           config.nnodes)
            recovery_groups.setdefault(config.design, []).append(
                (result.recovery_episodes * repair,
                 breakdown.recovery_seconds))
    return FittedConstants(
        app_scale={k: _slope(v) for k, v in app_groups.items()},
        ckpt_scale={k: _slope(v) for k, v in ckpt_groups.items()},
        recovery_scale={k: _slope(v) for k, v in recovery_groups.items()},
        samples=len(pairs))


def fit_records(records, base="analytic") -> FittedConstants:
    """Fit constants from store records (``{key: record}``)."""
    return fit_pairs(pairs_from_records(records), base=base)


def fit_store(specs, base="analytic") -> FittedConstants:
    """Fit constants from one or more result-store paths/specs."""
    from ..core.store import merge_store_paths

    if isinstance(specs, (str, bytes)) or not hasattr(specs, "__iter__"):
        specs = [specs]
    return fit_records(merge_store_paths(list(specs)), base=base)


def fit_session(session, base="analytic") -> FittedConstants:
    """Fit constants from a finished :class:`repro.api.Session`."""
    pairs = []
    for config in session.configs:
        for result in session.run_results(config):
            pairs.append((config, result))
    return fit_pairs(pairs, base=base)


__all__ = [
    "CalibratedModel",
    "FittedConstants",
    "fit_pairs",
    "fit_records",
    "fit_session",
    "fit_store",
    "pairs_from_records",
]
