"""Analytic performance/reliability models with a simulator-validated
design advisor.

The simulator discovers MATCH's cost curves by running them; this
subsystem answers the same questions in closed form, in microseconds:

* :mod:`~repro.modeling.costs` — per-design cost models sharing the
  simulator's own mechanism constants (``MODELS`` is the ``model``
  registry; alternative models plug in like apps and scenarios do).
* :mod:`~repro.modeling.interval` — Young/Daly optimal checkpoint
  intervals, fed by the fault scenarios' hazard-rate hooks
  (``interval="auto"`` on a config resolves here).
* :mod:`~repro.modeling.makespan` — expected-makespan/efficiency
  prediction E[T(design, level, interval, nprocs, MTBF)].
* :mod:`~repro.modeling.advisor` — ``advise(app, nprocs, mtbf)``:
  a ranked (design, level, interval) table for a workload.
* :mod:`~repro.modeling.fit` — least-squares calibration of model
  constants from campaign result stores.
* :mod:`~repro.modeling.validate` — cross-check predictions against a
  simulated campaign under an error budget.

Quickstart::

    from repro.modeling import advise, format_advice

    rows = advise("hpccg", nprocs=512, mtbf="4h")
    print(format_advice(rows))

See docs/MODELING.md for derivations, constants provenance and the
validation error budget.
"""

from .advisor import Advice, advise, format_advice, parse_mtbf
from .costs import MODELS, AnalyticCostModel, CostParams, resolve_model
from .fit import (
    CalibratedModel,
    FittedConstants,
    fit_records,
    fit_session,
    fit_store,
)
from .interval import (
    auto_stride,
    daly_interval,
    optimal_stride,
    scenario_mtbf_seconds,
    young_interval,
)
from .makespan import MakespanPrediction, predict, predict_cell
from .validate import (
    DEFAULT_ERROR_BUDGET,
    CellValidation,
    ValidationReport,
    validate_model,
)

__all__ = [
    "Advice",
    "AnalyticCostModel",
    "CalibratedModel",
    "CellValidation",
    "CostParams",
    "DEFAULT_ERROR_BUDGET",
    "FittedConstants",
    "MODELS",
    "MakespanPrediction",
    "ValidationReport",
    "advise",
    "auto_stride",
    "daly_interval",
    "fit_records",
    "fit_session",
    "fit_store",
    "format_advice",
    "optimal_stride",
    "parse_mtbf",
    "predict",
    "predict_cell",
    "resolve_model",
    "scenario_mtbf_seconds",
    "validate_model",
    "young_interval",
]
