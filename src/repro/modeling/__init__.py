"""Analytic performance/reliability models with a simulator-validated
design advisor.

The simulator discovers MATCH's cost curves by running them; this
subsystem answers the same questions in closed form, in microseconds:

* :mod:`~repro.modeling.costs` — per-design cost models sharing the
  simulator's own mechanism constants (``MODELS`` is the ``model``
  registry; alternative models plug in like apps and scenarios do).
* :mod:`~repro.modeling.interval` — Young/Daly optimal checkpoint
  intervals, fed by the fault scenarios' hazard-rate hooks
  (``interval="auto"`` on a config resolves here).
* :mod:`~repro.modeling.makespan` — expected-makespan/efficiency
  prediction E[T(design, level, interval, nprocs, MTBF)].
* :mod:`~repro.modeling.advisor` — ``advise(app, nprocs, mtbf)``:
  a ranked (design, level, interval) table for a workload.
* :mod:`~repro.modeling.fit` — least-squares calibration of model
  constants from campaign result stores.
* :mod:`~repro.modeling.vector` — numpy-vectorized, bit-identical
  versions of the interval/makespan arithmetic for batch evaluation
  (what :mod:`repro.service` serves from).
* :mod:`~repro.modeling.validate` — cross-check predictions against a
  simulated campaign under an error budget.

Quickstart::

    from repro.modeling import advise, format_advice

    rows = advise("hpccg", nprocs=512, mtbf="4h")
    print(format_advice(rows))

See docs/MODELING.md for derivations, constants provenance and the
validation error budget.
"""

from .advisor import (
    Advice,
    advise,
    format_advice,
    parse_mtbf,
    render_advice,
)
from .costs import (
    MODELS,
    AnalyticCostModel,
    CostParams,
    model_version,
    resolve_model,
)
from .fit import (
    CalibratedModel,
    FittedConstants,
    fit_records,
    fit_session,
    fit_store,
)
from .interval import (
    auto_stride,
    daly_interval,
    optimal_stride,
    scenario_mtbf_seconds,
    young_interval,
)
from .makespan import MakespanPrediction, predict, predict_cell
from .validate import (
    DEFAULT_ERROR_BUDGET,
    CellValidation,
    ValidationReport,
    validate_model,
)
from .vector import (
    CellGrid,
    build_cell_grid,
    evaluate_grid,
    predict_configs,
    top_cell_indexes,
)

__all__ = [
    "Advice",
    "AnalyticCostModel",
    "CalibratedModel",
    "CellGrid",
    "CellValidation",
    "CostParams",
    "DEFAULT_ERROR_BUDGET",
    "FittedConstants",
    "MODELS",
    "MakespanPrediction",
    "ValidationReport",
    "advise",
    "auto_stride",
    "build_cell_grid",
    "daly_interval",
    "evaluate_grid",
    "fit_records",
    "fit_session",
    "fit_store",
    "format_advice",
    "model_version",
    "optimal_stride",
    "parse_mtbf",
    "predict",
    "predict_cell",
    "predict_configs",
    "render_advice",
    "resolve_model",
    "scenario_mtbf_seconds",
    "top_cell_indexes",
    "validate_model",
    "young_interval",
]
