"""Per-design analytic cost models: the simulator's arithmetic, closed form.

Every formula here mirrors a mechanism the simulator actually executes —
the FTI level strategies' nominal write paths (:mod:`repro.fti.levels`),
the launcher's redeployment phases (:mod:`repro.cluster.launcher`),
Reinit's daemon-local respawn (:mod:`repro.recovery.reinit`) and ULFM's
revoke/shrink/spawn/merge/agree protocol constants
(:class:`repro.simmpi.runtime.Runtime`). The point of sharing the
constants with the simulator instead of re-stating numbers is that a
calibration edit to the mechanism propagates to the model — and the
paper-anchor pin tests (``tests/cluster``) keep the mechanism itself from
drifting silently.

Cost models are an extension point: the ``model``
:class:`repro.registry.Registry` (``MODELS``) maps model names to
instances providing the four hooks below, so an alternative model (a
calibrated wrapper, a measured lookup table, a different machine) plugs
in exactly like apps and scenario kinds do::

    from repro.modeling import MODELS

    @MODELS.register("pessimistic")
    class Pessimistic(AnalyticCostModel):
        def recovery_seconds(self, design, nprocs, nnodes):
            return 2.0 * super().recovery_seconds(design, nprocs, nnodes)

Model protocol (validated at registration):

``iteration_seconds(app, design, nprocs, nnodes)``
    Virtual seconds one main-loop iteration of ``app`` (a
    :class:`~repro.apps.base.ProxyApp` instance) costs under ``design``.
``ckpt_write_seconds(fti, nbytes, nprocs, nnodes)``
    Per-checkpoint cost at the ``fti`` level for a nominal per-rank blob
    of ``nbytes``.
``ckpt_read_seconds(fti, nbytes, nprocs, nnodes)``
    Recovery-time read of the same blob.
``recovery_seconds(design, nprocs, nnodes)``
    The design's per-failure MPI repair cost (excludes rollback rework —
    :mod:`repro.modeling.makespan` prices that from the interval).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..cluster.launcher import LauncherSpec
from ..cluster.network import NetworkSpec
from ..cluster.node import NodeSpec
from ..errors import ConfigurationError
from ..fti.api import Fti
from ..fti.config import MEMCPY_BANDWIDTH_SHARE, FtiConfig
from ..recovery.reinit import ReinitSpec
from ..registry import Registry
from ..simmpi.overhead import UlfmOverheadModel
from ..simmpi.runtime import Runtime
from ..workmodel.model import WorkModel


def _check_model(name, obj):
    for hook in ("iteration_seconds", "ckpt_write_seconds",
                 "ckpt_read_seconds", "recovery_seconds"):
        if not callable(getattr(obj, hook, None)):
            raise ConfigurationError(
                "cost model %r must provide %s()" % (name, hook))


#: the ``model`` registry: cost-model name -> model instance
MODELS = Registry("model", instantiate=True, validate=_check_model,
                  noun="cost model")


def resolve_model(model):
    """A model instance from a registry name or a ready-made object."""
    if isinstance(model, str):
        return MODELS.resolve(model)
    _check_model(getattr(model, "name", repr(model)), model)
    return model


def model_version(model) -> str:
    """The model's calibration-version string.

    This is the cache-coherence token of the serving layer
    (:mod:`repro.service`): advice computed under one version must never
    answer a query under another, so anything that changes a model's
    constants must change its version. Models may expose an explicit
    ``version`` attribute (:class:`~repro.modeling.fit.CalibratedModel`
    derives one from a digest of its fitted constants); the fallback is
    the registry ``name``, which is correct for stateless built-ins like
    ``analytic`` whose constants only change with the code itself.
    """
    model = resolve_model(model)
    version = getattr(model, "version", None)
    if isinstance(version, str) and version:
        return version
    name = getattr(model, "name", None)
    if isinstance(name, str) and name:
        return name
    return type(model).__name__


def _log2(n: int) -> float:
    return math.log2(max(2, n))


def ranks_per_node(nprocs: int, nnodes: int) -> int:
    """Ceil-division block placement, as the cluster packs ranks."""
    if nprocs < 1 or nnodes < 1:
        raise ConfigurationError("need positive process and node counts")
    return -(-nprocs // nnodes)


@dataclass(frozen=True)
class CostParams:
    """Every constant the analytic model prices with.

    Defaults are the simulator's own specs and protocol constants, so
    the model predicts the simulator it ships with; swap any field to
    model a different machine.
    """

    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    launcher: LauncherSpec = field(default_factory=LauncherSpec)
    reinit: ReinitSpec = field(default_factory=ReinitSpec)
    ulfm_overhead: UlfmOverheadModel = field(
        default_factory=UlfmOverheadModel)
    #: PFS aggregate bandwidth/latency (ParallelFileSystem defaults)
    pfs_bandwidth: float = 5.0e10
    pfs_latency: float = 2e-3
    #: ULFM repair protocol constants (Runtime's, verbatim)
    revoke_alpha: float = Runtime.REVOKE_ALPHA
    shrink_alpha: float = Runtime.SHRINK_ALPHA
    shrink_per_proc: float = Runtime.SHRINK_PER_PROC
    agree_alpha: float = Runtime.AGREE_ALPHA
    merge_alpha: float = Runtime.MERGE_ALPHA
    spawn_base: float = Runtime.SPAWN_BASE
    spawn_per_proc: float = Runtime.SPAWN_PER_PROC
    #: FTI's internal coordination collective (Fti.COORD_ALPHA)
    fti_coord_alpha: float = Fti.COORD_ALPHA
    #: memory-bandwidth fraction usable by checkpoint memcpy — the
    #: simulator's own contention share, verbatim
    memcpy_share: float = MEMCPY_BANDWIDTH_SHARE

    def work_model(self) -> WorkModel:
        return WorkModel(node=self.node)


@MODELS.register("analytic")
class AnalyticCostModel:
    """The closed-form mirror of the simulator's cost arithmetic."""

    name = "analytic"
    #: calibration version (see :func:`model_version`): the analytic
    #: model's constants are the simulator's own, so the name suffices
    version = "analytic"

    def __init__(self, params: CostParams | None = None):
        self.params = params or CostParams()

    # -- shared helpers -----------------------------------------------------
    def compute_factor(self, design: str, nprocs: int) -> float:
        """The design's always-on compute tax (ULFM's heartbeat and
        interposition layer; Restart/Reinit are vanilla MPI)."""
        if design == "ulfm-fti":
            return self.params.ulfm_overhead.compute_factor(nprocs)
        return 1.0

    def _memcpy_contention(self, nprocs: int, nnodes: int) -> float:
        """RAMFS writes are memcpy: co-located ranks share the node's
        memory bandwidth (mirrors ``Fti._memory_contention``)."""
        node = self.params.node
        rpn = ranks_per_node(nprocs, nnodes)
        share = node.memory_bandwidth * self.params.memcpy_share / rpn
        return max(1.0, node.ramfs_bandwidth / share)

    def _local_bandwidth(self, fti: FtiConfig) -> float:
        node = self.params.node
        return node.ssd_bandwidth if fti.use_ssd else node.ramfs_bandwidth

    def _local_write_seconds(self, fti: FtiConfig, nbytes: int,
                             nprocs: int, nnodes: int) -> float:
        """The L1 nominal path every level starts from."""
        return (nbytes / self._local_bandwidth(fti)
                * self._memcpy_contention(nprocs, nnodes))

    # -- protocol hooks -----------------------------------------------------
    def iteration_seconds(self, app, design: str, nprocs: int,
                          nnodes: int) -> float:
        """One main-loop iteration: the app's (flops, bytes) through the
        same roofline work model the simulator charges, times the
        design's compute tax."""
        work_per_iter = getattr(app, "work_per_iter", None)
        if not callable(work_per_iter):
            raise ConfigurationError(
                "app %r does not expose work_per_iter(); analytic "
                "modeling needs it (implement it, or register a custom "
                "cost model)" % (getattr(app, "name", app),))
        flops, bytes_moved = work_per_iter()
        seconds = self.params.work_model().seconds(
            flops=flops, bytes_moved=bytes_moved,
            ranks_per_node=ranks_per_node(nprocs, nnodes))
        return seconds * self.compute_factor(design, nprocs)

    def ckpt_write_seconds(self, fti: FtiConfig, nbytes: int, nprocs: int,
                           nnodes: int, design: str = "reinit-fti") -> float:
        """One checkpoint at the ``fti`` level: serialization compute,
        the level's nominal storage/network path and FTI's completion
        collective (mirrors ``Fti.checkpoint``)."""
        if nbytes < 0:
            raise ConfigurationError("checkpoint bytes must be >= 0")
        p = self.params
        rpn = ranks_per_node(nprocs, nnodes)
        factor = self.compute_factor(design, nprocs)
        # serialization: one read of the data + one write of the blob
        serialize = p.work_model().seconds(bytes_moved=2.0 * nbytes,
                                           ranks_per_node=rpn) * factor
        io = self._local_write_seconds(fti, nbytes, nprocs, nnodes)
        if fti.level == 2:
            io += nbytes / p.network.beta_inter
            io += nbytes / p.node.ramfs_bandwidth
        elif fti.level == 3:
            k = fti.group_size
            alpha, beta = p.network.alpha_inter, p.network.beta_inter
            allgather = max(1, k - 1) * (alpha + nbytes / beta)
            encode = (2.0 * k * nbytes
                      / (p.node.memory_bandwidth * p.memcpy_share / rpn))
            io += allgather + encode + nbytes / self._local_bandwidth(fti)
        elif fti.level == 4:
            share = p.pfs_bandwidth / max(1, nprocs)
            io += nbytes / share
        # FTI coordination: metadata agreement + the completion allreduce
        coord = p.fti_coord_alpha * _log2(nprocs) * factor
        allreduce = math.ceil(_log2(nprocs)) * (
            p.network.alpha_inter + 8 / p.network.beta_inter)
        return serialize + io + coord + allreduce

    def ckpt_read_seconds(self, fti: FtiConfig, nbytes: int, nprocs: int,
                          nnodes: int, design: str = "reinit-fti") -> float:
        """Recovery-time restore: the happy path reads the surviving
        local copy at every level (mirrors ``Fti.recover``)."""
        rpn = ranks_per_node(nprocs, nnodes)
        factor = self.compute_factor(design, nprocs)
        deserialize = self.params.work_model().seconds(
            bytes_moved=2.0 * nbytes, ranks_per_node=rpn) * factor
        io = self._local_write_seconds(fti, nbytes, nprocs, nnodes)
        return deserialize + io

    def recovery_seconds(self, design: str, nprocs: int,
                         nnodes: int) -> float:
        """The design's per-failure MPI repair cost."""
        p = self.params
        if design == "restart-fti":
            # the launcher's full redeployment (JobLauncher.launch_time)
            s = p.launcher
            return (s.allocation_seconds
                    + math.ceil(_log2(nnodes)) * s.daemon_seconds
                    + nprocs * s.process_spawn_seconds
                    + math.ceil(_log2(nprocs)) * s.init_wireup_seconds)
        if design == "reinit-fti":
            return p.reinit.cost(nnodes)
        if design == "ulfm-fti":
            # survivor critical path: revoke, shrink, spawn one
            # replacement, merge, two-phase agree (Runtime's charges)
            log2p = _log2(nprocs)
            return (p.revoke_alpha * log2p
                    + p.shrink_alpha * log2p + p.shrink_per_proc * nprocs
                    + p.spawn_base + p.spawn_per_proc
                    + p.merge_alpha * log2p          # spawn-side merge
                    + p.merge_alpha * log2p          # intercomm merge
                    + 2.0 * p.agree_alpha * log2p)
        raise ConfigurationError(
            "the analytic model prices the paper's designs "
            "('restart-fti', 'reinit-fti', 'ulfm-fti'), not %r — "
            "register a custom cost model for custom designs" % (design,))


__all__ = [
    "MODELS",
    "AnalyticCostModel",
    "CostParams",
    "model_version",
    "ranks_per_node",
    "resolve_model",
]
