"""Model validation: hold the analytic predictions to the simulator.

The simulator is ground truth; the models are only trustworthy while
someone checks. :func:`validate_model` runs a small real campaign
through :class:`repro.api.Campaign`, predicts every cell with
:func:`repro.modeling.makespan.predict`, and reports the per-cell
relative error of the predicted makespan against the simulated mean —
enforcing an error budget so CI catches the model drifting away from
the simulator as either evolves (the ``model-validate`` CI job runs
exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .costs import resolve_model
from .fit import fit_session
from .makespan import predict
from ..core.configs import DESIGN_NAMES, NNODES
from ..errors import ConfigurationError

#: the acceptance error budget: predictions within 25% of the simulator
DEFAULT_ERROR_BUDGET = 0.25


@dataclass(frozen=True)
class CellValidation:
    """Predicted-vs-simulated comparison for one campaign cell."""

    label: str
    predicted_seconds: float
    simulated_seconds: float
    runs: int

    @property
    def rel_error(self) -> float:
        if self.simulated_seconds <= 0:
            return float("inf")
        return (abs(self.predicted_seconds - self.simulated_seconds)
                / self.simulated_seconds)


@dataclass
class ValidationReport:
    """Every cell's error plus the budget verdict."""

    cells: list = field(default_factory=list)
    error_budget: float = DEFAULT_ERROR_BUDGET
    model_name: str = "analytic"

    @property
    def max_rel_error(self) -> float:
        return max((c.rel_error for c in self.cells), default=0.0)

    @property
    def within_budget(self) -> bool:
        return bool(self.cells) and all(
            c.rel_error <= self.error_budget for c in self.cells)

    def report(self) -> str:
        lines = ["Model validation (%s model, budget %.0f%%)"
                 % (self.model_name, 100.0 * self.error_budget),
                 "%-40s %12s %12s %8s %6s"
                 % ("cell", "predicted", "simulated", "error", "")]
        for cell in self.cells:
            verdict = "ok" if cell.rel_error <= self.error_budget \
                else "OVER"
            lines.append("%-40s %11.2fs %11.2fs %7.1f%% %6s"
                         % (cell.label, cell.predicted_seconds,
                            cell.simulated_seconds,
                            100.0 * cell.rel_error, verdict))
        lines.append("max relative error: %.1f%% — %s"
                     % (100.0 * self.max_rel_error,
                        "within budget" if self.within_budget
                        else "BUDGET EXCEEDED"))
        return "\n".join(lines)


def validate_model(app: str = "hpccg", nprocs=(64, 256),
                   designs=DESIGN_NAMES, faults="poisson:20",
                   reps: int = 2, input_size: str = "small",
                   nnodes: int = NNODES, fti=None, model="analytic",
                   error_budget: float = DEFAULT_ERROR_BUDGET,
                   jobs: int = 1, seed: int = 0,
                   calibrate: bool = False) -> ValidationReport:
    """Run a small campaign and compare predictions cell by cell.

    ``calibrate=True`` first fits a :class:`~repro.modeling.fit.
    CalibratedModel` on the very campaign being validated and reports
    that model's errors — useful to see how much headroom calibration
    buys, but self-referential, so the default holds the uncalibrated
    model accountable.
    """
    from ..api import Campaign

    if reps < 1:
        raise ConfigurationError("validation needs at least one rep")
    if error_budget <= 0:
        raise ConfigurationError("error budget must be positive")
    model = resolve_model(model)
    campaign = (Campaign().apps(app).designs(*designs)
                .nprocs(*(nprocs if hasattr(nprocs, "__iter__")
                          else (nprocs,)))
                .inputs(input_size).nnodes(nnodes).faults(faults)
                .seed(seed).reps(reps).jobs(jobs))
    if fti is not None:
        campaign = campaign.fti(fti)
    session = campaign.session()
    session.run()
    if calibrate:
        from .fit import CalibratedModel

        model = CalibratedModel(fit_session(session, base=model),
                                base=model)
    cells = []
    for config in session.configs:
        runs = session.run_results(config)
        if not runs:
            continue
        simulated = (sum(r.breakdown.total_seconds for r in runs)
                     / len(runs))
        predicted = predict(config, model=model).total_seconds
        cells.append(CellValidation(
            label=config.label(), predicted_seconds=predicted,
            simulated_seconds=simulated, runs=len(runs)))
    return ValidationReport(cells=cells, error_budget=error_budget,
                            model_name=getattr(model, "name", "custom"))


__all__ = [
    "DEFAULT_ERROR_BUDGET",
    "CellValidation",
    "ValidationReport",
    "validate_model",
]
