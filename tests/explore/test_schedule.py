"""Schedule grammar: parse, canonical round-trip, lowering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.explore.schedule import AnchoredFault, FaultSchedule
from repro.explore.timeline import PhaseTimeline, PhaseWindow


def _timeline():
    return PhaseTimeline(windows=(
        PhaseWindow("ckpt.L1.write", 0, 2.0, 2.5, (0, 1, 2, 3)),
        PhaseWindow("ckpt.L1.write", 1, 4.0, 4.5, (0, 1, 2, 3)),
        PhaseWindow("ulfm.shrink", 0, 5.0, 5.4, (0, 1, 2)),
        PhaseWindow("reinit.rollback", 0, 5.0, 5.8, (-1,)),
    ))


class TestAtomGrammar:
    def test_bare_anchor_defaults(self):
        event = AnchoredFault.parse_atom("ckpt.L1.write")
        assert event.anchor == "ckpt.L1.write"
        assert event.occurrence == 0
        assert event.offset == 0.0
        assert event.rank is None and event.node is None

    def test_full_atom(self):
        event = AnchoredFault.parse_atom("ckpt.L2.write~3+1.25@r7")
        assert event.occurrence == 3
        assert event.offset == 1.25
        assert event.rank == 7

    def test_node_victim(self):
        event = AnchoredFault.parse_atom("ulfm.shrink@n2")
        assert event.node == 2 and event.rank is None
        assert event.kind == "node"

    @pytest.mark.parametrize("bad", [
        "", "~1", "+0.5", "anchor@x3", "anchor@r-1", "anchor~-1",
        "anchor+-2", "anchor@r1@n2", "an chor",
    ])
    def test_bad_atoms_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            AnchoredFault.parse_atom(bad)

    def test_rank_and_node_exclusive(self):
        with pytest.raises(ConfigurationError):
            AnchoredFault(anchor="a", rank=1, node=2)


class TestScheduleSpec:
    def test_roundtrip_is_canonical(self):
        spec = "ckpt.L1.write~1+0.5@r3;ulfm.shrink;reinit.rollback@n2"
        schedule = FaultSchedule.parse(spec)
        assert schedule.to_spec() == spec
        assert FaultSchedule.parse(schedule.to_spec()) == schedule

    def test_defaults_omitted_in_canonical_form(self):
        schedule = FaultSchedule(events=(
            AnchoredFault(anchor="ckpt.L1.write", occurrence=0,
                          offset=0.0),))
        assert schedule.to_spec() == "ckpt.L1.write"

    def test_spec_is_colon_free(self):
        # parse_scenario_spec splits whole specs on ':' — the schedule
        # grammar must never produce one
        spec = FaultSchedule.parse(
            "ckpt.L4.write~2+10.125@n31;ulfm.agree+0.001@r63").to_spec()
        assert ":" not in spec

    def test_empty_schedule_rejected(self):
        for bad in ("", " ; ; "):
            with pytest.raises(ConfigurationError):
                FaultSchedule.parse(bad)

    def test_dict_roundtrip(self):
        schedule = FaultSchedule.parse("ckpt.L1.write~1+0.5@r3")
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule


class TestLowering:
    def test_offset_from_window_start(self):
        event = AnchoredFault.parse_atom("ckpt.L1.write~1+0.25@r3")
        timed = event.lower(_timeline(), nprocs=8, nnodes=4)
        assert timed.time == pytest.approx(4.25)
        assert timed.rank == 3 and timed.kind == "process"

    def test_default_victim_is_first_participant(self):
        timed = AnchoredFault.parse_atom("ulfm.shrink").lower(
            _timeline(), nprocs=8, nnodes=4)
        assert timed.rank == 0

    def test_runtime_span_default_victim_is_rank_zero(self):
        # runtime-level spans record rank -1; lowering must still pick
        # a real victim
        timed = AnchoredFault.parse_atom("reinit.rollback+0.1").lower(
            _timeline(), nprocs=8, nnodes=4)
        assert timed.rank == 0
        assert timed.time == pytest.approx(5.1)

    def test_node_victim_maps_to_block_placement(self):
        timed = AnchoredFault.parse_atom("ckpt.L1.write@n1").lower(
            _timeline(), nprocs=8, nnodes=4)
        # 8 ranks on 4 nodes -> 2 per node; node 1 starts at rank 2
        assert timed.kind == "node" and timed.rank == 2

    def test_unknown_anchor_lists_catalog(self):
        with pytest.raises(ConfigurationError, match="ckpt.L1.write~0"):
            AnchoredFault.parse_atom("ckpt.L9.write").lower(
                _timeline(), nprocs=8, nnodes=4)

    def test_out_of_range_victims_rejected(self):
        with pytest.raises(ConfigurationError):
            AnchoredFault.parse_atom("ulfm.shrink@r64").lower(
                _timeline(), nprocs=8, nnodes=4)
        with pytest.raises(ConfigurationError):
            AnchoredFault.parse_atom("ulfm.shrink@n9").lower(
                _timeline(), nprocs=8, nnodes=4)
