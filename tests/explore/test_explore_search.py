"""Worst-case search: strategies, determinism, resume, event stream."""

from __future__ import annotations

import pytest

from repro.core.configs import ExperimentConfig
from repro.core.engine import RunUnit, execute_unit
from repro.core.events import ExploreFinished, ExploreStarted, ScheduleProbed
from repro.errors import ConfigurationError
from repro.explore.engine import explore, explore_stream
from repro.explore.strategies import STRATEGIES


def _config(**kw):
    kw.setdefault("app", "hpccg")
    kw.setdefault("nprocs", 8)
    kw.setdefault("design", "ulfm-fti")
    kw.setdefault("faults", "none")
    return ExperimentConfig(**kw)


class TestStrategyRegistry:
    def test_built_ins_resolve(self):
        for name in ("exhaustive", "random", "bisect"):
            assert name in STRATEGIES

    def test_unknown_strategy_is_a_config_error(self):
        with pytest.raises(ConfigurationError):
            explore(_config(), strategy="quantum")


class TestSearch:
    def test_exhaustive_finds_a_slowdown(self):
        outcome = explore(_config(), strategy="exhaustive")
        assert outcome.best > outcome.baseline
        assert outcome.slowdown > 1.0
        assert outcome.best_spec
        assert outcome.probes >= 1

    def test_search_is_deterministic(self):
        first = explore(_config(), strategy="exhaustive")
        second = explore(_config(), strategy="exhaustive")
        assert first.best_spec == second.best_spec
        assert first.best == second.best

    def test_random_is_seeded(self):
        a = explore(_config(), strategy="random", budget=6, seed=42)
        b = explore(_config(), strategy="random", budget=6, seed=42)
        assert a.best_spec == b.best_spec and a.best == b.best

    def test_exhaustive_at_least_matches_random(self):
        # exhaustive covers every candidate random can only sample
        exhaustive = explore(_config(), strategy="exhaustive")
        rand = explore(_config(), strategy="random", budget=6, seed=7)
        assert exhaustive.best >= rand.best

    def test_bisect_respects_its_budget(self):
        outcome = explore(_config(), strategy="bisect", budget=8)
        assert outcome.probes <= 8
        assert outcome.best > outcome.baseline

    def test_winner_replays_bit_identically(self):
        outcome = explore(_config(), strategy="exhaustive")
        replay = execute_unit(RunUnit(outcome.best_config(), 0))
        assert replay.breakdown.total_seconds == outcome.best
        assert replay.verified


class TestEventStream:
    def test_stream_shape(self):
        events = list(explore_stream(_config(), strategy="random",
                                     budget=4, seed=1))
        assert isinstance(events[0], ExploreStarted)
        assert isinstance(events[-1], ExploreFinished)
        probes = [e for e in events[1:-1] if isinstance(e, ScheduleProbed)]
        assert len(probes) == len(events) - 2 == 4
        assert events[0].strategy == "random"
        assert events[0].candidates > 0
        assert "ckpt.L1.write" in events[0].anchors
        # running best is monotone non-decreasing
        bests = [e.best for e in probes]
        assert bests == sorted(bests)
        assert events[-1].best == probes[-1].best
        assert events[-1].baseline > 0.0

    def test_progress_callback_sees_every_event(self):
        seen = []
        explore(_config(), strategy="random", budget=3, seed=1,
                progress=seen.append)
        kinds = [type(e).__name__ for e in seen]
        assert kinds[0] == "ExploreStarted"
        assert kinds[-1] == "ExploreFinished"
        assert kinds.count("ScheduleProbed") == 3


class TestStoreResume:
    def test_resume_skips_completed_probes(self, tmp_path):
        from repro.core.store import open_store

        path = tmp_path / "explore.jsonl"
        store = open_store(str(path))
        first = explore(_config(), strategy="exhaustive", store=store)
        executed_before = len(store.load_completed())
        assert executed_before >= first.probes

        # second search over the same space: every probe answered from
        # the store, nothing new appended
        store2 = open_store(str(path))
        second = explore(_config(), strategy="exhaustive", store=store2)
        assert second.best_spec == first.best_spec
        assert second.best == first.best
        assert len(store2.load_completed()) == executed_before


class TestWorstOfKind:
    def test_worst_of_unit_lowers_through_search(self):
        config = _config(faults="worst-of:4")
        result = execute_unit(RunUnit(config, 0))
        assert result.verified
        assert result.recovery_episodes >= 1
        assert len(result.fault_events) == 1

    def test_worst_of_is_reproducible(self):
        config = _config(faults="worst-of:4")
        first = execute_unit(RunUnit(config, 0))
        second = execute_unit(RunUnit(config, 0))
        assert first.breakdown.total_seconds == second.breakdown.total_seconds


class TestSessionFacade:
    def _session(self, tmp_path, *designs):
        from repro.api import Campaign

        return Campaign().apps("hpccg").designs(*designs) \
            .nprocs(8).faults("none") \
            .store(str(tmp_path / "s.jsonl")).resume().session()

    def test_session_explore_end_to_end(self, tmp_path):
        from repro.api import Session

        session = self._session(tmp_path, "ulfm-fti")
        assert isinstance(session, Session)
        outcome = session.explore(strategy="random", budget=3, seed=5)
        assert outcome.best > outcome.baseline

    def test_ambiguous_campaign_needs_an_explicit_config(self, tmp_path):
        session = self._session(tmp_path, "ulfm-fti", "reinit-fti")
        with pytest.raises(ConfigurationError, match="configs"):
            session.explore()

    def test_foreign_config_rejected(self, tmp_path):
        session = self._session(tmp_path, "ulfm-fti")
        foreign = _config(app="hpccg", nprocs=16)
        with pytest.raises(ConfigurationError, match="not part"):
            session.explore(foreign)
