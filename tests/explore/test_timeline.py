"""Phase timelines: recording, clustering, probing, determinism."""

from __future__ import annotations

import pytest

from repro.core.configs import ExperimentConfig
from repro.errors import ConfigurationError
from repro.explore.timeline import (
    PhaseRecorder,
    PhaseTimeline,
    probe_timeline,
)


class TestRecorderClustering:
    def test_overlapping_spans_cluster_into_one_window(self):
        recorder = PhaseRecorder()
        for rank in range(4):
            recorder.enter(rank, "ckpt.L1.write", 2.0 + 0.01 * rank)
        for rank in range(4):
            recorder.exit(rank, "ckpt.L1.write", 2.5 + 0.01 * rank)
        timeline = PhaseTimeline.build(recorder)
        assert len(timeline.windows) == 1
        window = timeline.windows[0]
        assert window.ranks == (0, 1, 2, 3)
        assert window.start == pytest.approx(2.0)
        assert window.end == pytest.approx(2.53)

    def test_disjoint_spans_become_numbered_occurrences(self):
        recorder = PhaseRecorder()
        for start in (2.0, 4.0, 6.0):
            recorder.enter(0, "ckpt.L1.write", start)
            recorder.exit(0, "ckpt.L1.write", start + 0.5)
        timeline = PhaseTimeline.build(recorder)
        assert [w.occurrence for w in timeline.windows] == [0, 1, 2]
        assert [w.start for w in timeline.windows] == [2.0, 4.0, 6.0]

    def test_unmatched_enter_is_dropped(self):
        # a rank killed inside a phase never emits exit
        recorder = PhaseRecorder()
        recorder.enter(0, "ckpt.L1.write", 2.0)
        recorder.enter(1, "ckpt.L1.write", 2.0)
        recorder.exit(1, "ckpt.L1.write", 2.5)
        timeline = PhaseTimeline.build(recorder)
        assert timeline.windows[0].ranks == (1,)

    def test_epochs_kept_separate_and_numbered_globally(self):
        recorder = PhaseRecorder()
        recorder.enter(0, "ckpt.L1.write", 2.0)
        recorder.exit(0, "ckpt.L1.write", 2.5)
        recorder.epoch(1)
        recorder.enter(0, "ckpt.L1.write", 2.1)
        recorder.exit(0, "ckpt.L1.write", 2.6)
        timeline = PhaseTimeline.build(recorder)
        assert [(w.epoch, w.occurrence) for w in timeline.windows] \
            == [(0, 0), (1, 1)]

    def test_epoch_change_clears_pending(self):
        recorder = PhaseRecorder()
        recorder.enter(0, "ckpt.L1.write", 2.0)
        recorder.epoch(1)
        recorder.exit(0, "ckpt.L1.write", 9.9)  # stale exit: ignored
        assert PhaseTimeline.build(recorder).windows == ()


class TestTimelineLookup:
    def test_resolve_unknown_raises_with_catalog(self):
        recorder = PhaseRecorder()
        recorder.span(-1, "reinit.rollback", 1.0, 2.0)
        timeline = PhaseTimeline.build(recorder)
        with pytest.raises(ConfigurationError, match="reinit.rollback~0"):
            timeline.resolve("ulfm.shrink")

    def test_dict_roundtrip(self):
        recorder = PhaseRecorder()
        recorder.enter(0, "ckpt.L1.write", 2.0)
        recorder.exit(0, "ckpt.L1.write", 2.5)
        recorder.span(-1, "reinit.rollback", 3.0, 3.8)
        timeline = PhaseTimeline.build(recorder)
        assert PhaseTimeline.from_dict(timeline.to_dict()) == timeline


class TestProbe:
    def test_clean_probe_finds_checkpoint_windows(self):
        config = ExperimentConfig(app="hpccg", nprocs=8, design="ulfm-fti",
                                  faults="none")
        timeline, result = probe_timeline(config)
        assert timeline.anchors() == ("ckpt.L1.write",)
        # hpccg: 60 iterations, stride 10 -> writes after 10..50
        assert len(timeline.occurrences("ckpt.L1.write")) == 5
        assert result.verified and result.recovery_episodes == 0

    def test_probe_is_deterministic(self):
        config = ExperimentConfig(app="hpccg", nprocs=8, design="ulfm-fti",
                                  faults="none")
        first, _ = probe_timeline(config)
        second, _ = probe_timeline(config)
        assert first == second

    def test_prefix_probe_exposes_recovery_phases(self):
        config = ExperimentConfig(app="hpccg", nprocs=8, design="ulfm-fti",
                                  faults="none")
        clean, _ = probe_timeline(config)
        window = clean.resolve("ckpt.L1.write", 1)
        from repro.faults.plans import TimedFault

        kill = TimedFault(time=window.start + 0.05, rank=3)
        probed, _ = probe_timeline(config, (kill,))
        for anchor in ("ulfm.revoke", "ulfm.shrink", "ulfm.spawn",
                       "ulfm.merge", "ulfm.agree", "ckpt.L1.read"):
            assert anchor in probed.anchors()
