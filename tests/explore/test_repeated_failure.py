"""Repeated failure *during recovery*, across all three designs.

The adversarial case the paper's measurement harness never exercises:
a second fault landing while the first one's recovery is still in
flight. Each design must terminate structurally — recovered and
verified, or a typed error — in bounded steps, without tripping the
scheduler watchdog.
"""

from __future__ import annotations

import pytest

from repro.core.configs import ExperimentConfig
from repro.core.designs import DESIGNS
from repro.core.engine import RunUnit, execute_unit
from repro.core.harness import build_cluster
from repro.explore.timeline import probe_timeline
from repro.faults.plans import TimedFault, TimedFaultPlan


def _run(config, plan, label):
    design = DESIGNS[config.design](build_cluster(config))
    return design.run_job(config.make_app(), config.fti, plan, label=label)


class TestUlfmMidRepair:
    def test_fault_during_revoke_shrink_terminates(self):
        config = ExperimentConfig(
            app="hpccg", nprocs=8, design="ulfm-fti",
            faults="at-phase:ckpt.L1.write~1+0.05@r3;ulfm.shrink+0.1@r5")
        result = execute_unit(RunUnit(config, 0))
        assert result.verified
        assert result.recovery_episodes >= 1
        assert len(result.fault_events) == 2

    @pytest.mark.parametrize("second", [
        "ulfm.spawn+0.5@r4",   # dies while replacements spawn
        "ulfm.agree+0.01@r0",  # dies during agreement
        "ckpt.L1.read+0.05@r2",  # dies restoring the checkpoint
    ])
    def test_every_repair_phase_survives_a_second_kill(self, second):
        config = ExperimentConfig(
            app="hpccg", nprocs=8, design="ulfm-fti",
            faults="at-phase:ckpt.L1.write~1+0.05@r3;" + second)
        result = execute_unit(RunUnit(config, 0))
        assert result.verified
        assert result.recovery_episodes >= 1

    def test_fault_during_the_second_recovery_too(self):
        # the acceptance chain: fault -> fault during its repair ->
        # fault during *that* recovery; three events, still structural
        config = ExperimentConfig(
            app="hpccg", nprocs=8, design="ulfm-fti",
            faults="at-phase:ckpt.L1.write~1+0.05@r3;"
                   "ulfm.shrink+0.1@r5;ulfm.agree+0.01@r1")
        result = execute_unit(RunUnit(config, 0))
        assert result.verified
        assert result.recovery_episodes == 2
        assert len(result.fault_events) == 3

    def test_replay_is_bit_identical(self):
        config = ExperimentConfig(
            app="hpccg", nprocs=8, design="ulfm-fti",
            faults="at-phase:ckpt.L1.write~1+0.05@r3;ulfm.agree+0.01@r0")
        first = execute_unit(RunUnit(config, 0))
        second = execute_unit(RunUnit(config, 0))
        assert first.breakdown.total_seconds == second.breakdown.total_seconds
        assert first.fault_events == second.fault_events


class TestReinitMidRollback:
    def test_fault_during_global_rollback_terminates(self):
        config = ExperimentConfig(
            app="hpccg", nprocs=8, design="reinit-fti",
            faults="at-phase:ckpt.L1.write~1+0.05@r3;reinit.rollback+0.1@r5")
        result = execute_unit(RunUnit(config, 0))
        assert result.verified
        assert result.recovery_episodes >= 2  # the rollback itself re-fails

    def test_rollback_window_is_probeable(self):
        config = ExperimentConfig(app="hpccg", nprocs=8,
                                  design="reinit-fti", faults="none")
        clean, _ = probe_timeline(config)
        kill = TimedFault(
            time=clean.resolve("ckpt.L1.write", 1).start + 0.05, rank=3)
        probed, _ = probe_timeline(config, (kill,))
        window = probed.resolve("reinit.rollback", 0)
        assert window.ranks == (-1,)
        assert window.end > window.start


class TestRestartMidRedeploy:
    def test_fault_in_the_relaunched_incarnation_terminates(self):
        # no ranks exist during the redeploy itself, so the adversarial
        # equivalent is an epoch-1 event: kill the *relaunched* job
        # almost immediately, forcing a second abort + redeploy
        config = ExperimentConfig(app="hpccg", nprocs=8,
                                  design="restart-fti", faults="none")
        plan = TimedFaultPlan(events=(
            TimedFault(time=2.0, rank=3, epoch=0),
            TimedFault(time=0.5, rank=5, epoch=1),
        ))
        result = _run(config, plan, "restart-twice")
        assert result.verified
        assert result.relaunches == 2
        assert result.recovery_episodes == 2

    def test_epoch_scoping_keeps_events_apart(self):
        # the epoch-1 event must NOT fire during the first incarnation
        # even though its time comes first
        config = ExperimentConfig(app="hpccg", nprocs=8,
                                  design="restart-fti", faults="none")
        plan = TimedFaultPlan(events=(
            TimedFault(time=2.0, rank=3, epoch=0),
            TimedFault(time=0.5, rank=5, epoch=1),
        ))
        _run(config, plan, "epoch-order")
        epochs = [entry[0] for entry in plan.fired_log]
        assert epochs == sorted(epochs) == [0, 1]
