"""ProgressGuard: livelock detection and hook forwarding."""

from __future__ import annotations

import pytest

from repro.errors import LivelockError, SimulationError
from repro.explore.guards import ProgressGuard
from repro.explore.timeline import PhaseRecorder


class TestGuardUnit:
    def test_repeated_revoke_without_progress_raises(self):
        guard = ProgressGuard(limit=3)
        for _ in range(3):
            guard.enter(0, "ulfm.revoke", 1.0)
        with pytest.raises(LivelockError) as err:
            guard.enter(0, "ulfm.revoke", 1.0)
        assert err.value.cycle == ("ulfm.revoke",)

    def test_iteration_resets_the_counts(self):
        guard = ProgressGuard(limit=3)
        for i in range(20):
            guard.enter(0, "ulfm.revoke", float(i))
            guard.iteration(0, i, float(i))  # progress between repairs

    def test_counts_are_per_rank(self):
        guard = ProgressGuard(limit=3)
        for rank in range(8):  # one repair wave: every survivor enters
            guard.enter(rank, "ulfm.revoke", 1.0)

    def test_global_spans_counted_across_epochs(self):
        guard = ProgressGuard(limit=3)
        for n in range(3):
            guard.span(-1, "restart.redeploy", float(n), float(n) + 1)
        with pytest.raises(LivelockError) as err:
            guard.span(-1, "restart.redeploy", 4.0, 5.0)
        assert err.value.cycle == ("restart.redeploy",)

    def test_error_names_stuck_iteration(self):
        guard = ProgressGuard(limit=1)
        guard.iteration(0, 17, 1.0)
        guard.enter(0, "ulfm.revoke", 2.0)
        with pytest.raises(LivelockError) as err:
            guard.enter(0, "ulfm.revoke", 3.0)
        assert err.value.iterations_stuck_at == 17
        assert "17" in str(err.value)

    def test_livelock_is_a_simulation_error(self):
        # SimulationError is deterministic: the engine must never
        # classify a livelock as transient and retry it
        assert issubclass(LivelockError, SimulationError)

    def test_forwards_to_inner_hook(self):
        inner = PhaseRecorder()
        guard = ProgressGuard(limit=8, inner=inner)
        guard.epoch(1)
        guard.enter(3, "ckpt.L1.write", 1.0)
        guard.exit(3, "ckpt.L1.write", 1.5)
        guard.iteration(3, 5, 1.6)
        guard.span(-1, "reinit.rollback", 2.0, 2.5)
        assert len(inner.spans) == 2
        assert inner.last_iteration == 5
        assert {s.epoch for s in inner.spans} == {1}


class TestGuardIntegration:
    def test_endless_kill_becomes_structured_livelock(self):
        """A plan that re-kills the victim after every respawn would
        historically burn the watchdog; the guard converts it into a
        LivelockError naming the repeating phase."""
        from repro.core.configs import ExperimentConfig
        from repro.core.designs import DESIGNS
        from repro.core.harness import build_cluster
        from repro.faults.plans import TimedFault, TimedFaultPlan

        class EndlessKill(TimedFaultPlan):
            def due_event(self, rank, now):
                if rank == 3 and now > 4.7:
                    return TimedFault(time=now, rank=3)
                return None

        config = ExperimentConfig(app="hpccg", nprocs=8,
                                  design="ulfm-fti", faults="none")
        plan = EndlessKill(phase_hook=ProgressGuard(limit=6))
        design = DESIGNS[config.design](build_cluster(config))
        with pytest.raises(LivelockError) as err:
            design.run_job(config.make_app(), config.fti, plan,
                           label="livelock")
        assert "ulfm.revoke" in err.value.cycle

    def test_error_record_resurrects(self):
        from repro.errors import describe_error, resurrect_error

        original = LivelockError(cycle=("ulfm.revoke",),
                                 iterations_stuck_at=20)
        record = describe_error(original)
        back = resurrect_error(record)
        assert isinstance(back, LivelockError)
        assert str(back) == str(original)
