"""The at-phase / worst-of scenario kinds: registration, hygiene,
run-key stability."""

from __future__ import annotations

import pytest

from repro.core.configs import ExperimentConfig, config_to_dict, run_key
from repro.core.engine import RunUnit
from repro.errors import ConfigurationError
from repro.faults.scenarios import (
    SCENARIO_KINDS,
    SCENARIOS,
    FaultScenario,
    parse_scenario_spec,
)


class TestRegistration:
    def test_phase_kinds_are_built_ins(self):
        assert "at-phase" in SCENARIO_KINDS
        assert "worst-of" in SCENARIO_KINDS
        assert "at-phase" in SCENARIOS
        assert "worst-of" in SCENARIOS

    def test_spec_parses_positionally(self):
        scenario = parse_scenario_spec("at-phase:ckpt.L1.write~1+0.5@r3")
        assert scenario.kind == "at-phase"
        assert scenario.schedule == "ckpt.L1.write~1+0.5@r3"
        scenario = parse_scenario_spec("worst-of:32")
        assert scenario.kind == "worst-of" and scenario.count == 32

    def test_labels(self):
        assert parse_scenario_spec(
            "at-phase:ulfm.shrink").label() == "at-phase[ulfm.shrink]"
        assert parse_scenario_spec("worst-of:8").label() == "worst-of8"


class TestValidation:
    def test_at_phase_needs_a_parseable_schedule(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(kind="at-phase")  # empty schedule
        with pytest.raises(ConfigurationError):
            FaultScenario(kind="at-phase", schedule="bad atom!")

    def test_field_hygiene_rejects_unused_fields(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(kind="at-phase", schedule="ulfm.shrink",
                          count=3)
        with pytest.raises(ConfigurationError):
            FaultScenario(kind="worst-of", count=8,
                          schedule="ulfm.shrink")
        with pytest.raises(ConfigurationError):
            FaultScenario(kind="single", schedule="ulfm.shrink")

    def test_make_plan_points_at_the_harness(self):
        scenario = FaultScenario(kind="at-phase", schedule="ulfm.shrink")
        with pytest.raises(ConfigurationError, match="harness"):
            scenario.make_plan(nprocs=8, niters=60, seed=1, nnodes=4)


class TestHazardSemantics:
    def test_deterministic_kinds_have_zero_rate(self):
        scenario = FaultScenario(kind="at-phase",
                                 schedule="ckpt.L1.write;ulfm.shrink")
        assert scenario.rate(60) == 0.0
        assert FaultScenario(kind="worst-of", count=8).rate(60) == 0.0

    def test_expected_events_is_the_exact_count(self):
        scenario = FaultScenario(kind="at-phase",
                                 schedule="ckpt.L1.write;ulfm.shrink")
        assert scenario.expected_events(60) == 2.0
        assert FaultScenario(kind="worst-of",
                             count=8).expected_events(60) == 1.0

    def test_renewal_kinds_unchanged(self):
        single = FaultScenario(kind="single")
        assert single.expected_events(60) == pytest.approx(
            single.rate(60) * (60 - single.min_iteration))


class TestRunKeyStability:
    def test_legacy_payload_has_no_schedule_field(self):
        # the schedule field serializes only when non-default, so every
        # pre-existing run key survives the field's addition
        config = ExperimentConfig(app="hpccg", nprocs=8,
                                  design="ulfm-fti", inject_fault=True)
        faults = config_to_dict(config)["faults"]
        assert "schedule" not in faults
        assert set(faults) == {"kind", "count", "node_count",
                               "mtbf_iters", "window", "min_iteration"}

    def test_at_phase_payload_carries_the_schedule(self):
        config = ExperimentConfig(app="hpccg", nprocs=8,
                                  design="ulfm-fti",
                                  faults="at-phase:ulfm.shrink@r3")
        faults = config_to_dict(config)["faults"]
        assert faults["schedule"] == "ulfm.shrink@r3"

    def test_distinct_schedules_mint_distinct_keys(self):
        def key(spec):
            config = ExperimentConfig(app="hpccg", nprocs=8,
                                      design="ulfm-fti", faults=spec)
            return run_key(config, 0)

        assert key("at-phase:ulfm.shrink@r3") \
            != key("at-phase:ulfm.shrink@r4")
        assert key("at-phase:ulfm.shrink@r3") \
            == key("at-phase:ulfm.shrink@r3")

    def test_scenario_dict_roundtrip(self):
        scenario = FaultScenario(kind="at-phase",
                                 schedule="ckpt.L1.write~1+0.5@r3")
        assert FaultScenario.from_dict(scenario.to_dict()) == scenario


class TestUnitExecution:
    def test_at_phase_unit_runs_and_replays_bit_identically(self):
        config = ExperimentConfig(
            app="hpccg", nprocs=8, design="ulfm-fti",
            faults="at-phase:ckpt.L1.write~1+0.05@r3")
        from repro.core.engine import execute_unit

        first = execute_unit(RunUnit(config, 0))
        second = execute_unit(RunUnit(config, 0))
        assert first.verified
        assert first.recovery_episodes >= 1
        assert first.breakdown.total_seconds \
            == second.breakdown.total_seconds
        assert first.fault_events == second.fault_events

    def test_timed_events_survive_store_serialization(self):
        config = ExperimentConfig(
            app="hpccg", nprocs=8, design="ulfm-fti",
            faults="at-phase:ckpt.L1.write~1+0.05@r3")
        from repro.core.breakdown import (
            run_result_to_dict,
            try_run_result_from_dict,
        )
        from repro.core.engine import execute_unit

        result = execute_unit(RunUnit(config, 0))
        back = try_run_result_from_dict(run_result_to_dict(result))
        assert back.breakdown.total_seconds \
            == result.breakdown.total_seconds
