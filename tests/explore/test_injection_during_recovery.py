"""Exact-time injection during recovery (regression).

Iteration-indexed plans can only kill at ITER_MARK boundaries, so a
second fault scheduled while a repair is in flight used to be deferred
to the victim's next application iteration — after the recovery had
already completed, which is precisely the moment an adversarial
schedule is *not* aiming at. Timed plans are consulted by the scheduler
before every resume, so the kill lands inside the repair protocol step.
"""

from __future__ import annotations

import pytest

from repro.core.configs import ExperimentConfig
from repro.core.designs import DESIGNS
from repro.core.harness import build_cluster
from repro.explore.timeline import PhaseRecorder, probe_timeline
from repro.faults.plans import TimedFault, TimedFaultPlan
from repro.simmpi.runtime import Runtime


def _config():
    return ExperimentConfig(app="hpccg", nprocs=8, design="ulfm-fti",
                            faults="none")


def _run_with_kill_trace(config, plan):
    """Run the job recording every (rank, actual kill time)."""
    kills = []
    original = Runtime.kill

    def traced(self, rank, iteration=-1):
        if self._ranks[rank].status.name != "DEAD":
            kills.append((rank, self.clock.now(rank)))
        return original(self, rank, iteration)

    Runtime.kill = traced
    try:
        design = DESIGNS[config.design](build_cluster(config))
        result = design.run_job(config.make_app(), config.fti, plan,
                                label="trace")
    finally:
        Runtime.kill = original
    return result, kills


class TestSecondEventInsideRepair:
    def test_delivered_to_the_repair_step_not_the_next_iteration(self):
        config = _config()
        clean, _ = probe_timeline(config)
        ckpt = clean.resolve("ckpt.L1.write", 1)
        first = TimedFault(time=ckpt.start + 0.05, rank=3)
        # where does the repair provoked by the first kill live?
        repaired, _ = probe_timeline(config, (first,))
        shrink = repaired.resolve("ulfm.shrink", 0)
        agree = repaired.resolve("ulfm.agree", 0)
        second = TimedFault(time=shrink.start + 0.1, rank=5)

        recorder = PhaseRecorder()
        plan = TimedFaultPlan(events=(first, second),
                              phase_hook=recorder)
        result, kills = _run_with_kill_trace(config, plan)

        assert result.verified  # structurally recovered, no hang
        killed = dict(kills)
        assert set(killed) == {3, 5}
        # the second kill must land inside the in-flight repair window
        # (between the survivors entering repair and agreement), not be
        # deferred past recovery to rank 5's next application iteration
        assert shrink.start <= killed[5] <= agree.end
        # both scheduled events actually fired, once each
        assert [entry[2] for entry in plan.fired_log] == [3, 5]

    def test_overshoot_clamps_forward_never_backwards(self):
        # a victim blocked in a long op overshoots the scheduled time;
        # the kill fires at its current clock (signal-between-
        # instructions), which must not move any clock backwards
        config = _config()
        clean, _ = probe_timeline(config)
        ckpt = clean.resolve("ckpt.L1.write", 0)
        plan = TimedFaultPlan(events=(
            TimedFault(time=ckpt.start + 0.01, rank=0),))
        result, kills = _run_with_kill_trace(config, plan)
        assert result.verified
        (rank, when), = kills[:1]
        assert rank == 0
        assert when >= ckpt.start + 0.01

    def test_distinct_placements_change_the_outcome(self):
        # mid-repair placement is a genuinely different experiment from
        # post-recovery placement: the makespans differ
        config = _config()
        clean, _ = probe_timeline(config)
        ckpt = clean.resolve("ckpt.L1.write", 1)
        first = TimedFault(time=ckpt.start + 0.05, rank=3)
        repaired, _ = probe_timeline(config, (first,))
        spawn = repaired.resolve("ulfm.spawn", 0)
        read = repaired.resolve("ckpt.L1.read", 0)

        def makespan(second_time):
            plan = TimedFaultPlan(events=(
                first, TimedFault(time=second_time, rank=4)))
            design = DESIGNS[config.design](build_cluster(config))
            result = design.run_job(config.make_app(), config.fti, plan,
                                    label="placement")
            assert result.verified
            return result.breakdown.total_seconds

        mid_spawn = makespan(spawn.start + 0.5)
        post_recovery = makespan(read.end + 0.5)
        assert mid_spawn != pytest.approx(post_recovery)
