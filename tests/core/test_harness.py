"""Experiment harness: repetitions, averaging, fault-plan seeding."""

import pytest

from repro.core.configs import ExperimentConfig
from repro.core.harness import (
    build_cluster,
    make_fault_plan,
    run_experiment,
    run_experiment_averaged,
)


def small_config(**kwargs):
    defaults = dict(app="minivite", design="reinit-fti", nprocs=8,
                    nnodes=4)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def test_build_cluster_honours_nnodes():
    assert build_cluster(small_config()).nnodes == 4


def test_fault_plan_empty_without_injection():
    cfg = small_config()
    plan = make_fault_plan(cfg, cfg.make_app(), rep=0)
    assert plan.nfaults == 0


def test_fault_plan_differs_per_repetition():
    cfg = small_config(inject_fault=True)
    app = cfg.make_app()
    plans = {make_fault_plan(cfg, app, rep=r).events for r in range(8)}
    assert len(plans) > 1


def test_fault_plan_deterministic_for_same_rep():
    cfg = small_config(inject_fault=True, seed=3)
    app = cfg.make_app()
    assert (make_fault_plan(cfg, app, 2).events
            == make_fault_plan(cfg, app, 2).events)


def test_run_experiment_single():
    result = run_experiment(small_config())
    assert result.verified
    assert result.breakdown.total_seconds > 0


def test_no_fault_averaging_collapses_to_one_run():
    avg = run_experiment_averaged(small_config())
    assert avg.repetitions == 1
    assert len(avg.runs) == 1


def test_fault_averaging_uses_five_reps_by_default():
    avg = run_experiment_averaged(small_config(inject_fault=True))
    assert avg.repetitions == 5
    assert len(avg.runs) == 5
    assert avg.verified


def test_explicit_repetitions_respected():
    avg = run_experiment_averaged(small_config(inject_fault=True),
                                  repetitions=2)
    assert avg.repetitions == 2


def test_average_breakdown_within_run_range():
    avg = run_experiment_averaged(small_config(inject_fault=True),
                                  repetitions=3)
    totals = [r.breakdown.total_seconds for r in avg.runs]
    assert min(totals) <= avg.breakdown.total_seconds <= max(totals)


def test_experiment_is_reproducible():
    a = run_experiment(small_config(inject_fault=True, seed=7))
    b = run_experiment(small_config(inject_fault=True, seed=7))
    assert a.breakdown.total_seconds == b.breakdown.total_seconds
    assert a.fault_events == b.fault_events


def test_single_run_is_repetition_zero():
    """Regression: run_experiment once built RunUnit(config,
    rep=config.seed), so a seeded single run silently used the wrong
    repetition index. A single run is repetition 0 by definition and
    must be bit-identical to a one-repetition averaged run."""
    cfg = small_config(inject_fault=True, seed=9)
    single = run_experiment(cfg)
    averaged = run_experiment_averaged(cfg, repetitions=1)
    assert single == averaged.runs[0]
    # the old bug: rep=seed drew a different fault location
    assert single.fault_events == averaged.runs[0].fault_events
    assert single.breakdown == averaged.runs[0].breakdown


def test_scenario_plan_derivation_per_repetition():
    cfg = small_config(faults="independent:2", seed=3)
    app = cfg.make_app()
    plans = {make_fault_plan(cfg, app, rep=r).events for r in range(6)}
    assert len(plans) > 1  # repetitions draw distinct multi-event plans
    assert all(len(events) == 2 for events in plans)
    assert (make_fault_plan(cfg, app, 4).events
            == make_fault_plan(cfg, app, 4).events)
