"""Report rendering: figure series and Table I text."""

from repro.core.breakdown import TimeBreakdown
from repro.core.report import (
    format_breakdown_series,
    format_recovery_series,
    format_table1,
    summarize_ratios,
)


def test_breakdown_series_contains_rows():
    rows = [(64, "restart-fti", TimeBreakdown(10, 2, 0, 0)),
            (128, "reinit-fti", TimeBreakdown(12, 2, 1, 0))]
    text = format_breakdown_series("Figure 5 (hpccg)", rows)
    assert "Figure 5" in text
    assert "RESTART-FTI" in text and "REINIT-FTI" in text
    assert "64" in text and "128" in text
    assert "8.00" in text  # app time of the first row


def test_recovery_series():
    text = format_recovery_series("Figure 7", [(64, "ulfm-fti", 3.5)],
                                  x_label="#Processes")
    assert "ULFM-FTI" in text
    assert "3.50" in text
    assert "#Processes" in text


def test_table1_text_is_faithful():
    text = format_table1()
    assert "TABLE I" in text
    assert "-problem 2 -n 20 20 20" in text
    assert "-p 3 -l -n 512000" in text
    assert "64, 512" in text  # lulesh row


def test_summarize_ratios():
    text = summarize_ratios({
        "reinit-fti": [1.0], "ulfm-fti": [4.0], "restart-fti": [16.0]})
    assert "4.0x" in text
    assert "16.0x" in text
    assert "ULFM" in text and "Restart" in text


def test_summarize_ratios_handles_missing():
    text = summarize_ratios({"reinit-fti": [1.0]})
    assert "ratios" in text
