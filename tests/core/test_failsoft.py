"""Failure containment: on_error policies, retry/backoff, timeouts,
structured error records, watchdog, and resume robustness.

The expensive invariant defended throughout: fail-soft machinery must
never change *successful* results — every recovery path (retry after a
transient, resume after an interrupt, timeout-then-retry) ends with
run results bit-identical to a plain serial execution of the same unit.
"""

import json
import os
import signal

import pytest

from repro.core.configs import ExperimentConfig
from repro.core.engine import (
    CampaignEngine,
    RunUnit,
    campaign_units,
    execute_unit,
    import_plugins,
    parse_on_error,
)
from repro.core.events import (
    CampaignAborted,
    CampaignFinished,
    UnitCompleted,
    UnitFailed,
    UnitRetrying,
    UnitStarted,
)
from repro.core.store import ResultStore
from repro.errors import (
    ConfigurationError,
    ErrorRecord,
    SimulationError,
    UnitExecutionError,
    UnitTimeoutError,
    WatchdogError,
    WorkerLostError,
    describe_error,
    is_transient,
    resurrect_error,
)


def mini_config(**kwargs):
    defaults = dict(app="hpccg", design="reinit-fti", nprocs=8, nnodes=4,
                    inject_fault=True)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


# -- policy parsing ---------------------------------------------------------
def test_parse_on_error():
    assert parse_on_error("abort") == ("abort", 0)
    assert parse_on_error("continue") == ("continue", 0)
    assert parse_on_error("retry") == ("continue", 1)
    assert parse_on_error("retry:4") == ("continue", 4)
    assert parse_on_error(None) == ("abort", 0)
    for bad in ("halt", "retry:0", "retry:-1", "retry:x", "continue:2"):
        with pytest.raises(ConfigurationError):
            parse_on_error(bad)


def test_engine_rejects_bad_failure_policy_knobs():
    with pytest.raises(ConfigurationError):
        CampaignEngine(retries=-1)
    with pytest.raises(ConfigurationError):
        CampaignEngine(timeout=0)
    with pytest.raises(ConfigurationError):
        CampaignEngine(sim_watchdog=0)
    # retry:N sugar folds into continue + retries (max with explicit)
    engine = CampaignEngine(on_error="retry:3", retries=1)
    assert engine.on_error == "continue"
    assert engine.retries == 3


# -- structured error records ----------------------------------------------
def test_error_record_roundtrip_and_transiency():
    record = describe_error(OSError("disk on fire"))
    assert record.transient  # harness-level I/O: retryable
    assert record.type == "OSError"
    assert "disk on fire" in record.message
    assert record == ErrorRecord.from_dict(
        json.loads(json.dumps(record.to_dict())))

    try:
        raise SimulationError("impossible state")
    except SimulationError as exc:
        det = describe_error(exc)
    assert not det.transient  # simulator errors are deterministic
    assert det.type == "repro.errors.SimulationError"
    assert "test_error_record_roundtrip" in det.traceback

    assert is_transient(WorkerLostError())
    assert is_transient(UnitTimeoutError(5.0))
    assert not is_transient(WatchdogError(100))


def test_resurrect_error_rebuilds_original_type():
    record = describe_error(SimulationError("bad state"))
    exc = resurrect_error(record)
    assert type(exc) is SimulationError
    assert str(exc) == "bad state"
    assert exc.error_record is record


def test_resurrect_error_degrades_gracefully():
    # an exception class whose __init__ demands extra arguments cannot
    # be rebuilt from (message,) — must degrade, never crash
    from repro.core.chaos import StubbornChaosError

    record = describe_error(StubbornChaosError(13, "detail"))
    exc = resurrect_error(record)
    assert isinstance(exc, UnitExecutionError)
    assert exc.record == record
    # unknown modules and non-exception names degrade the same way
    for bogus in ("no.such.module.Error", "os.path"):
        fake = ErrorRecord(type=bogus, message="x", traceback="")
        assert isinstance(resurrect_error(fake), UnitExecutionError)


# -- import_plugins error chaining -----------------------------------------
def test_import_plugins_chains_the_original_importerror():
    with pytest.raises(ConfigurationError) as excinfo:
        import_plugins(["definitely_not_an_installed_module_xyz"])
    assert isinstance(excinfo.value.__cause__, ImportError)


# -- serial fail-soft -------------------------------------------------------
def test_serial_continue_records_failures_and_finishes(monkeypatch):
    good = mini_config()
    bad = mini_config(design="restart-fti")
    units = campaign_units([good, bad], runs=1)
    real = execute_unit

    def flaky(unit):
        if unit.config.design == "restart-fti":
            raise SimulationError("poisoned cell")
        return real(unit)

    monkeypatch.setattr("repro.core.engine.execute_unit", flaky)
    engine = CampaignEngine(on_error="continue", store_path="memory:")
    events = list(engine.stream(units))
    finished = events[-1]
    assert isinstance(finished, CampaignFinished)
    assert finished.failed == 1
    assert engine.executed == 2 and engine.failed == 1
    failed = [e for e in events if isinstance(e, UnitFailed)]
    assert len(failed) == 1
    assert failed[0].record.type == "repro.errors.SimulationError"
    bad_key = units[1].key
    assert engine.failures[bad_key].message == "poisoned cell"
    # the failure is persisted as a store failure record...
    stored = engine.store.load_failures()
    assert stored[bad_key]["error"]["message"] == "poisoned cell"
    # ...which resume ignores, so a fixed bug re-runs the unit
    assert bad_key not in engine.store.load_completed()
    # the successful unit is untouched by the fail-soft machinery
    assert finished.results[units[0].key] == real(units[0])


def test_serial_abort_still_raises(monkeypatch):
    monkeypatch.setattr("repro.core.engine.execute_unit",
                        lambda unit: (_ for _ in ()).throw(
                            SimulationError("boom")))
    engine = CampaignEngine()  # on_error defaults to abort
    with pytest.raises(SimulationError, match="boom"):
        list(engine.stream(campaign_units([mini_config()], runs=1)))


def test_serial_transient_retry_preserves_result(monkeypatch):
    config = mini_config()
    unit = RunUnit(config, 0)
    expected = execute_unit(unit)
    calls = {"n": 0}
    real = execute_unit

    def once_flaky(u):
        calls["n"] += 1
        if calls["n"] == 1:
            raise OSError("transient store hiccup")
        return real(u)

    monkeypatch.setattr("repro.core.engine.execute_unit", once_flaky)
    engine = CampaignEngine(retries=2, backoff_base=0.01)
    events = list(engine.stream([unit]))
    retries = [e for e in events if isinstance(e, UnitRetrying)]
    assert len(retries) == 1
    assert retries[0].attempt == 1
    assert retries[0].error.transient
    assert engine.retried == 1 and engine.failed == 0
    # the retried run is bit-identical to an undisturbed serial run
    assert events[-1].results[unit.key] == expected


def test_deterministic_errors_never_retry(monkeypatch):
    monkeypatch.setattr("repro.core.engine.execute_unit",
                        lambda unit: (_ for _ in ()).throw(
                            SimulationError("always")))
    engine = CampaignEngine(on_error="continue", retries=3,
                            backoff_base=0.01)
    events = list(engine.stream([RunUnit(mini_config(), 0)]))
    assert not [e for e in events if isinstance(e, UnitRetrying)]
    failed = [e for e in events if isinstance(e, UnitFailed)]
    assert len(failed) == 1 and failed[0].attempt == 1


def test_retries_exhausted_fails_with_last_record(monkeypatch):
    monkeypatch.setattr("repro.core.engine.execute_unit",
                        lambda unit: (_ for _ in ()).throw(
                            OSError("still broken")))
    engine = CampaignEngine(on_error="continue", retries=2,
                            backoff_base=0.01)
    events = list(engine.stream([RunUnit(mini_config(), 0)]))
    retries = [e for e in events if isinstance(e, UnitRetrying)]
    failed = [e for e in events if isinstance(e, UnitFailed)]
    assert [r.attempt for r in retries] == [1, 2]
    assert len(failed) == 1
    assert failed[0].attempt == 3  # the attempt that exhausted the budget
    assert failed[0].record.transient


# -- simulator watchdog -----------------------------------------------------
def test_watchdog_env_turns_livelock_budget_into_error(monkeypatch):
    monkeypatch.setenv("MATCH_SIM_WATCHDOG", "50")
    with pytest.raises(WatchdogError) as excinfo:
        execute_unit(RunUnit(mini_config(), 0))
    assert excinfo.value.steps == 50
    assert not is_transient(excinfo.value)  # deterministic: never retried


def test_watchdog_generous_budget_changes_nothing(monkeypatch):
    unit = RunUnit(mini_config(), 0)
    baseline = execute_unit(unit)
    monkeypatch.setenv("MATCH_SIM_WATCHDOG", str(10 ** 9))
    assert execute_unit(unit) == baseline


def test_engine_exports_watchdog_budget_serially(monkeypatch):
    monkeypatch.delenv("MATCH_SIM_WATCHDOG", raising=False)
    engine = CampaignEngine(on_error="continue", sim_watchdog=10)
    events = list(engine.stream([RunUnit(mini_config(), 0)]))
    failed = [e for e in events if isinstance(e, UnitFailed)]
    assert len(failed) == 1
    assert failed[0].record.type == "repro.errors.WatchdogError"
    # the budget must not leak into the environment past the run
    assert "MATCH_SIM_WATCHDOG" not in os.environ


# -- store failure records --------------------------------------------------
def test_store_failure_records_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "failures.jsonl")
    record = describe_error(SimulationError("sad")).to_dict()
    store.append_failure("k1", {"app": "x"}, 0, record)
    assert store.load_completed() == {}
    assert store.load_failures()["k1"]["error"]["message"] == "sad"
    assert store.corrupt_lines == 0  # failure records are not corruption
    # a later success supersedes the stale failure
    store.append("k1", {"app": "x"}, 0, {"result": "fine"})
    assert store.load_failures() == {}
    assert store.load_completed()["k1"]["result"] == {"result": "fine"}


# -- resume robustness ------------------------------------------------------
def test_resume_after_store_truncated_mid_record(tmp_path):
    config = mini_config()
    units = campaign_units([config], runs=2)
    path = tmp_path / "sweep.jsonl"
    baseline = CampaignEngine(store_path=str(path)).run(units)
    # simulate a kill mid-write: chop the trailing record in half
    raw = path.read_bytes()
    lines = raw.splitlines(keepends=True)
    assert len(lines) == 2
    path.write_bytes(lines[0] + lines[1][:len(lines[1]) // 2])

    engine = CampaignEngine(store_path=str(path), resume=True)
    resumed = engine.run(units)
    assert engine.skipped == 1 and engine.executed == 1
    assert resumed == baseline  # re-run fills the hole bit-identically
    assert len(ResultStore(path).load_completed()) == 2


def test_resume_reruns_units_with_failure_records(tmp_path, monkeypatch):
    config = mini_config()
    unit = RunUnit(config, 0)
    path = tmp_path / "sweep.jsonl"
    with monkeypatch.context() as patched:
        patched.setattr("repro.core.engine.execute_unit",
                        lambda u: (_ for _ in ()).throw(
                            SimulationError("since-fixed bug")))
        broken = CampaignEngine(on_error="continue", store_path=str(path))
        broken.run([unit])
    assert broken.failed == 1
    assert ResultStore(path).load_failures()

    engine = CampaignEngine(store_path=str(path), resume=True)
    results = engine.run([unit])
    assert engine.skipped == 0 and engine.executed == 1  # re-ran, not skipped
    assert results[unit.key] == execute_unit(unit)
    store = ResultStore(path)
    assert store.load_failures() == {}  # success superseded the failure
    assert unit.key in store.load_completed()


def test_interrupt_mid_campaign_then_resume_bit_identical(tmp_path,
                                                          monkeypatch):
    config = mini_config()
    units = campaign_units([config], runs=2)
    baseline = CampaignEngine().run(units)
    path = tmp_path / "sweep.jsonl"
    real = execute_unit
    calls = {"n": 0}

    def interrupting(u):
        calls["n"] += 1
        if calls["n"] == 2:
            raise KeyboardInterrupt
        return real(u)

    with monkeypatch.context() as patched:
        patched.setattr("repro.core.engine.execute_unit", interrupting)
        engine = CampaignEngine(store_path=str(path))
        events = []
        with pytest.raises(KeyboardInterrupt):
            for event in engine.stream(units):
                events.append(event)
    assert isinstance(events[-1], CampaignAborted)
    assert events[-1].completed == 1  # the first unit landed in the store

    resumed_engine = CampaignEngine(store_path=str(path), resume=True)
    resumed = resumed_engine.run(units)
    assert resumed_engine.skipped == 1 and resumed_engine.executed == 1
    assert resumed == baseline


# -- parallel dispatch loop -------------------------------------------------
def test_parallel_unit_started_at_dispatch_time():
    """UnitStarted is emitted when a unit is handed to a worker — at
    most ``jobs`` units are started before the first completion (the
    historical imap path announced the whole sweep up front)."""
    engine = CampaignEngine(jobs=2)
    units = campaign_units([mini_config(app="minivite")], runs=4)
    started_before_first_completion = 0
    for event in engine.stream(units):
        if isinstance(event, UnitStarted):
            started_before_first_completion += 1
        elif isinstance(event, UnitCompleted):
            break
    assert started_before_first_completion <= 2


def test_parallel_unpicklable_worker_exception_contained(tmp_path,
                                                         monkeypatch):
    """Regression: an exception class that cannot survive a pickle
    round-trip used to crash the pool in the *parent*; structured error
    records must contain it as an ordinary unit failure."""
    monkeypatch.setenv("MATCH_CHAOS", json.dumps({
        "dir": str(tmp_path / "chaos"),
        "rules": [{"mode": "unpicklable", "match": "*", "times": -1}],
    }))
    engine = CampaignEngine(jobs=2, on_error="continue",
                            store_path="memory:")
    units = campaign_units([mini_config(app="minivite")], runs=2)
    events = list(engine.stream(units))
    assert isinstance(events[-1], CampaignFinished)
    assert events[-1].failed == 2
    for unit in units:
        record = engine.failures[unit.key]
        assert record.type == "repro.core.chaos.StubbornChaosError"
        assert "stubborn chaos failure" in record.message
        assert not record.transient
    assert len(engine.store.load_failures()) == 2


def test_timeout_kills_hung_worker_and_retry_succeeds(tmp_path,
                                                      monkeypatch):
    """A hung worker is killed at the deadline, attributed to its unit
    as a transient UnitTimeoutError, and the retry (the chaos rule has
    been claimed) produces the bit-identical result."""
    monkeypatch.setenv("MATCH_CHAOS", json.dumps({
        "dir": str(tmp_path / "chaos"),
        "rules": [{"mode": "hang", "match": "*", "times": 1,
                   "hang_seconds": 120}],
    }))
    unit = RunUnit(mini_config(app="minivite", inject_fault=False), 0)
    expected = execute_unit(unit)
    engine = CampaignEngine(jobs=1, timeout=5.0, retries=1,
                            backoff_base=0.01)
    events = list(engine.stream([unit]))
    retries = [e for e in events if isinstance(e, UnitRetrying)]
    assert len(retries) == 1
    assert retries[0].error.type == "repro.errors.UnitTimeoutError"
    assert retries[0].error.transient
    assert engine.failed == 0
    assert events[-1].results[unit.key] == expected


def test_parallel_sigterm_drains_and_aborts(tmp_path):
    """SIGTERM mid-campaign: the dispatch loop drains in-flight results
    into the store, emits CampaignAborted, and exits via
    KeyboardInterrupt; a resume completes the sweep bit-identically."""
    import multiprocessing
    import sys

    script = tmp_path / "drive.py"
    store = tmp_path / "sweep.jsonl"
    script.write_text(
        "import sys\n"
        "from repro.core.configs import ExperimentConfig\n"
        "from repro.core.engine import CampaignEngine, campaign_units\n"
        "from repro.core.events import CampaignAborted, UnitCompleted\n"
        "\n"
        "\n"
        "def main():\n"
        "    config = ExperimentConfig(app='minivite', design='reinit-fti',\n"
        "                              nprocs=8, nnodes=4,\n"
        "                              inject_fault=True)\n"
        "    units = campaign_units([config], runs=4)\n"
        "    engine = CampaignEngine(jobs=2, store_path=%r)\n"
        "    aborted = False\n"
        "    try:\n"
        "        for event in engine.stream(units):\n"
        "            if isinstance(event, UnitCompleted):\n"
        "                print('COMPLETED', flush=True)\n"
        "            if isinstance(event, CampaignAborted):\n"
        "                aborted = True\n"
        "                print('ABORTED', event.reason, flush=True)\n"
        "    except KeyboardInterrupt:\n"
        "        sys.exit(42 if aborted else 3)\n"
        "    sys.exit(0)\n"
        "\n"
        "\n"
        "if __name__ == '__main__':\n"
        "    main()\n" % str(store))
    import subprocess
    import time as _time

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    proc = subprocess.Popen([sys.executable, str(script)],
                            stdout=subprocess.PIPE, text=True, env=env)
    # wait for the first completed unit so the drain has real work
    line = proc.stdout.readline()
    assert "COMPLETED" in line
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=120)
    assert proc.returncode == 42, out
    assert "ABORTED SIGTERM" in out
    completed = ResultStore(store).load_completed()
    assert completed  # drained results were flushed before exiting

    config = mini_config(app="minivite")
    units = campaign_units([config], runs=4)
    engine = CampaignEngine(store_path=str(store), resume=True)
    resumed = engine.run(units)
    assert engine.skipped == len(completed)
    baseline = CampaignEngine().run(units)
    assert resumed == baseline
