"""CLI: argument parsing and command output."""

import pytest

from repro.cli import build_parser, main


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "TABLE I" in out
    assert "minivite" in out


def test_run_command(capsys):
    code = main(["run", "--app", "minivite", "--design", "reinit-fti",
                 "--nprocs", "8", "--reps", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "verified: True" in out
    assert "total=" in out


def test_run_command_with_fault(capsys):
    code = main(["run", "--app", "minivite", "--design", "reinit-fti",
                 "--nprocs", "8", "--fault", "--reps", "1"])
    assert code == 0
    assert "verified: True" in capsys.readouterr().out


def test_figure_command_unknown_id(capsys):
    assert main(["figure", "--id", "99"]) == 2


def test_parser_rejects_bad_design():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--app", "x", "--design", "bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
