"""CLI: argument parsing and command output."""

import pytest

from repro.cli import build_parser, main


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "TABLE I" in out
    assert "minivite" in out


def test_run_command(capsys):
    code = main(["run", "--app", "minivite", "--design", "reinit-fti",
                 "--nprocs", "8", "--reps", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "verified: True" in out
    assert "total=" in out


def test_run_command_with_fault(capsys):
    code = main(["run", "--app", "minivite", "--design", "reinit-fti",
                 "--nprocs", "8", "--fault", "--reps", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "verified: True" in out
    assert "faults: r" in out  # the injected (rank, iteration) is shown


def test_run_command_with_scenario(capsys):
    code = main(["run", "--app", "minivite", "--design", "ulfm-fti",
                 "--nprocs", "8", "--faults", "independent:2:node=1",
                 "--fti-level", "2", "--reps", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fault=kx2+n1" in out
    assert "verified: True" in out
    assert "(node)" in out


def test_run_fault_flag_is_deprecated_alias(capsys):
    """--fault routes through --faults single: one warning, identical
    output."""
    args = ["run", "--app", "minivite", "--design", "reinit-fti",
            "--nprocs", "8", "--reps", "1"]
    with pytest.warns(DeprecationWarning, match="--faults single"):
        assert main(args + ["--fault"]) == 0
    legacy = capsys.readouterr()
    # real CLI users see the notice too (default filters would hide
    # the DeprecationWarning outside __main__)
    assert "deprecated" in legacy.err
    assert main(args + ["--faults", "single"]) == 0
    assert capsys.readouterr().out == legacy.out


def test_run_fault_flag_conflicts_with_none_scenario(capsys):
    with pytest.warns(DeprecationWarning):
        code = main(["run", "--app", "minivite", "--design", "reinit-fti",
                     "--nprocs", "8", "--fault", "--faults", "none",
                     "--reps", "1"])
    assert code == 2
    assert "contradicts" in capsys.readouterr().err


def test_run_command_rejects_bad_scenario(capsys):
    code = main(["run", "--app", "minivite", "--design", "reinit-fti",
                 "--nprocs", "8", "--faults", "meteor:3", "--reps", "1"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_campaign_with_scenario(capsys):
    code = main(["campaign", "--app", "minivite", "--design", "reinit-fti",
                 "--nprocs", "8", "--nnodes", "4", "--runs", "2",
                 "--faults", "poisson:12"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fault=poisson12" in out
    assert "faults/run:" in out
    assert "executed 2 run(s)" in out


def test_figure_command_unknown_id(capsys):
    assert main(["figure", "--id", "99"]) == 2


def test_parser_rejects_bad_design():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--app", "x", "--design", "bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


CAMPAIGN_ARGS = ["--app", "minivite", "--design", "reinit-fti",
                 "--nprocs", "8", "--nnodes", "4", "--runs", "2"]


def test_campaign_command_with_store_and_report(tmp_path, capsys):
    store = str(tmp_path / "sweep.jsonl")
    code = main(["campaign"] + CAMPAIGN_ARGS + ["--store", store])
    assert code == 0
    out = capsys.readouterr().out
    assert "executed 2 run(s)" in out

    # resume executes nothing
    assert main(["campaign"] + CAMPAIGN_ARGS
                + ["--store", store, "--resume"]) == 0
    assert "executed 0 run(s)" in capsys.readouterr().out

    # the store satisfies a completeness check for its own matrix
    assert main(["campaign-report", "--store", store, "--check-complete"]
                + CAMPAIGN_ARGS) == 0
    assert "complete: all 2 matrix runs" in capsys.readouterr().out


def test_campaign_progress_streams_events(capsys):
    assert main(["campaign"] + CAMPAIGN_ARGS + ["--progress"]) == 0
    out = capsys.readouterr().out
    assert "[1/2] done" in out
    assert "[2/2] done" in out
    assert "rep 1" in out


def test_campaign_report_format_renderers(tmp_path, capsys):
    store = str(tmp_path / "sweep.jsonl")
    assert main(["campaign"] + CAMPAIGN_ARGS + ["--store", store]) == 0
    capsys.readouterr()
    assert main(["campaign-report", "--store", store,
                 "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("label,runs,")
    assert main(["campaign-report", "--store", store,
                 "--format", "report"]) == 0
    assert "recovery:" in capsys.readouterr().out
    assert main(["campaign-report", "--store", store,
                 "--format", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "unknown report renderer" in err and "matrix" in err


def test_campaign_report_accepts_backend_spec(tmp_path, capsys):
    """The same backend:location --store spec works on both the sweep
    and report sides."""
    store = str(tmp_path / "sweep.jsonl")
    assert main(["campaign"] + CAMPAIGN_ARGS
                + ["--store", "jsonl:" + store]) == 0
    capsys.readouterr()
    assert main(["campaign-report", "--store", "jsonl:" + store]) == 0
    assert "Merged campaign stores" in capsys.readouterr().out


def test_campaign_report_detects_missing_runs(tmp_path, capsys):
    store = tmp_path / "sweep.jsonl"
    assert main(["campaign"] + CAMPAIGN_ARGS
                + ["--store", str(store)]) == 0
    lines = store.read_text().splitlines()
    store.write_text(lines[0] + "\n")
    assert main(["campaign-report", "--store", str(store),
                 "--check-complete"] + CAMPAIGN_ARGS) == 1
    captured = capsys.readouterr()
    assert "INCOMPLETE" in captured.err


def test_campaign_rejects_single_run(capsys):
    assert main(["campaign", "--app", "minivite", "--design", "reinit-fti",
                 "--nprocs", "8", "--nnodes", "4", "--runs", "1"]) == 2
    assert "at least two runs" in capsys.readouterr().err


def test_campaign_rejects_bad_shard_spec(capsys):
    assert main(["campaign"] + CAMPAIGN_ARGS + ["--shard", "9/2"]) == 2
    assert "shard" in capsys.readouterr().err


def test_campaign_rejects_shard_selecting_nothing(capsys):
    # 2 runs round-robined over 3 shards leaves shard 3/3 empty; a CI
    # job with that typo must fail, not pass green having run nothing
    assert main(["campaign"] + CAMPAIGN_ARGS + ["--shard", "3/3"]) == 2
    assert "zero" in capsys.readouterr().err


def test_campaign_report_counts_undecodable_records_as_missing(tmp_path,
                                                               capsys):
    import json

    store = tmp_path / "s.jsonl"
    assert main(["campaign"] + CAMPAIGN_ARGS + ["--store", str(store)]) == 0
    lines = store.read_text().splitlines()
    record = json.loads(lines[1])
    record["result"] = {"v": 1}  # decodable JSON, broken payload
    store.write_text(lines[0] + "\n" + json.dumps(record) + "\n")
    capsys.readouterr()
    assert main(["campaign-report", "--store", str(store),
                 "--check-complete"] + CAMPAIGN_ARGS) == 1
    assert "INCOMPLETE" in capsys.readouterr().err


def test_campaign_rejects_unknown_design(capsys):
    assert main(["campaign", "--app", "minivite", "--design", "bogus",
                 "--runs", "2"]) == 2
    assert "unknown design" in capsys.readouterr().err


def test_campaign_report_check_complete_needs_matrix(tmp_path, capsys):
    store = tmp_path / "s.jsonl"
    assert main(["campaign"] + CAMPAIGN_ARGS + ["--store", str(store)]) == 0
    capsys.readouterr()
    assert main(["campaign-report", "--store", str(store),
                 "--check-complete"]) == 2
    # a partial flag set (no --nprocs/--runs) would silently check the
    # wrong matrix via defaults and report a false INCOMPLETE
    assert main(["campaign-report", "--store", str(store),
                 "--check-complete", "--app", "minivite",
                 "--design", "reinit-fti"]) == 2
    assert "matrix flags" in capsys.readouterr().err


# -- the modeling commands ---------------------------------------------------
def test_advise_command_prints_ranked_table(capsys):
    code = main(["advise", "--app", "hpccg", "--nprocs", "512",
                 "--mtbf", "4h"])
    assert code == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    assert "design" in lines[1] and "interval" in lines[1]
    assert lines[2].startswith("1 ")            # rank column
    assert "reinit-fti" in out
    assert "model time" in out


def test_advise_command_objectives_and_levels(capsys):
    code = main(["advise", "--app", "hpccg", "--nprocs", "64",
                 "--mtbf", "30m", "--levels", "1,2",
                 "--objective", "recovery", "--design", "all"])
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("\n") >= 7  # 3 designs x 2 levels + header lines


def test_advise_command_rejects_bad_mtbf(capsys):
    assert main(["advise", "--app", "hpccg", "--mtbf", "soon"]) == 2
    assert "MTBF" in capsys.readouterr().err


def test_model_validate_command_small_campaign(capsys):
    code = main(["model-validate", "--app", "minivite", "--nprocs", "8",
                 "--nnodes", "4", "--faults", "poisson:6", "--runs", "2",
                 "--budget", "0.5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "within budget" in out
    assert "REINIT-FTI" in out


def test_model_validate_command_fails_over_budget(capsys):
    code = main(["model-validate", "--app", "minivite", "--nprocs", "8",
                 "--nnodes", "4", "--faults", "poisson:6", "--runs", "2",
                 "--budget", "0.0001"])
    assert code == 1
    assert "BUDGET EXCEEDED" in capsys.readouterr().out


def test_campaign_estimate_prints_preflight_costs(capsys):
    code = main(["campaign", "--app", "minivite", "--design",
                 "reinit-fti", "--nprocs", "8", "--nnodes", "4",
                 "--runs", "2", "--estimate"])
    assert code == 0
    out = capsys.readouterr().out
    assert "pre-flight estimate" in out
    assert "predicted virtual cost" in out
    assert "E[T]=" in out
    # the campaign itself still ran after the estimate
    assert "executed 2 run(s)" in out


def test_run_command_accepts_interval(capsys):
    code = main(["run", "--app", "minivite", "--design", "reinit-fti",
                 "--nprocs", "8", "--reps", "1", "--interval", "4"])
    assert code == 0
    assert "total=" in capsys.readouterr().out


def test_run_command_accepts_auto_interval(capsys):
    code = main(["run", "--app", "minivite", "--design", "reinit-fti",
                 "--nprocs", "8", "--reps", "1", "--faults", "poisson:6",
                 "--interval", "auto"])
    assert code == 0
    assert "verified: True" in capsys.readouterr().out


def test_interval_flag_rejects_junk(capsys):
    assert main(["run", "--app", "minivite", "--design", "reinit-fti",
                 "--nprocs", "8", "--interval", "soon"]) == 2
    assert "--interval" in capsys.readouterr().err


def test_campaign_on_error_continue_partial_failure_exits_1(
        tmp_path, monkeypatch, capsys):
    """A poisoned campaign under --on-error continue finishes, records
    the failures in the store, and exits 1 (partial failure)."""
    import json

    from repro.core.store import ResultStore

    monkeypatch.setenv("MATCH_CHAOS", json.dumps({
        "dir": str(tmp_path / "state"),
        "rules": [{"mode": "error", "match": "*", "times": -1}],
    }))
    store = str(tmp_path / "sweep.jsonl")
    code = main(["campaign"] + CAMPAIGN_ARGS
                + ["--store", store, "--jobs", "2",
                   "--on-error", "continue", "--progress"])
    assert code == 1
    captured = capsys.readouterr()
    assert "2 failure(s)" in captured.out
    assert "FAIL" in captured.out
    assert "ChaosError" in captured.err
    assert len(ResultStore(store).load_failures()) == 2

    # after the "fix" (chaos off), --resume re-runs the failed units
    monkeypatch.delenv("MATCH_CHAOS")
    assert main(["campaign"] + CAMPAIGN_ARGS
                + ["--store", store, "--jobs", "2", "--resume"]) == 0
    assert "executed 2 run(s)" in capsys.readouterr().out
    assert ResultStore(store).load_failures() == {}


def test_campaign_rejects_bad_failure_policy_flags(capsys):
    assert main(["campaign"] + CAMPAIGN_ARGS
                + ["--on-error", "explode"]) == 2
    assert "--on-error" in capsys.readouterr().err
    assert main(["campaign"] + CAMPAIGN_ARGS
                + ["--timeout", "soon"]) == 2
    assert "--timeout" in capsys.readouterr().err
    assert main(["campaign"] + CAMPAIGN_ARGS
                + ["--retries", "-1"]) == 2


def test_campaign_accepts_retry_policy_and_timeout_auto(capsys):
    code = main(["campaign"] + CAMPAIGN_ARGS
                + ["--on-error", "retry:2", "--timeout", "auto",
                   "--sim-watchdog", "100000000"])
    assert code == 0
    assert "0 failure(s)" in capsys.readouterr().out
