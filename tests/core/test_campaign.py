"""Fault-injection campaigns and distribution summaries."""

import pytest

from repro.core.campaign import (
    CampaignResult,
    DistributionSummary,
    run_campaign,
)
from repro.core.configs import ExperimentConfig
from repro.errors import ConfigurationError


def small_config(**kwargs):
    defaults = dict(app="minivite", design="reinit-fti", nprocs=8,
                    nnodes=4, inject_fault=True)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def test_distribution_summary_basics():
    s = DistributionSummary.of([1.0, 2.0, 3.0])
    assert s.mean == pytest.approx(2.0)
    assert s.minimum == 1.0 and s.maximum == 3.0
    assert s.count == 3
    assert s.std == pytest.approx((2.0 / 3.0) ** 0.5)
    assert "n=3" in str(s)


def test_distribution_summary_empty_rejected():
    with pytest.raises(ConfigurationError):
        DistributionSummary.of([])


def test_distribution_summary_single_sample():
    """Documented n=1 behaviour: population variance (ddof=0) makes a
    single sample report std=0.0 — the n= count in the report is the
    signal that the spread is vacuous, not measured."""
    s = DistributionSummary.of([4.2])
    assert s.count == 1
    assert s.std == 0.0
    assert s.mean == s.minimum == s.maximum == 4.2
    assert "n=1" in str(s)
    assert "ddof=0" in DistributionSummary.of.__func__.__doc__ or \
        "population" in DistributionSummary.of.__func__.__doc__


def test_campaign_runs_and_verifies():
    result = run_campaign(small_config(), runs=5)
    assert len(result.runs) == 5
    assert result.all_verified
    assert result.recovery.count == 5
    assert result.recovery.minimum > 0
    assert result.total.mean > result.rework.mean


def test_campaign_victims_are_varied():
    result = run_campaign(small_config(), runs=8)
    assert len(set(result.victims())) > 1


def test_campaign_requires_fault_injection():
    with pytest.raises(ConfigurationError):
        run_campaign(small_config(inject_fault=False), runs=5)
    with pytest.raises(ConfigurationError):
        run_campaign(small_config(), runs=1)


def test_campaign_report_mentions_metrics():
    result = run_campaign(small_config(), runs=3)
    text = result.report()
    assert "recovery" in text
    assert "verified: True" in text
    assert "3 runs" in text


def test_reinit_recovery_distribution_is_tight():
    """Reinit's recovery cost barely depends on where the failure lands."""
    result = run_campaign(small_config(design="reinit-fti"), runs=6)
    assert result.recovery.std < 0.05 * result.recovery.mean


def test_total_time_varies_with_failure_position():
    """Rework depends on how far past a checkpoint the failure hits, so
    total time must spread more than recovery does."""
    result = run_campaign(small_config(design="reinit-fti"), runs=10)
    assert result.total.std > result.recovery.std
